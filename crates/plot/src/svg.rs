//! Dependency-free SVG charts: multi-series line charts and grouped
//! (optionally stacked) bar charts, enough to render every figure of the
//! paper.

use core::fmt::Write as _;

/// The categorical palette used for series.
pub const PALETTE: [&str; 10] = [
    "#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c", "#dc7ec0", "#797979",
    "#d5bb67", "#82c6e2",
];

const WIDTH: f64 = 860.0;
const HEIGHT: f64 = 520.0;
const MARGIN_LEFT: f64 = 80.0;
const MARGIN_RIGHT: f64 = 180.0;
const MARGIN_TOP: f64 = 50.0;
const MARGIN_BOTTOM: f64 = 60.0;

/// One named line series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in data coordinates.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    #[must_use]
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            label: label.into(),
            points,
        }
    }
}

/// A multi-series line chart.
#[derive(Debug, Clone, Default)]
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
    reference: Option<(f64, String)>,
}

impl LineChart {
    /// Creates an empty chart with axis labels.
    #[must_use]
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            reference: None,
        }
    }

    /// Adds a series.
    pub fn push_series(&mut self, series: Series) -> &mut Self {
        self.series.push(series);
        self
    }

    /// Draws a labelled horizontal reference line (e.g., the power
    /// budget).
    pub fn reference_line(&mut self, y: f64, label: impl Into<String>) -> &mut Self {
        self.reference = Some((y, label.into()));
        self
    }

    /// Renders the chart to an SVG document.
    #[must_use]
    pub fn to_svg(&self) -> String {
        let points: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .chain(self.reference.iter().map(|(y, _)| (f64::NAN, *y)))
            .collect();
        let (x0, x1) = finite_range(points.iter().map(|p| p.0));
        let (y0, y1) = finite_range(points.iter().map(|p| p.1));
        let map_x = |x: f64| {
            MARGIN_LEFT + (x - x0) / (x1 - x0).max(1e-300) * (WIDTH - MARGIN_LEFT - MARGIN_RIGHT)
        };
        let map_y = |y: f64| {
            HEIGHT
                - MARGIN_BOTTOM
                - (y - y0) / (y1 - y0).max(1e-300) * (HEIGHT - MARGIN_TOP - MARGIN_BOTTOM)
        };

        let mut svg = svg_header(&self.title, &self.x_label, &self.y_label);
        axis_ticks(&mut svg, x0, x1, y0, y1, map_x, map_y);

        if let Some((y, label)) = &self.reference {
            let py = map_y(*y);
            let _ = write!(
                svg,
                "<line x1='{MARGIN_LEFT}' y1='{py:.1}' x2='{:.1}' y2='{py:.1}' \
                 stroke='#c44' stroke-dasharray='7 4' stroke-width='1.5'/>\
                 <text x='{:.1}' y='{:.1}' font-size='12' fill='#c44'>{}</text>",
                WIDTH - MARGIN_RIGHT,
                MARGIN_LEFT + 6.0,
                py - 6.0,
                escape(label),
            );
        }

        for (idx, series) in self.series.iter().enumerate() {
            let color = PALETTE[idx % PALETTE.len()];
            let mut path = String::new();
            for (i, &(x, y)) in series.points.iter().enumerate() {
                let _ = write!(
                    path,
                    "{}{:.2},{:.2} ",
                    if i == 0 { "M" } else { "L" },
                    map_x(x),
                    map_y(y)
                );
            }
            let _ = write!(
                svg,
                "<path d='{path}' fill='none' stroke='{color}' stroke-width='2'/>"
            );
            legend_entry(&mut svg, idx, color, &series.label);
        }
        svg.push_str("</svg>\n");
        svg
    }
}

/// One bar of a grouped bar chart: a label and its stacked segment
/// values (bottom first, matching the chart's segment labels).
pub type Bar = (String, Vec<f64>);

/// A grouped bar chart; each bar may be a stack of named segments.
#[derive(Debug, Clone, Default)]
pub struct BarChart {
    title: String,
    y_label: String,
    /// Segment names shared by every bar (stack order, bottom first).
    segment_labels: Vec<String>,
    /// Group label → bars within the group.
    groups: Vec<(String, Vec<Bar>)>,
    reference: Option<(f64, String)>,
}

impl BarChart {
    /// Creates a chart whose bars stack the given segments.
    #[must_use]
    pub fn new(
        title: impl Into<String>,
        y_label: impl Into<String>,
        segment_labels: &[&str],
    ) -> Self {
        Self {
            title: title.into(),
            y_label: y_label.into(),
            segment_labels: segment_labels.iter().map(|s| (*s).to_owned()).collect(),
            groups: Vec::new(),
            reference: None,
        }
    }

    /// Adds a group of bars.
    ///
    /// # Panics
    ///
    /// Panics if any bar's segment count differs from the chart's
    /// segment labels.
    pub fn push_group(&mut self, label: impl Into<String>, bars: Vec<Bar>) -> &mut Self {
        for (_, segments) in &bars {
            assert_eq!(segments.len(), self.segment_labels.len());
        }
        self.groups.push((label.into(), bars));
        self
    }

    /// Draws a labelled horizontal reference line.
    pub fn reference_line(&mut self, y: f64, label: impl Into<String>) -> &mut Self {
        self.reference = Some((y, label.into()));
        self
    }

    /// Renders the chart to an SVG document.
    #[must_use]
    pub fn to_svg(&self) -> String {
        let max_stack = self
            .groups
            .iter()
            .flat_map(|(_, bars)| bars.iter())
            .map(|(_, segs)| segs.iter().sum::<f64>())
            .chain(self.reference.iter().map(|(y, _)| *y))
            .fold(1e-12_f64, f64::max);
        let map_y =
            |y: f64| HEIGHT - MARGIN_BOTTOM - y / max_stack * (HEIGHT - MARGIN_TOP - MARGIN_BOTTOM);

        let mut svg = svg_header(&self.title, "", &self.y_label);
        // Y ticks.
        for t in 0..=5 {
            let y = max_stack * f64::from(t) / 5.0;
            let py = map_y(y);
            let _ = write!(
                svg,
                "<line x1='{:.1}' y1='{py:.1}' x2='{:.1}' y2='{py:.1}' stroke='#ddd'/>\
                 <text x='{:.1}' y='{:.1}' font-size='11' text-anchor='end'>{}</text>",
                MARGIN_LEFT,
                WIDTH - MARGIN_RIGHT,
                MARGIN_LEFT - 6.0,
                py + 4.0,
                nice_number(y),
            );
        }

        let plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT;
        let n_groups = self.groups.len().max(1) as f64;
        let group_w = plot_w / n_groups;
        for (g, (label, bars)) in self.groups.iter().enumerate() {
            let gx = MARGIN_LEFT + g as f64 * group_w;
            let n_bars = bars.len().max(1) as f64;
            let bar_w = (group_w * 0.8) / n_bars;
            for (b, (bar_label, segments)) in bars.iter().enumerate() {
                let x = gx + group_w * 0.1 + b as f64 * bar_w;
                let mut base = 0.0;
                for (s, &value) in segments.iter().enumerate() {
                    let color = PALETTE[s % PALETTE.len()];
                    let y_top = map_y(base + value);
                    let h = map_y(base) - y_top;
                    let _ = write!(
                        svg,
                        "<rect x='{:.1}' y='{y_top:.1}' width='{:.1}' height='{h:.1}' \
                         fill='{color}' stroke='white' stroke-width='0.5'>\
                         <title>{}: {}</title></rect>",
                        x,
                        bar_w - 2.0,
                        escape(bar_label),
                        nice_number(value),
                    );
                    base += value;
                }
            }
            let _ = write!(
                svg,
                "<text x='{:.1}' y='{:.1}' font-size='12' text-anchor='middle'>{}</text>",
                gx + group_w / 2.0,
                HEIGHT - MARGIN_BOTTOM + 18.0,
                escape(label),
            );
        }

        if let Some((y, label)) = &self.reference {
            let py = map_y(*y);
            let _ = write!(
                svg,
                "<line x1='{MARGIN_LEFT}' y1='{py:.1}' x2='{:.1}' y2='{py:.1}' \
                 stroke='#c44' stroke-dasharray='7 4' stroke-width='1.5'/>\
                 <text x='{:.1}' y='{:.1}' font-size='12' fill='#c44'>{}</text>",
                WIDTH - MARGIN_RIGHT,
                MARGIN_LEFT + 6.0,
                py - 6.0,
                escape(label),
            );
        }

        for (idx, label) in self.segment_labels.iter().enumerate() {
            legend_entry(&mut svg, idx, PALETTE[idx % PALETTE.len()], label);
        }
        svg.push_str("</svg>\n");
        svg
    }
}

fn svg_header(title: &str, x_label: &str, y_label: &str) -> String {
    let mut svg = String::with_capacity(16_384);
    let _ = write!(
        svg,
        "<svg xmlns='http://www.w3.org/2000/svg' width='{WIDTH}' height='{HEIGHT}' \
         viewBox='0 0 {WIDTH} {HEIGHT}' font-family='sans-serif'>\
         <rect width='100%' height='100%' fill='white'/>\
         <text x='{:.1}' y='28' font-size='16' text-anchor='middle' font-weight='bold'>{}</text>\
         <text x='{:.1}' y='{:.1}' font-size='13' text-anchor='middle'>{}</text>\
         <text x='18' y='{:.1}' font-size='13' text-anchor='middle' \
         transform='rotate(-90 18 {:.1})'>{}</text>",
        (MARGIN_LEFT + WIDTH - MARGIN_RIGHT) / 2.0,
        escape(title),
        (MARGIN_LEFT + WIDTH - MARGIN_RIGHT) / 2.0,
        HEIGHT - 14.0,
        escape(x_label),
        HEIGHT / 2.0,
        HEIGHT / 2.0,
        escape(y_label),
    );
    svg
}

fn axis_ticks(
    svg: &mut String,
    x0: f64,
    x1: f64,
    y0: f64,
    y1: f64,
    map_x: impl Fn(f64) -> f64,
    map_y: impl Fn(f64) -> f64,
) {
    for t in 0..=5 {
        let frac = f64::from(t) / 5.0;
        let x = x0 + (x1 - x0) * frac;
        let y = y0 + (y1 - y0) * frac;
        let px = map_x(x);
        let py = map_y(y);
        let _ = write!(
            svg,
            "<line x1='{px:.1}' y1='{MARGIN_TOP}' x2='{px:.1}' y2='{:.1}' stroke='#eee'/>\
             <text x='{px:.1}' y='{:.1}' font-size='11' text-anchor='middle'>{}</text>\
             <line x1='{MARGIN_LEFT}' y1='{py:.1}' x2='{:.1}' y2='{py:.1}' stroke='#eee'/>\
             <text x='{:.1}' y='{:.1}' font-size='11' text-anchor='end'>{}</text>",
            HEIGHT - MARGIN_BOTTOM,
            HEIGHT - MARGIN_BOTTOM + 16.0,
            nice_number(x),
            WIDTH - MARGIN_RIGHT,
            MARGIN_LEFT - 6.0,
            py + 4.0,
            nice_number(y),
        );
    }
}

fn legend_entry(svg: &mut String, idx: usize, color: &str, label: &str) {
    let y = MARGIN_TOP + 8.0 + idx as f64 * 20.0;
    let x = WIDTH - MARGIN_RIGHT + 14.0;
    let _ = write!(
        svg,
        "<rect x='{x:.1}' y='{:.1}' width='14' height='14' fill='{color}'/>\
         <text x='{:.1}' y='{:.1}' font-size='12'>{}</text>",
        y - 11.0,
        x + 20.0,
        y,
        escape(label),
    );
}

fn finite_range(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::MAX;
    let mut hi = f64::MIN;
    for v in values.filter(|v| v.is_finite()) {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo > hi {
        (0.0, 1.0)
    } else if (hi - lo).abs() < 1e-300 {
        (lo - 0.5, hi + 0.5)
    } else {
        (lo, hi)
    }
}

fn nice_number(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_renders_all_series() {
        let mut chart = LineChart::new("Power", "channels", "mW");
        chart.push_series(Series::new("BISC", vec![(1024.0, 38.9), (2048.0, 77.8)]));
        chart.push_series(Series::new("HALO*", vec![(1024.0, 10.0), (2048.0, 20.0)]));
        chart.reference_line(57.6, "Power Budget");
        let svg = chart.to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("BISC"));
        assert!(svg.contains("HALO*"));
        assert!(svg.contains("Power Budget"));
        assert_eq!(svg.matches("<path").count(), 2);
    }

    #[test]
    fn bar_chart_stacks_segments() {
        let mut chart = BarChart::new("Fig 5", "P/Pbudget", &["Sensing", "Non-Sensing"]);
        chart.push_group(
            "1024",
            vec![
                ("1".to_owned(), vec![0.3, 0.4]),
                ("2".to_owned(), vec![0.5, 0.3]),
            ],
        );
        chart.push_group("2048", vec![("1".to_owned(), vec![0.4, 0.5])]);
        chart.reference_line(1.0, "Power Budget");
        let svg = chart.to_svg();
        // 3 bars x 2 segments, each carrying a tooltip title.
        assert_eq!(svg.matches("<title>").count(), 3 * 2);
        assert!(svg.contains("Sensing"));
        assert!(svg.contains("1024"));
    }

    #[test]
    fn empty_chart_still_valid_svg() {
        let chart = LineChart::new("empty", "x", "y");
        let svg = chart.to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
    }

    #[test]
    fn labels_are_escaped() {
        let mut chart = LineChart::new("a < b & c", "x", "y");
        chart.push_series(Series::new("s<1>", vec![(0.0, 0.0), (1.0, 1.0)]));
        let svg = chart.to_svg();
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(svg.contains("s&lt;1&gt;"));
        assert!(!svg.contains("s<1>"));
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn mismatched_segments_panic() {
        let mut chart = BarChart::new("x", "y", &["a", "b"]);
        chart.push_group("g", vec![("bar".to_owned(), vec![1.0])]);
    }

    #[test]
    fn range_handles_degenerate_input() {
        assert_eq!(finite_range([].into_iter()), (0.0, 1.0));
        let (lo, hi) = finite_range([2.0, 2.0].into_iter());
        assert!(lo < 2.0 && hi > 2.0);
        let (lo, hi) = finite_range([f64::NAN, 1.0, 3.0].into_iter());
        assert_eq!((lo, hi), (1.0, 3.0));
    }
}
