//! Error types for the MINDFUL analytical framework.

use core::fmt;

use crate::units::{Area, Power};

/// Errors produced by the MINDFUL core framework.
///
/// All library entry points that can fail return `Result<_, CoreError>`;
/// library code never panics on bad input.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A channel count of zero was supplied where at least one channel is
    /// required.
    ZeroChannels,
    /// A parameter that must be strictly positive was zero or negative.
    NonPositiveParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The supplied value (in SI base units for quantities).
        value: f64,
    },
    /// A fraction parameter fell outside `[0, 1]`.
    FractionOutOfRange {
        /// Name of the offending parameter.
        name: &'static str,
        /// The supplied value.
        value: f64,
    },
    /// A design's total power exceeds the safe power budget.
    PowerBudgetExceeded {
        /// The design's total power.
        power: Power,
        /// The budget implied by the design's area.
        budget: Power,
    },
    /// A projection was requested below the design's reference channel
    /// count (the beyond-1024 equations only apply at or above it).
    BelowReferenceChannels {
        /// Requested channel count.
        requested: u64,
        /// Reference channel count of the scaled design.
        reference: u64,
    },
    /// A requested SoC id does not exist in the database.
    UnknownSoc {
        /// The requested 1-based id.
        id: u8,
    },
    /// The requested operation needs a wireless SoC but the design is wired.
    NotWireless {
        /// Name of the SoC.
        name: &'static str,
    },
    /// A numeric solver failed to converge or the problem is infeasible.
    Infeasible {
        /// Human-readable description of what could not be satisfied.
        reason: String,
    },
    /// An area became non-physical (zero or negative) during scaling.
    NonPhysicalArea {
        /// The offending area.
        area: Area,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroChannels => write!(f, "channel count must be at least 1"),
            Self::NonPositiveParameter { name, value } => {
                write!(f, "parameter `{name}` must be positive, got {value}")
            }
            Self::FractionOutOfRange { name, value } => {
                write!(f, "parameter `{name}` must lie in [0, 1], got {value}")
            }
            Self::PowerBudgetExceeded { power, budget } => write!(
                f,
                "total power {:.3} mW exceeds the safe budget {:.3} mW",
                power.milliwatts(),
                budget.milliwatts()
            ),
            Self::BelowReferenceChannels {
                requested,
                reference,
            } => write!(
                f,
                "projection requested at {requested} channels, below the reference point {reference}"
            ),
            Self::UnknownSoc { id } => write!(f, "no SoC with id {id} in the database"),
            Self::NotWireless { name } => {
                write!(f, "SoC `{name}` has no wireless transceiver")
            }
            Self::Infeasible { reason } => write!(f, "infeasible: {reason}"),
            Self::NonPhysicalArea { area } => write!(
                f,
                "area became non-physical during scaling: {:.6} mm^2",
                area.square_millimeters()
            ),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience alias for results in this crate.
pub type Result<T, E = CoreError> = core::result::Result<T, E>;

/// Validates that a value is strictly positive.
pub(crate) fn ensure_positive(name: &'static str, value: f64) -> Result<()> {
    if value > 0.0 && value.is_finite() {
        Ok(())
    } else {
        Err(CoreError::NonPositiveParameter { name, value })
    }
}

/// Validates that a value lies in `[0, 1]`.
pub(crate) fn ensure_fraction(name: &'static str, value: f64) -> Result<()> {
    if (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(CoreError::FractionOutOfRange { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = CoreError::ZeroChannels;
        assert_eq!(e.to_string(), "channel count must be at least 1");

        let e = CoreError::PowerBudgetExceeded {
            power: Power::from_milliwatts(100.0),
            budget: Power::from_milliwatts(57.6),
        };
        let msg = e.to_string();
        assert!(msg.contains("100.000 mW"));
        assert!(msg.contains("57.600 mW"));

        let e = CoreError::UnknownSoc { id: 42 };
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_good_err<T: std::error::Error + Send + Sync + 'static>() {}
        assert_good_err::<CoreError>();
    }

    #[test]
    fn ensure_positive_accepts_and_rejects() {
        assert!(ensure_positive("x", 1.0).is_ok());
        assert!(ensure_positive("x", 0.0).is_err());
        assert!(ensure_positive("x", -1.0).is_err());
        assert!(ensure_positive("x", f64::NAN).is_err());
        assert!(ensure_positive("x", f64::INFINITY).is_err());
    }

    #[test]
    fn ensure_fraction_accepts_and_rejects() {
        assert!(ensure_fraction("x", 0.0).is_ok());
        assert!(ensure_fraction("x", 1.0).is_ok());
        assert!(ensure_fraction("x", 0.5).is_ok());
        assert!(ensure_fraction("x", -0.01).is_err());
        assert!(ensure_fraction("x", 1.01).is_err());
        assert!(ensure_fraction("x", f64::NAN).is_err());
    }
}
