//! Offline stand-in for the `serde` crate. The derives are no-ops: they
//! let `#[cfg_attr(feature = "serde", derive(serde::Serialize))]`
//! attributes compile without registry access, but generate no trait
//! impls (nothing in this workspace serializes at runtime). See
//! `compat/README.md`.

#![warn(missing_docs)]
#![warn(clippy::all)]
#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
