//! Table 1 — the implanted-SoC design database.

use std::path::Path;

use mindful_core::soc::{published_socs, SocSpec};
use mindful_plot::{AsciiTable, Csv};

use crate::error::Result;
use crate::output::Artifacts;

/// The generated table rows.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// The published designs, in paper order.
    pub socs: Vec<SocSpec>,
}

/// Generates Table 1 from the database.
#[must_use]
pub fn generate() -> Table1 {
    Table1 {
        socs: published_socs(),
    }
}

/// Writes the table as CSV and prints the paper's columns.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn render(table: &Table1, dir: &Path) -> Result<Artifacts> {
    let mut artifacts = Artifacts::new();
    let mut ascii = AsciiTable::new(&[
        "#",
        "SoC",
        "NI Type",
        "#Channels",
        "Area (mm^2)",
        "Pd (mW/cm^2)",
        "f (kHz)",
        "Wireless",
        "In-vivo",
    ]);
    let mut csv = Csv::new(&[
        "id",
        "name",
        "ni_type",
        "channels",
        "area_mm2",
        "power_density_mw_cm2",
        "sampling_khz",
        "wireless",
        "in_vivo",
    ]);
    for soc in &table.socs {
        let row = [
            soc.id().to_string(),
            soc.name().to_owned(),
            soc.technology().to_string(),
            soc.channels().to_string(),
            format!("{:.2}", soc.area().square_millimeters()),
            format!(
                "{:.1}",
                soc.power_density().milliwatts_per_square_centimeter()
            ),
            format!("{:.0}", soc.sampling().kilohertz()),
            yes_no(soc.is_wireless()),
            yes_no(soc.is_validated_in_vivo()),
        ];
        ascii.push(&row);
        csv.push(&row);
    }
    artifacts.report("Table 1: summary of implanted SoC designs\n");
    artifacts.report(ascii.to_string());
    artifacts.write_file(dir, "table1.csv", csv.as_str())?;
    Ok(artifacts)
}

fn yes_no(b: bool) -> String {
    if b { "Yes" } else { "No" }.to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_eleven_rows() {
        let table = generate();
        assert_eq!(table.socs.len(), 11);
        assert_eq!(table.socs[0].name(), "BISC");
        assert_eq!(table.socs[10].name(), "Pollman et al.");
    }

    #[test]
    fn render_produces_csv_and_report() {
        let dir = std::env::temp_dir().join("mindful-table1-test");
        let artifacts = render(&generate(), &dir).unwrap();
        assert!(artifacts.report_text().contains("BISC"));
        assert!(artifacts.report_text().contains("HALO"));
        assert_eq!(artifacts.files().len(), 1);
        let csv = std::fs::read_to_string(&artifacts.files()[0]).unwrap();
        assert_eq!(csv.lines().count(), 12); // header + 11 rows
        std::fs::remove_dir_all(&dir).ok();
    }
}
