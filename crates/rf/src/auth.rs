//! Authenticated framing for the implant uplink — the L8 trust
//! boundary.
//!
//! The packet format of `crates/rf/src/packet.rs` protects frames with
//! nothing stronger than a CRC-16: any peer within radio range can
//! forge, replay, or splice packets into the decode path. Following the
//! ONI framing of the silicon↔biology boundary, this module wraps every
//! wire packet in an AEAD-style keyed-MAC envelope sized for an implant
//! that has no cycles to spare:
//!
//! ```text
//! | auth magic:16 | version:8 | key id:8 | inner packet … | mac:64 |
//! ```
//!
//! * **Keyed MAC** — a Carter–Wegman construction under a 128-bit
//!   pre-shared key, carried as a 64-bit trailer: the frame bytes run
//!   through an NH universal hash ([`LinkMac`], 64-bit word pairs,
//!   `64×64→128` multiply-accumulate — ~0.2 cycles/byte, an order of
//!   magnitude cheaper than hashing the payload with a full PRF), and
//!   SipHash-2-4 acts as the PRF only over the *fixed-size* input
//!   `nonce ‖ NH ‖ length`. SipHash is hand-rolled here (no external
//!   crates) and pinned against the reference vectors.
//! * **Nonce bound to the ARQ sequence space** — the 64-bit nonce is
//!   the *extended* sequence number: the wrapping `u16` on the wire,
//!   unwrapped monotonically by both ends ([`extend_sequence`]). The
//!   nonce never travels; an attacker who replays an old frame cannot
//!   re-bind it to a fresh nonce without breaking the MAC.
//! * **Sliding replay window** — the receiver tracks accepted nonces in
//!   a power-of-two bitmap ([`ReplayWindow`]). A nonce seen twice is
//!   rejected (`replayed`); one older than the window is rejected
//!   (`stale`). Legitimate ARQ retransmissions pass, because a
//!   retransmitted sequence number was by construction never accepted.
//! * **Constant-size header extension** — explicit version and key-id
//!   bytes so key rotation and format evolution are first-class, at a
//!   fixed [`AUTH_OVERHEAD_BYTES`] = 12 bytes per frame.
//!
//! ## Verification ordering (no pre-MAC oracle)
//!
//! [`AuthReceiver::open`] rejects on, in order: total length, magic,
//! version, key id, MAC, replay window. Every pre-MAC check depends
//! only on *public constant-size header fields* and the total length —
//! never on payload bytes — and the MAC comparison is constant-time
//! ([`ct_eq_tag`]), so rejection behaviour leaks nothing about payload
//! content. No inner-packet byte is parsed, and no output byte is
//! written, before the MAC verifies.
//!
//! Every acceptance and rejection is counted exactly in [`AuthStats`],
//! so the adversarial soak (`crates/pipeline/tests/secure_soak.rs`) can
//! equate the ledger with an injected attack plan field-by-field.

use crate::error::{Result, RfError};
use crate::packet::{HEADER_BYTES, PACKET_MAGIC, TRAILER_BYTES};

/// Frame marker that starts every sealed (authenticated) packet.
pub const AUTH_MAGIC: u16 = 0x5EA1;

/// Wire-format version carried in every sealed frame.
pub const AUTH_VERSION: u8 = 1;

/// Sealed-frame header size: magic(2) + version(1) + key id(1).
pub const AUTH_HEADER_BYTES: usize = 4;

/// MAC trailer size (Carter–Wegman NH + SipHash-2-4 PRF, 64-bit tag).
pub const AUTH_TAG_BYTES: usize = 8;

/// Total sealing overhead per frame.
pub const AUTH_OVERHEAD_BYTES: usize = AUTH_HEADER_BYTES + AUTH_TAG_BYTES;

/// Smallest possible sealed frame: envelope around a minimal inner
/// packet (header + CRC, empty payload is impossible but this is the
/// parse floor).
pub const MIN_SEALED_BYTES: usize = AUTH_OVERHEAD_BYTES + HEADER_BYTES + TRAILER_BYTES;

/// Largest supported replay window — half the `u16` sequence space, so
/// nonce extension stays unambiguous.
pub const MAX_REPLAY_WINDOW: usize = 32_768;

/// Unwraps a `u16` wire sequence number into the 64-bit extended
/// sequence space around `anchor` (the last extended number this
/// endpoint committed to). Forward distances up to `0x7FFF` move the
/// anchor forward; anything further is interpreted as a backward
/// reference. Returns `None` when the backward reference would precede
/// extended sequence 0 (a frame from before the stream began).
#[must_use]
pub fn extend_sequence(anchor: u64, seq: u16) -> Option<u64> {
    let fwd = seq.wrapping_sub(anchor as u16);
    if fwd <= 0x7FFF {
        Some(anchor + u64::from(fwd))
    } else {
        (anchor + u64::from(fwd)).checked_sub(0x1_0000)
    }
}

// ---------------------------------------------------------------------
// SipHash-2-4
// ---------------------------------------------------------------------

/// Incremental SipHash-2-4 keyed PRF (64-bit output).
///
/// Hand-rolled because the container bakes in no crypto crates; pinned
/// against the reference vectors of the SipHash paper in this module's
/// tests. Two compression rounds per 8-byte word, four finalization
/// rounds. Inside the sealed-frame MAC it is only ever applied to
/// *short, fixed-size* inputs — the NH pad expansion and the
/// `nonce ‖ NH ‖ length` finalization of [`LinkMac`] — so its
/// per-byte cost never touches the bulk payload path.
#[derive(Debug, Clone)]
pub struct SipMac {
    v0: u64,
    v1: u64,
    v2: u64,
    v3: u64,
    buf: [u8; 8],
    buf_len: usize,
    len: u64,
}

impl SipMac {
    /// Starts a MAC under a 128-bit key.
    #[must_use]
    pub fn new(key: &[u8; 16]) -> Self {
        let k0 = u64::from_le_bytes(key[0..8].try_into().expect("8 bytes"));
        let k1 = u64::from_le_bytes(key[8..16].try_into().expect("8 bytes"));
        Self {
            v0: k0 ^ 0x736f_6d65_7073_6575,
            v1: k1 ^ 0x646f_7261_6e64_6f6d,
            v2: k0 ^ 0x6c79_6765_6e65_7261,
            v3: k1 ^ 0x7465_6462_7974_6573,
            buf: [0; 8],
            buf_len: 0,
            len: 0,
        }
    }

    #[inline]
    fn round(&mut self) {
        self.v0 = self.v0.wrapping_add(self.v1);
        self.v1 = self.v1.rotate_left(13);
        self.v1 ^= self.v0;
        self.v0 = self.v0.rotate_left(32);
        self.v2 = self.v2.wrapping_add(self.v3);
        self.v3 = self.v3.rotate_left(16);
        self.v3 ^= self.v2;
        self.v0 = self.v0.wrapping_add(self.v3);
        self.v3 = self.v3.rotate_left(21);
        self.v3 ^= self.v0;
        self.v2 = self.v2.wrapping_add(self.v1);
        self.v1 = self.v1.rotate_left(17);
        self.v1 ^= self.v2;
        self.v2 = self.v2.rotate_left(32);
    }

    #[inline]
    fn compress(&mut self, word: u64) {
        self.v3 ^= word;
        self.round();
        self.round();
        self.v0 ^= word;
    }

    /// Absorbs `data`.
    pub fn write(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(8 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len < 8 {
                return;
            }
            let word = u64::from_le_bytes(self.buf);
            self.compress(word);
            self.buf_len = 0;
        }
        let mut chunks = rest.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            self.compress(word);
        }
        let tail = chunks.remainder();
        self.buf[..tail.len()].copy_from_slice(tail);
        self.buf_len = tail.len();
    }

    /// Finishes the MAC and returns the 64-bit tag.
    #[must_use]
    pub fn finish(mut self) -> u64 {
        let mut last = [0_u8; 8];
        last[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        last[7] = (self.len & 0xFF) as u8;
        let word = u64::from_le_bytes(last);
        self.compress(word);
        self.v2 ^= 0xFF;
        self.round();
        self.round();
        self.round();
        self.round();
        self.v0 ^ self.v1 ^ self.v2 ^ self.v3
    }
}

/// One-shot SipHash-2-4 PRF over `nonce ‖ data` — the keyed primitive
/// behind [`LinkMac`]'s pad expansion and tag finalization.
#[must_use]
pub fn mac64(key: &[u8; 16], nonce: u64, data: &[u8]) -> u64 {
    let mut mac = SipMac::new(key);
    mac.write(&nonce.to_le_bytes());
    mac.write(data);
    mac.finish()
}

/// Constant-time tag comparison: every byte is examined regardless of
/// where the first mismatch sits, so verification time never narrows
/// the attacker's search.
#[must_use]
pub fn ct_eq_tag(a: &[u8; AUTH_TAG_BYTES], b: &[u8; AUTH_TAG_BYTES]) -> bool {
    let mut diff = 0_u8;
    for i in 0..AUTH_TAG_BYTES {
        diff |= a[i] ^ b[i];
    }
    diff == 0
}

// ---------------------------------------------------------------------
// Carter–Wegman frame MAC: NH universal hash + SipHash-2-4 PRF
// ---------------------------------------------------------------------

/// Domain-separation label for the NH pad expansion PRF calls. The pad
/// call hashes `counter(8) ‖ label(16)` = 24 bytes; the tag
/// finalization hashes `nonce ‖ NH ‖ length` = 32 bytes — distinct
/// input lengths *and* an explicit label, so the two PRF uses can never
/// collide.
const NH_PAD_LABEL: &[u8; 16] = b"MINDFUL-NH-PAD-1";

/// Carter–Wegman MAC over sealed frames.
///
/// The bulk of the frame runs through an **NH universal hash** (the
/// UMAC construction, word size 64): the message is split into pairs of
/// little-endian 64-bit words `(m₀, m₁)` and folded as
///
/// ```text
/// NH = Σᵢ (m₂ᵢ ⊞ k₂ᵢ) · (m₂ᵢ₊₁ ⊞ k₂ᵢ₊₁)   (mod 2¹²⁸, ⊞ = mod 2⁶⁴)
/// ```
///
/// against a pad of secret words expanded once from the link key via
/// SipHash-2-4 in counter mode. NH with 64-bit words is provably
/// `2⁻⁶⁴`-almost-universal on equal-length inputs; the final byte
/// length rides in the finalization so zero-padded tails cannot alias.
/// The 64-bit tag is then
///
/// ```text
/// tag = SipHash-2-4(key, nonce ‖ NH ‖ length)
/// ```
///
/// — the hash-then-PRF shape of UMAC/GMAC, whose forgery bound is the
/// universal-hash collision bound (`≈ 2⁻⁶⁴` per attempt, every attempt
/// burning an online trial that the receiver counts and rejects) plus
/// the PRF advantage against SipHash. The payoff is speed: one `u64`
/// multiply-accumulate per 16 bytes instead of two SipRounds per
/// 8 bytes, which is what keeps the clean-link crypto overhead of the
/// authenticated ARQ path in single digits (`crates/bench/benches/
/// secure.rs` pins the budget).
///
/// The pad grows lazily to the longest frame seen and is retained, so
/// steady-state sealing and opening are allocation-free — the same
/// warm-path contract as the rest of the link layer.
#[derive(Debug, Clone)]
pub struct LinkMac {
    key: [u8; 16],
    pad: Vec<u64>,
}

impl LinkMac {
    /// A MAC instance under a 128-bit key. Two instances under the same
    /// key (one per link end) expand identical pads and agree on every
    /// tag.
    #[must_use]
    pub fn new(key: &[u8; 16]) -> Self {
        Self {
            key: *key,
            pad: Vec::new(),
        }
    }

    /// Extends the pad to at least `words` entries (counter-mode
    /// SipHash-2-4 of the key — deterministic, so lazy growth never
    /// changes existing entries).
    fn ensure_pad(&mut self, words: usize) {
        while self.pad.len() < words {
            let counter = self.pad.len() as u64;
            self.pad.push(mac64(&self.key, counter, NH_PAD_LABEL));
        }
    }

    /// NH universal hash of `data` (zero-padded to a 16-byte block)
    /// against the first `⌈len/8⌉` pad words.
    #[inline]
    fn nh(pad: &[u64], data: &[u8]) -> u128 {
        let mut acc = 0_u128;
        let mut chunks = data.chunks_exact(16);
        let mut i = 0_usize;
        for chunk in &mut chunks {
            let m0 = u64::from_le_bytes(chunk[0..8].try_into().expect("8 bytes"));
            let m1 = u64::from_le_bytes(chunk[8..16].try_into().expect("8 bytes"));
            let a = m0.wrapping_add(pad[i]);
            let b = m1.wrapping_add(pad[i + 1]);
            acc = acc.wrapping_add(u128::from(a) * u128::from(b));
            i += 2;
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut last = [0_u8; 16];
            last[..rem.len()].copy_from_slice(rem);
            let m0 = u64::from_le_bytes(last[0..8].try_into().expect("8 bytes"));
            let m1 = u64::from_le_bytes(last[8..16].try_into().expect("8 bytes"));
            let a = m0.wrapping_add(pad[i]);
            let b = m1.wrapping_add(pad[i + 1]);
            acc = acc.wrapping_add(u128::from(a) * u128::from(b));
        }
        acc
    }

    /// The 64-bit tag over `nonce ‖ data`. Takes `&mut self` only for
    /// lazy pad growth; tags are a pure function of `(key, nonce,
    /// data)`.
    #[must_use]
    pub fn tag(&mut self, nonce: u64, data: &[u8]) -> u64 {
        let words = data.len().div_ceil(16) * 2;
        self.ensure_pad(words);
        let nh = Self::nh(&self.pad, data);
        let mut prf = SipMac::new(&self.key);
        prf.write(&nonce.to_le_bytes());
        prf.write(&(nh as u64).to_le_bytes());
        prf.write(&((nh >> 64) as u64).to_le_bytes());
        prf.write(&(data.len() as u64).to_le_bytes());
        prf.finish()
    }
}

// ---------------------------------------------------------------------
// Keys and configuration
// ---------------------------------------------------------------------

/// A pre-shared link key plus its public identifier byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthKey {
    /// 128-bit SipHash key (secret).
    pub key: [u8; 16],
    /// Public key identifier carried in every sealed frame so the
    /// receiver can reject a peer keyed differently without burning a
    /// MAC computation.
    pub key_id: u8,
}

impl AuthKey {
    /// Expands a 64-bit seed into a key via splitmix64 — deterministic
    /// key material for tests, benches, and soaks.
    #[must_use]
    pub fn from_seed(seed: u64, key_id: u8) -> Self {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut key = [0_u8; 16];
        key[0..8].copy_from_slice(&next().to_le_bytes());
        key[8..16].copy_from_slice(&next().to_le_bytes());
        Self { key, key_id }
    }
}

/// Configuration for one authenticated link direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthConfig {
    /// The pre-shared key.
    pub key: AuthKey,
    /// Replay-window span in sequence numbers (rounded up to a power
    /// of two). Must cover the deepest legitimate reordering the ARQ
    /// can produce; the default of 1024 dwarfs any sane ARQ window.
    pub replay_window: usize,
}

impl AuthConfig {
    /// A config with the default 1024-entry replay window.
    #[must_use]
    pub fn new(key: AuthKey) -> Self {
        Self {
            key,
            replay_window: 1024,
        }
    }

    /// Validates the replay window.
    ///
    /// # Errors
    ///
    /// Returns [`RfError::InvalidParameter`] when the window is below 2
    /// or above [`MAX_REPLAY_WINDOW`].
    pub fn validate(&self) -> Result<()> {
        if self.replay_window < 2 || self.replay_window > MAX_REPLAY_WINDOW {
            return Err(RfError::InvalidParameter {
                name: "replay window",
                value: self.replay_window as f64,
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Replay window
// ---------------------------------------------------------------------

/// Verdict of a replay-window admission test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayVerdict {
    /// Never seen: accepted and recorded.
    Fresh,
    /// Inside the window and already accepted once.
    Replayed,
    /// Older than the window can vouch for.
    Stale,
}

/// Sliding bitmap over the extended sequence space.
///
/// A power-of-two ring of bits indexed by `ext & (window - 1)`; moving
/// the frontier forward clears exactly the bits whose sequence numbers
/// the ring position now represents. Invariants (pinned by the unit
/// tests, including across the `u16` wrap):
///
/// * a nonce is accepted at most once, ever;
/// * any nonce within `window` of the highest accepted one is
///   classified exactly (fresh vs replayed);
/// * anything older is `Stale`, never silently accepted.
#[derive(Debug, Clone)]
pub struct ReplayWindow {
    bits: Vec<u64>,
    window: u64,
    highest: u64,
    primed: bool,
}

impl ReplayWindow {
    /// A window spanning at least `span` sequence numbers (rounded up
    /// to a power of two, minimum 2).
    #[must_use]
    pub fn new(span: usize) -> Self {
        let window = span.next_power_of_two().max(2) as u64;
        let words = usize::try_from(window.div_ceil(64)).expect("window fits usize");
        Self {
            bits: vec![0; words.max(1)],
            window,
            highest: 0,
            primed: false,
        }
    }

    /// Whether any nonce has been accepted yet.
    #[must_use]
    pub fn primed(&self) -> bool {
        self.primed
    }

    /// The highest accepted extended sequence number (0 before any).
    #[must_use]
    pub fn highest(&self) -> u64 {
        self.highest
    }

    /// The effective window span.
    #[must_use]
    pub fn span(&self) -> u64 {
        self.window
    }

    fn index(&self, ext: u64) -> (usize, u64) {
        let slot = ext & (self.window - 1);
        (
            usize::try_from(slot / 64).expect("slot fits usize"),
            1_u64 << (slot % 64),
        )
    }

    fn set(&mut self, ext: u64) {
        let (word, mask) = self.index(ext);
        self.bits[word] |= mask;
    }

    fn clear(&mut self, ext: u64) {
        let (word, mask) = self.index(ext);
        self.bits[word] &= !mask;
    }

    fn seen(&self, ext: u64) -> bool {
        let (word, mask) = self.index(ext);
        self.bits[word] & mask != 0
    }

    /// Admits or rejects extended sequence number `ext`, recording it
    /// on [`ReplayVerdict::Fresh`].
    pub fn try_accept(&mut self, ext: u64) -> ReplayVerdict {
        if !self.primed {
            self.primed = true;
            for word in &mut self.bits {
                *word = 0;
            }
            self.highest = ext;
            self.set(ext);
            return ReplayVerdict::Fresh;
        }
        if ext > self.highest {
            let advance = ext - self.highest;
            if advance >= self.window {
                for word in &mut self.bits {
                    *word = 0;
                }
            } else {
                // Clear only the ring positions the frontier moves over.
                for s in (self.highest + 1)..=ext {
                    self.clear(s);
                }
            }
            self.highest = ext;
            self.set(ext);
            return ReplayVerdict::Fresh;
        }
        if self.highest - ext >= self.window {
            return ReplayVerdict::Stale;
        }
        if self.seen(ext) {
            ReplayVerdict::Replayed
        } else {
            self.set(ext);
            ReplayVerdict::Fresh
        }
    }
}

// ---------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------

/// Exact acceptance/rejection ledger for one authenticated direction.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AuthStats {
    /// Frames sealed by the sender.
    pub sealed: u64,
    /// Frames that passed MAC + replay checks and were handed inward.
    pub accepted: u64,
    /// Frames rejected by the constant-time MAC comparison.
    pub rejected_mac: u64,
    /// Frames rejected before the MAC on public header grounds
    /// (truncated envelope, bad magic, bad version).
    pub rejected_malformed: u64,
    /// Frames advertising a different key id.
    pub rejected_key: u64,
    /// Authentic frames whose nonce was already accepted once.
    pub replayed: u64,
    /// Frames older than the replay window can vouch for (or from
    /// before the stream began).
    pub stale: u64,
}

impl AuthStats {
    /// All authentication rejections (MAC + malformed + key mismatch) —
    /// everything except replay/stale filtering.
    #[must_use]
    pub fn rejected_auth(&self) -> u64 {
        self.rejected_mac + self.rejected_malformed + self.rejected_key
    }

    /// Every frame the receiver refused, for conservation checks.
    #[must_use]
    pub fn rejected_total(&self) -> u64 {
        self.rejected_auth() + self.replayed + self.stale
    }
}

// ---------------------------------------------------------------------
// Sender / receiver
// ---------------------------------------------------------------------

/// Seals inner wire packets into authenticated envelopes.
///
/// The sender trusts its caller to feed monotonically advancing
/// sequence numbers (the packetizer does); sealing the same sequence
/// number twice reuses its nonce, which the *receiver* rejects as a
/// replay — misuse is contained, not silent.
#[derive(Debug, Clone)]
pub struct AuthSender {
    key: AuthKey,
    mac: LinkMac,
    anchor: u64,
    primed: bool,
    sealed: u64,
}

impl AuthSender {
    /// A sender under `config`'s key.
    #[must_use]
    pub fn new(config: &AuthConfig) -> Self {
        Self {
            key: config.key,
            mac: LinkMac::new(&config.key.key),
            anchor: 0,
            primed: false,
            sealed: 0,
        }
    }

    /// Frames sealed so far.
    #[must_use]
    pub fn sealed(&self) -> u64 {
        self.sealed
    }

    /// Seals `inner` (a well-formed packet from
    /// [`crate::packet::packetize_into`]) into `out` (cleared first).
    /// Allocation-free once `out` has capacity.
    ///
    /// # Errors
    ///
    /// [`RfError::CorruptPacket`] when `inner` is too short or does not
    /// start with the packet magic; [`RfError::AuthReject`] when the
    /// sequence number cannot be bound to a nonce (a backward reference
    /// from before the stream began).
    pub fn seal_into(&mut self, inner: &[u8], out: &mut Vec<u8>) -> Result<()> {
        out.clear();
        if inner.len() < HEADER_BYTES + TRAILER_BYTES || inner[0..2] != PACKET_MAGIC.to_be_bytes() {
            return Err(RfError::CorruptPacket {
                reason: "unsealable inner packet",
            });
        }
        let seq = u16::from_be_bytes([inner[2], inner[3]]);
        let ext = if self.primed {
            extend_sequence(self.anchor, seq).ok_or(RfError::AuthReject {
                reason: "nonce underflow",
            })?
        } else {
            u64::from(seq)
        };
        self.primed = true;
        self.anchor = ext;
        out.reserve(AUTH_OVERHEAD_BYTES + inner.len());
        out.extend_from_slice(&AUTH_MAGIC.to_be_bytes());
        out.push(AUTH_VERSION);
        out.push(self.key.key_id);
        out.extend_from_slice(inner);
        let tag = self.mac.tag(ext, out);
        out.extend_from_slice(&tag.to_le_bytes());
        self.sealed += 1;
        Ok(())
    }
}

/// Opens authenticated envelopes: MAC-then-everything.
///
/// See the module docs for the verification ordering contract. The
/// returned slice borrows the caller's wire buffer — opening writes no
/// payload bytes anywhere, so a rejected frame leaves every caller
/// buffer untouched.
#[derive(Debug, Clone)]
pub struct AuthReceiver {
    key: AuthKey,
    mac: LinkMac,
    window: ReplayWindow,
    stats: AuthStats,
}

impl AuthReceiver {
    /// A receiver under `config`.
    ///
    /// # Errors
    ///
    /// Propagates [`AuthConfig::validate`] errors.
    pub fn new(config: &AuthConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            key: config.key,
            mac: LinkMac::new(&config.key.key),
            window: ReplayWindow::new(config.replay_window),
            stats: AuthStats::default(),
        })
    }

    /// The acceptance/rejection ledger (the `sealed` field stays 0 —
    /// it belongs to the sender).
    #[must_use]
    pub fn stats(&self) -> AuthStats {
        self.stats
    }

    /// The replay window (inspection for tests and telemetry).
    #[must_use]
    pub fn window(&self) -> &ReplayWindow {
        &self.window
    }

    /// Verifies one sealed frame and returns the inner packet slice.
    ///
    /// # Errors
    ///
    /// [`RfError::AuthReject`] on any verification failure; the exact
    /// reason is counted in [`AuthStats`]. No inner byte is parsed and
    /// nothing is written before the MAC verifies.
    pub fn open<'a>(&mut self, wire: &'a [u8]) -> Result<&'a [u8]> {
        if wire.len() < MIN_SEALED_BYTES {
            self.stats.rejected_malformed += 1;
            return Err(RfError::AuthReject {
                reason: "truncated envelope",
            });
        }
        if wire[0..2] != AUTH_MAGIC.to_be_bytes() {
            self.stats.rejected_malformed += 1;
            return Err(RfError::AuthReject {
                reason: "bad auth magic",
            });
        }
        if wire[2] != AUTH_VERSION {
            self.stats.rejected_malformed += 1;
            return Err(RfError::AuthReject {
                reason: "bad auth version",
            });
        }
        if wire[3] != self.key.key_id {
            self.stats.rejected_key += 1;
            return Err(RfError::AuthReject {
                reason: "key mismatch",
            });
        }
        // The sequence field sits at a fixed offset inside the inner
        // header; reading it is a public-header access, not a payload
        // parse.
        let seq = u16::from_be_bytes([wire[AUTH_HEADER_BYTES + 2], wire[AUTH_HEADER_BYTES + 3]]);
        let anchor = if self.window.primed() {
            self.window.highest()
        } else {
            // Before any acceptance the nonce is the raw sequence.
            u64::from(seq)
        };
        let Some(ext) = extend_sequence(anchor, seq) else {
            self.stats.stale += 1;
            return Err(RfError::AuthReject {
                reason: "stale nonce",
            });
        };
        let body_len = wire.len() - AUTH_TAG_BYTES;
        let expected = self.mac.tag(ext, &wire[..body_len]).to_le_bytes();
        let carried: [u8; AUTH_TAG_BYTES] = wire[body_len..].try_into().expect("tag is 8 bytes");
        if !ct_eq_tag(&expected, &carried) {
            self.stats.rejected_mac += 1;
            return Err(RfError::AuthReject {
                reason: "mac mismatch",
            });
        }
        match self.window.try_accept(ext) {
            ReplayVerdict::Fresh => {
                self.stats.accepted += 1;
                Ok(&wire[AUTH_HEADER_BYTES..body_len])
            }
            ReplayVerdict::Replayed => {
                self.stats.replayed += 1;
                Err(RfError::AuthReject { reason: "replayed" })
            }
            ReplayVerdict::Stale => {
                self.stats.stale += 1;
                Err(RfError::AuthReject {
                    reason: "stale nonce",
                })
            }
        }
    }

    /// Convenience: verify, then depacketize the inner packet into
    /// `samples`. On any rejection — including a bad inner CRC —
    /// `samples` is untouched (the regression contract of the
    /// pre-write-validation audit; see `packet::depacketize_into`).
    ///
    /// # Errors
    ///
    /// [`RfError::AuthReject`] on verification failure, or the inner
    /// packet's [`RfError::CorruptPacket`].
    pub fn open_packet_into(
        &mut self,
        wire: &[u8],
        samples: &mut Vec<u16>,
    ) -> Result<crate::packet::FrameHeader> {
        let inner = self.open(wire)?;
        crate::packet::depacketize_into(inner, samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::packetize;

    fn key() -> AuthKey {
        AuthKey::from_seed(0x5EA1, 7)
    }

    fn pair() -> (AuthSender, AuthReceiver) {
        let config = AuthConfig::new(key());
        (
            AuthSender::new(&config),
            AuthReceiver::new(&config).unwrap(),
        )
    }

    /// ARQ-style sequence fixture (mirrors `arq::tests::frame`).
    fn frame(seq: u16) -> (Vec<u16>, Vec<u8>) {
        let samples: Vec<u16> = (0..32_u16)
            .map(|c| c.wrapping_mul(13).wrapping_add(seq) % 1024)
            .collect();
        let wire = packetize(seq, &samples, 10).unwrap();
        (samples, wire)
    }

    #[test]
    fn siphash_reference_vectors() {
        // Reference vectors from the SipHash paper / reference code:
        // key = 00 01 02 … 0f, input = first n bytes of 00 01 02 ….
        let mut k = [0_u8; 16];
        for (i, byte) in k.iter_mut().enumerate() {
            *byte = i as u8;
        }
        let input: Vec<u8> = (0..16).collect();
        let expect = [
            (0_usize, 0x726f_db47_dd0e_0e31_u64),
            (1, 0x74f8_39c5_93dc_67fd),
            (8, 0x93f5_f579_9a93_2462),
            (15, 0xa129_ca61_49be_45e5),
        ];
        for (len, tag) in expect {
            let mut mac = SipMac::new(&k);
            mac.write(&input[..len]);
            assert_eq!(mac.finish(), tag, "siphash-2-4 of {len} bytes");
        }
    }

    #[test]
    fn incremental_writes_match_one_shot() {
        let k = key().key;
        let data: Vec<u8> = (0..253_u32).map(|i| (i * 31 % 251) as u8).collect();
        let mut one = SipMac::new(&k);
        one.write(&data);
        let whole = one.finish();
        for split in [0, 1, 7, 8, 9, 64, 252, 253] {
            let mut two = SipMac::new(&k);
            two.write(&data[..split]);
            two.write(&data[split..]);
            assert_eq!(two.finish(), whole, "split at {split}");
        }
        assert_eq!(mac64(&k, 0, &data[8..]), {
            let mut m = SipMac::new(&k);
            m.write(&0_u64.to_le_bytes());
            m.write(&data[8..]);
            m.finish()
        });
    }

    #[test]
    fn link_mac_agrees_across_instances_and_binds_every_input() {
        let k = key().key;
        let data: Vec<u8> = (0..1293_u32).map(|i| (i * 131 % 251) as u8).collect();
        let mut a = LinkMac::new(&k);
        let mut b = LinkMac::new(&k);
        // Warm `b` on a longer message first so its pad is pre-grown —
        // pad growth order must not change tags.
        let longer = vec![0xA5_u8; 4096];
        let _ = b.tag(0, &longer);
        let tag = a.tag(7, &data);
        assert_eq!(tag, b.tag(7, &data), "independent instances agree");
        // Nonce, key, and content sensitivity.
        assert_ne!(tag, a.tag(8, &data));
        assert_ne!(
            tag,
            LinkMac::new(&AuthKey::from_seed(0xBAD, 7).key).tag(7, &data)
        );
        let mut flipped = data.clone();
        flipped[1292] ^= 0x01;
        assert_ne!(tag, a.tag(7, &flipped));
    }

    #[test]
    fn link_mac_length_binding_defeats_zero_pad_aliasing() {
        // `m` and `m ‖ 0…0` NH-hash identically after zero-padding; the
        // byte length in the PRF finalization must split them.
        let k = key().key;
        let mut mac = LinkMac::new(&k);
        let m = [3_u8; 21];
        let mut padded = [0_u8; 32];
        padded[..21].copy_from_slice(&m);
        assert_ne!(mac.tag(1, &m), mac.tag(1, &padded));
        // Empty vs single zero byte, same idea at the floor.
        assert_ne!(mac.tag(1, &[]), mac.tag(1, &[0]));
        // Tail shorter than one 8-byte word still participates.
        assert_ne!(mac.tag(1, &[1]), mac.tag(1, &[2]));
    }

    #[test]
    fn constant_time_compare_is_exact() {
        let a = [1, 2, 3, 4, 5, 6, 7, 8];
        assert!(ct_eq_tag(&a, &a));
        for i in 0..8 {
            let mut b = a;
            b[i] ^= 0x80;
            assert!(!ct_eq_tag(&a, &b));
        }
    }

    #[test]
    fn extend_sequence_unwraps_across_the_u16_boundary() {
        assert_eq!(extend_sequence(65_534, 65_535), Some(65_535));
        assert_eq!(extend_sequence(65_535, 0), Some(65_536));
        assert_eq!(extend_sequence(65_536, 5), Some(65_541));
        // Backward references stay in the same epoch.
        assert_eq!(extend_sequence(65_536, 65_535), Some(65_535));
        assert_eq!(extend_sequence(131_072, 65_535), Some(131_071));
        // A backward reference from before the stream began is refused.
        assert_eq!(extend_sequence(5, 65_535), None);
        // Far-forward stays below the ambiguity threshold.
        assert_eq!(extend_sequence(100, 100 + 0x7FFF), Some(100 + 0x7FFF));
    }

    #[test]
    fn seal_open_round_trip_is_byte_identical() {
        let (mut tx, mut rx) = pair();
        let mut sealed = Vec::new();
        for seq in 0..50_u16 {
            let (_, inner) = frame(seq);
            tx.seal_into(&inner, &mut sealed).unwrap();
            assert_eq!(sealed.len(), inner.len() + AUTH_OVERHEAD_BYTES);
            let opened = rx.open(&sealed).unwrap();
            assert_eq!(opened, inner.as_slice(), "inner packet survives");
        }
        let stats = rx.stats();
        assert_eq!(stats.accepted, 50);
        assert_eq!(stats.rejected_total(), 0);
        assert_eq!(tx.sealed(), 50);
    }

    #[test]
    fn open_packet_into_round_trips_samples() {
        let (mut tx, mut rx) = pair();
        let (samples, inner) = frame(3);
        let mut sealed = Vec::new();
        tx.seal_into(&inner, &mut sealed).unwrap();
        let mut out = vec![0xAAAA_u16; 4];
        let header = rx.open_packet_into(&sealed, &mut out).unwrap();
        assert_eq!(header.sequence, 3);
        assert_eq!(out, samples);
    }

    #[test]
    fn rejected_frames_leave_the_output_buffer_untouched() {
        let (mut tx, mut rx) = pair();
        let (_, inner) = frame(9);
        let mut sealed = Vec::new();
        tx.seal_into(&inner, &mut sealed).unwrap();
        let sentinel = vec![0xBEEF_u16; 3];
        // MAC flip: no byte of the output buffer may change.
        let mut bad = sealed.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        let mut out = sentinel.clone();
        assert!(rx.open_packet_into(&bad, &mut out).is_err());
        assert_eq!(out, sentinel, "rejected before any payload write");
        // Truncated envelope: same contract.
        let mut out = sentinel.clone();
        assert!(rx
            .open_packet_into(&sealed[..MIN_SEALED_BYTES - 1], &mut out)
            .is_err());
        assert_eq!(out, sentinel);
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let (mut tx, mut rx) = pair();
        let (_, inner) = frame(1);
        let mut sealed = Vec::new();
        tx.seal_into(&inner, &mut sealed).unwrap();
        rx.open(&sealed).unwrap();
        for bit in 0..sealed.len() * 8 {
            let mut bad = sealed.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(rx.open(&bad).is_err(), "flip of bit {bit} accepted");
        }
        // The pristine frame again is a replay, not a fresh accept.
        assert!(matches!(
            rx.open(&sealed),
            Err(RfError::AuthReject { reason: "replayed" })
        ));
        assert_eq!(rx.stats().accepted, 1);
    }

    #[test]
    fn wrong_key_and_wrong_key_id_are_rejected_distinctly() {
        let victim = AuthConfig::new(key());
        let mut rx = AuthReceiver::new(&victim).unwrap();
        // Same key id, different key: MAC mismatch.
        let forger = AuthConfig::new(AuthKey {
            key: AuthKey::from_seed(0xBAD, 7).key,
            key_id: 7,
        });
        let mut tx = AuthSender::new(&forger);
        let mut sealed = Vec::new();
        tx.seal_into(&frame(0).1, &mut sealed).unwrap();
        assert!(matches!(
            rx.open(&sealed),
            Err(RfError::AuthReject {
                reason: "mac mismatch"
            })
        ));
        // Different key id: rejected before any MAC work.
        let mut flipped = sealed.clone();
        flipped[3] ^= 0x55;
        assert!(matches!(
            rx.open(&flipped),
            Err(RfError::AuthReject {
                reason: "key mismatch"
            })
        ));
        let stats = rx.stats();
        assert_eq!(stats.rejected_mac, 1);
        assert_eq!(stats.rejected_key, 1);
        assert_eq!(stats.accepted, 0);
    }

    #[test]
    fn nonce_reuse_is_rejected_as_replay() {
        let (mut tx, mut rx) = pair();
        let mut a = Vec::new();
        let mut b = Vec::new();
        tx.seal_into(&frame(5).1, &mut a).unwrap();
        // Different payload, same sequence number → same nonce.
        let other = packetize(5, &[1, 2, 3], 10).unwrap();
        tx.seal_into(&other, &mut b).unwrap();
        assert!(rx.open(&a).is_ok());
        assert!(matches!(
            rx.open(&b),
            Err(RfError::AuthReject { reason: "replayed" })
        ));
        assert_eq!(rx.stats().replayed, 1);
    }

    #[test]
    fn replay_window_duplicate_and_stale_edges() {
        let mut w = ReplayWindow::new(16);
        assert_eq!(w.span(), 16);
        assert_eq!(w.try_accept(100), ReplayVerdict::Fresh);
        assert_eq!(w.try_accept(100), ReplayVerdict::Replayed);
        // Out-of-order within the window: fresh once, replayed after.
        assert_eq!(w.try_accept(95), ReplayVerdict::Fresh);
        assert_eq!(w.try_accept(95), ReplayVerdict::Replayed);
        // Beyond the window: stale, and stays stale.
        assert_eq!(w.try_accept(84), ReplayVerdict::Stale);
        // Advance clears exactly the overwritten positions.
        assert_eq!(w.try_accept(108), ReplayVerdict::Fresh);
        assert_eq!(w.try_accept(100), ReplayVerdict::Replayed, "still tracked");
        // Distance 15 is the last in-window slot; 16 falls off.
        assert_eq!(w.try_accept(93), ReplayVerdict::Fresh, "edge of window");
        assert_eq!(w.try_accept(92), ReplayVerdict::Stale, "fell off");
        // A huge jump wipes the bitmap without false replays.
        assert_eq!(w.try_accept(10_000), ReplayVerdict::Fresh);
        assert_eq!(w.try_accept(9_999), ReplayVerdict::Fresh);
        assert_eq!(w.try_accept(9_999), ReplayVerdict::Replayed);
    }

    #[test]
    fn replay_window_tracks_the_u16_wrap_boundary() {
        // Sealed frames crossing 65535 → 0, using the ARQ fixtures.
        let (mut tx, mut rx) = pair();
        let mut sealed = Vec::new();
        let mut copies: Vec<Vec<u8>> = Vec::new();
        for i in 0..40_u32 {
            let seq = 65_515_u16.wrapping_add(i as u16);
            tx.seal_into(&frame(seq).1, &mut sealed).unwrap();
            rx.open(&sealed).unwrap();
            copies.push(sealed.clone());
        }
        assert_eq!(rx.stats().accepted, 40);
        assert_eq!(rx.window().highest(), u64::from(u16::MAX) + 19);
        // Every copy from either side of the wrap is now a replay.
        for copy in &copies {
            assert!(matches!(
                rx.open(copy),
                Err(RfError::AuthReject { reason: "replayed" })
            ));
        }
        assert_eq!(rx.stats().replayed, 40);
        // A frame from far before the window is stale, not replayed.
        let old = AuthConfig::new(key());
        let mut old_tx = AuthSender::new(&old);
        let mut shallow = AuthConfig::new(key());
        shallow.replay_window = 8;
        let mut shallow_rx = AuthReceiver::new(&shallow).unwrap();
        old_tx.seal_into(&frame(100).1, &mut sealed).unwrap();
        shallow_rx.open(&sealed).unwrap();
        let stale_copy = sealed.clone();
        for i in 1..=8_u16 {
            old_tx.seal_into(&frame(100 + i).1, &mut sealed).unwrap();
            shallow_rx.open(&sealed).unwrap();
        }
        assert!(matches!(
            shallow_rx.open(&stale_copy),
            Err(RfError::AuthReject {
                reason: "stale nonce"
            })
        ));
        assert_eq!(shallow_rx.stats().stale, 1);
    }

    #[test]
    fn out_of_order_delivery_within_the_window_is_accepted() {
        // ARQ retransmissions arrive late; their nonce was never
        // accepted, so the window must admit them.
        let (mut tx, mut rx) = pair();
        let mut held = Vec::new();
        let mut sealed = Vec::new();
        tx.seal_into(&frame(0).1, &mut held).unwrap();
        for seq in 1..10_u16 {
            tx.seal_into(&frame(seq).1, &mut sealed).unwrap();
            rx.open(&sealed).unwrap();
        }
        // Sequence 0 arrives after 1..9: late but fresh.
        assert!(rx.open(&held).is_ok());
        assert_eq!(rx.stats().accepted, 10);
        assert_eq!(rx.stats().replayed + rx.stats().stale, 0);
    }

    #[test]
    fn config_validation_bounds_the_window() {
        let mut config = AuthConfig::new(key());
        assert!(config.validate().is_ok());
        config.replay_window = 1;
        assert!(config.validate().is_err());
        config.replay_window = MAX_REPLAY_WINDOW + 1;
        assert!(config.validate().is_err());
        assert!(AuthReceiver::new(&config).is_err());
    }

    #[test]
    fn sender_rejects_malformed_inner_packets() {
        let (mut tx, _) = pair();
        let mut out = Vec::new();
        assert!(tx.seal_into(&[0; 4], &mut out).is_err());
        let mut bad_magic = frame(0).1;
        bad_magic[0] ^= 0xFF;
        assert!(tx.seal_into(&bad_magic, &mut out).is_err());
        assert_eq!(tx.sealed(), 0);
    }

    #[test]
    fn key_expansion_is_deterministic_and_id_sensitive() {
        assert_eq!(AuthKey::from_seed(1, 0), AuthKey::from_seed(1, 0));
        assert_ne!(AuthKey::from_seed(1, 0).key, AuthKey::from_seed(2, 0).key);
        assert_ne!(
            AuthKey::from_seed(1, 0).key_id,
            AuthKey::from_seed(1, 1).key_id
        );
    }
}
