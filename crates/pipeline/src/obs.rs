//! Registry instrumentation for pipeline stages.
//!
//! [`crate::Pipeline::instrument`] registers one metric family per
//! stage in a [`mindful_core::obs::Registry`] and stores the returned
//! handles in the stage's slot; the driver then records into them on
//! every step. Registration is the only allocating part — recording is
//! relaxed atomics, so the pipeline's zero-allocation guarantee holds
//! for instrumented runs (proven by the crate's counting-allocator
//! test).
//!
//! Metric names follow `{prefix}.{index}.{stage}.{metric}`:
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `frames_in` | counter | frames handed to the stage |
//! | `frames_out` | counter | frames the stage emitted |
//! | `bytes_out` | counter | wire bytes emitted (byte sinks only) |
//! | `buffer_bytes` | gauge | output-buffer backing storage (high water = peak) |
//! | `latency_ns` | histogram | per-frame wall time inside the stage |
//! | `faults.<field>` | gauge | fault-counter snapshot (fault-aware stages only) |
//! | `secure.<field>` | gauge | security-counter snapshot (secure-aware stages only) |
//!
//! Fault and security counters are *absolute* snapshots maintained by
//! the stages themselves ([`crate::Stage::fault_telemetry`],
//! [`crate::Stage::secure_telemetry`]), so they surface as gauges
//! mirroring the latest snapshot rather than re-counted deltas — a
//! scrape is field-exact against [`crate::FaultTelemetry`] /
//! [`crate::SecureTelemetry`]. The `secure.*` leaf names are the
//! canonical constants in [`mindful_core::obs::names`], shared with
//! the scoreboard and CI assertions that read snapshots back.
//!
//! Without the crate's `obs` feature this module compiles to a no-op:
//! `instrument` registers nothing and the driver records nothing.

#![cfg_attr(
    not(feature = "obs"),
    allow(unused_variables, unused_imports, dead_code, clippy::unused_self)
)]

use std::time::Duration;

#[cfg(not(feature = "obs"))]
use mindful_core::obs::Registry;
#[cfg(feature = "obs")]
use mindful_core::obs::{Counter, Gauge, Histogram, Registry};

use crate::fault::FaultTelemetry;
use crate::frame::{Frame, FrameBuf, StageOutput};
use crate::secure::SecureTelemetry;

/// Per-field gauges mirroring a stage's [`FaultTelemetry`] snapshot.
#[cfg(feature = "obs")]
#[derive(Debug, Clone)]
struct FaultGauges {
    injected: Gauge,
    detected: Gauge,
    recovered: Gauge,
    lost: Gauge,
    degraded: Gauge,
    quarantined: Gauge,
    naks: Gauge,
    max_gap: Gauge,
    recovery_steps: Gauge,
}

#[cfg(feature = "obs")]
impl FaultGauges {
    fn register(registry: &Registry, base: &str) -> Self {
        Self {
            injected: registry.gauge(&format!("{base}.injected")),
            detected: registry.gauge(&format!("{base}.detected")),
            recovered: registry.gauge(&format!("{base}.recovered")),
            lost: registry.gauge(&format!("{base}.lost")),
            degraded: registry.gauge(&format!("{base}.degraded")),
            quarantined: registry.gauge(&format!("{base}.quarantined")),
            naks: registry.gauge(&format!("{base}.naks")),
            max_gap: registry.gauge(&format!("{base}.max_gap")),
            recovery_steps: registry.gauge(&format!("{base}.recovery_steps")),
        }
    }

    fn set(&self, t: &FaultTelemetry) {
        self.injected.set(t.injected);
        self.detected.set(t.detected);
        self.recovered.set(t.recovered);
        self.lost.set(t.lost);
        self.degraded.set(t.degraded);
        self.quarantined.set(t.quarantined);
        self.naks.set(t.naks);
        self.max_gap.set(t.max_gap);
        self.recovery_steps.set(t.recovery_steps);
    }
}

/// Per-field gauges mirroring a stage's [`SecureTelemetry`] snapshot,
/// named by the canonical leaves in [`mindful_core::obs::names`].
#[cfg(feature = "obs")]
#[derive(Debug, Clone)]
struct SecureGauges {
    sealed: Gauge,
    accepted: Gauge,
    rejected_auth: Gauge,
    replayed: Gauge,
    stale: Gauge,
    firewalled: Gauge,
    coherence_ppm: Gauge,
}

#[cfg(feature = "obs")]
impl SecureGauges {
    fn register(registry: &Registry, base: &str) -> Self {
        use mindful_core::obs::names;
        let gauge = |leaf: &str| registry.gauge(&format!("{base}.{leaf}"));
        Self {
            sealed: gauge(names::FRAMES_SEALED),
            accepted: gauge(names::FRAMES_ACCEPTED),
            rejected_auth: gauge(names::FRAMES_REJECTED_AUTH),
            replayed: gauge(names::FRAMES_REPLAYED),
            stale: gauge(names::FRAMES_STALE),
            firewalled: gauge(names::FRAMES_FIREWALLED),
            coherence_ppm: gauge(names::COHERENCE_PPM),
        }
    }

    fn set(&self, t: &SecureTelemetry) {
        self.sealed.set(t.sealed);
        self.accepted.set(t.accepted);
        self.rejected_auth.set(t.rejected_auth);
        self.replayed.set(t.replayed);
        self.stale.set(t.stale);
        self.firewalled.set(t.firewalled);
        self.coherence_ppm.set(t.coherence_ppm);
    }
}

/// Registry handles for one instrumented stage slot.
///
/// Registered once by [`crate::Pipeline::instrument`]; every recording
/// method is lock-free and allocation-free.
#[derive(Debug, Clone)]
pub(crate) struct SlotObs {
    #[cfg(feature = "obs")]
    frames_in: Counter,
    #[cfg(feature = "obs")]
    frames_out: Counter,
    #[cfg(feature = "obs")]
    bytes_out: Counter,
    #[cfg(feature = "obs")]
    buffer_bytes: Gauge,
    #[cfg(feature = "obs")]
    latency_ns: Histogram,
    #[cfg(feature = "obs")]
    faults: Option<FaultGauges>,
    #[cfg(feature = "obs")]
    secure: Option<SecureGauges>,
}

impl SlotObs {
    /// Registers the stage's metric family under
    /// `{prefix}.{index}.{name}`. `fault_aware` stages additionally get
    /// the `faults.*` gauge set, `secure_aware` stages the `secure.*`
    /// set.
    pub(crate) fn register(
        registry: &Registry,
        prefix: &str,
        index: usize,
        name: &str,
        fault_aware: bool,
        secure_aware: bool,
    ) -> Self {
        #[cfg(feature = "obs")]
        {
            let base = format!("{prefix}.{index}.{name}");
            Self {
                frames_in: registry.counter(&format!("{base}.frames_in")),
                frames_out: registry.counter(&format!("{base}.frames_out")),
                bytes_out: registry.counter(&format!("{base}.bytes_out")),
                buffer_bytes: registry.gauge(&format!("{base}.buffer_bytes")),
                latency_ns: registry.histogram(&format!("{base}.latency_ns")),
                faults: fault_aware
                    .then(|| FaultGauges::register(registry, &format!("{base}.faults"))),
                secure: secure_aware
                    .then(|| SecureGauges::register(registry, &format!("{base}.secure"))),
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            Self {}
        }
    }

    /// Accounts one [`crate::Stage::process`] call.
    #[inline]
    pub(crate) fn record(&self, elapsed: Duration, outcome: StageOutput, out: &FrameBuf) {
        #[cfg(feature = "obs")]
        {
            self.frames_in.increment();
            self.latency_ns
                .record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
            if outcome == StageOutput::Emitted {
                self.record_emission(out);
            }
        }
    }

    /// Accounts a frame produced by [`crate::Stage::finish`] — an
    /// emission without a corresponding input frame.
    #[inline]
    pub(crate) fn record_flush(&self, elapsed: Duration, out: &FrameBuf) {
        #[cfg(feature = "obs")]
        {
            self.latency_ns
                .record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
            self.record_emission(out);
        }
    }

    #[cfg(feature = "obs")]
    #[inline]
    fn record_emission(&self, out: &FrameBuf) {
        self.frames_out.increment();
        if let Frame::Bytes(wire) = out.as_frame() {
            self.bytes_out.add(wire.len() as u64);
        }
        self.buffer_bytes.set(out.capacity_bytes() as u64);
    }

    /// Mirrors the stage's latest fault snapshot into the `faults.*`
    /// gauges (no-op for fault-unaware stages).
    #[inline]
    pub(crate) fn record_faults(&self, snapshot: Option<&FaultTelemetry>) {
        #[cfg(feature = "obs")]
        if let (Some(gauges), Some(t)) = (&self.faults, snapshot) {
            gauges.set(t);
        }
    }

    /// Mirrors the stage's latest security snapshot into the
    /// `secure.*` gauges (no-op for secure-unaware stages).
    #[inline]
    pub(crate) fn record_secure(&self, snapshot: Option<&SecureTelemetry>) {
        #[cfg(feature = "obs")]
        if let (Some(gauges), Some(t)) = (&self.secure, snapshot) {
            gauges.set(t);
        }
    }
}
