//! The zero-overhead acceptance bench for the observability layer: the
//! same warm 1024-channel implant chain (sense → spike → bin → Kalman →
//! packetize) is driven twice, bare and fully instrumented (per-stage
//! counters, latency histograms, buffer gauges), in interleaved pairs
//! so frequency drift cancels out of the medians. The instrumented
//! median must stay within 5% of the bare one — metric recording is
//! relaxed atomics on the hot path and registration happens once, so
//! the tax is a few nanoseconds per stage step.
//!
//! Medians land in `results/bench/BENCH_obs.json`. Set
//! `MINDFUL_BENCH_QUICK=1` (as CI does) to shrink iteration counts.

use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use mindful_core::obs::Registry;
use mindful_decode::binning::BinAccumulator;
use mindful_decode::kalman::KalmanDecoder;
use mindful_decode::spike::SpikeDetector;
use mindful_pipeline::prelude::*;
use mindful_signal::prelude::NeuralInterface;

/// Binning window of the decode tail.
const WINDOW: usize = 4;

/// Pipeline steps per timed run — enough for the per-step cost to
/// dominate the loop scaffolding.
const STEPS: usize = 64;

/// Acceptance bar: instrumented ÷ bare median, at most this.
const MAX_OVERHEAD: f64 = 1.05;

fn quick() -> bool {
    mindful_core::env::bench_quick()
}

/// Calibrates a detector and Kalman decoder from a recorded trajectory,
/// exactly as the glue sites do.
fn calibrate(ni: &mut NeuralInterface) -> (SpikeDetector, KalmanDecoder) {
    let frames = ni.record_trajectory(160).expect("trajectory records");
    let rows: Vec<Vec<f64>> = frames
        .iter()
        .map(|f| f.samples.iter().map(|&c| f64::from(c)).collect())
        .collect();
    let mut detector = SpikeDetector::calibrate(&rows[..64], 2.5, 3).expect("detector calibrates");
    let events: Vec<Vec<bool>> = rows
        .iter()
        .map(|r| detector.step(r).expect("detector steps"))
        .collect();
    let bins = BinAccumulator::new(ni.channels(), WINDOW)
        .expect("binner builds")
        .bin_all(&events)
        .expect("binning succeeds");
    let bin_rows: Vec<Vec<f64>> = bins
        .iter()
        .map(|b| b.iter().map(|&c| f64::from(c)).collect())
        .collect();
    let bin_intents: Vec<(f64, f64)> = (0..bins.len())
        .map(|k| {
            let i = frames[(k + 1) * WINDOW - 1].intent;
            (i.x, i.y)
        })
        .collect();
    let kalman = KalmanDecoder::calibrate(&bin_rows, &bin_intents).expect("kalman calibrates");
    (detector, kalman)
}

/// One 1024-channel five-stage chain, optionally instrumented.
fn build_chain(registry: Option<(&Registry, &str)>) -> Pipeline {
    let mut ni = NeuralInterface::new(32, 600, 10, 5).expect("interface builds");
    assert_eq!(ni.channels(), 1024);
    let (detector, kalman) = calibrate(&mut ni);
    let channels = ni.channels();
    let pipeline = Pipeline::new()
        .with_stage(SenseStage::from_interface(ni, IntentSchedule::FigureEight))
        .with_stage(SpikeStage::new(detector))
        .with_stage(BinStage::new(channels, WINDOW).expect("bin stage builds"))
        .with_stage(KalmanStage::new(kalman))
        .with_stage(PacketizeStage::new(10).expect("packetize stage builds"));
    match registry {
        Some((registry, prefix)) => pipeline.with_instrumentation(registry, prefix),
        None => pipeline,
    }
}

/// Drives `STEPS` warm steps and returns the emission count.
fn run_steps(pipeline: &mut Pipeline) -> u64 {
    let mut emitted = 0_u64;
    for _ in 0..STEPS {
        if pipeline.step().expect("warm step succeeds").is_some() {
            emitted += 1;
        }
    }
    emitted
}

/// Interleaved medians: run the two closures in alternating pairs so
/// clock-frequency drift hits both equally.
fn paired_median_ns(iters: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    let mut ta: Vec<f64> = Vec::with_capacity(iters);
    let mut tb: Vec<f64> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        a();
        ta.push(start.elapsed().as_secs_f64() * 1e9);
        let start = Instant::now();
        b();
        tb.push(start.elapsed().as_secs_f64() * 1e9);
    }
    ta.sort_by(f64::total_cmp);
    tb.sort_by(f64::total_cmp);
    (ta[ta.len() / 2], tb[tb.len() / 2])
}

fn bench_obs(c: &mut Criterion) {
    let registry = Registry::new();
    let mut bare = build_chain(None);
    let mut instrumented = build_chain(Some((&registry, "bench")));
    black_box(run_steps(&mut bare));
    black_box(run_steps(&mut instrumented));
    let mut group = c.benchmark_group("obs");
    group.sample_size(10);
    group.bench_function("bare_1024ch_x64", |b| {
        b.iter(|| black_box(run_steps(&mut bare)))
    });
    group.bench_function("instrumented_1024ch_x64", |b| {
        b.iter(|| black_box(run_steps(&mut instrumented)))
    });
    group.finish();
}

/// One-shot acceptance measurement: the instrumented chain's median
/// step cost must stay within [`MAX_OVERHEAD`] of the bare chain's.
fn report_obs_acceptance(_c: &mut Criterion) {
    let iters = if quick() { 15 } else { 61 };
    let registry = Registry::new();
    let mut bare = build_chain(None);
    let mut instrumented = build_chain(Some((&registry, "bench")));

    // Warm both chains (buffers sized, thread-locals initialized) and
    // pin the workloads to each other: identical seeds, identical
    // emission schedule.
    let warm_bare = run_steps(&mut bare);
    let warm_instrumented = run_steps(&mut instrumented);
    assert_eq!(warm_bare, warm_instrumented, "identical workloads");

    let (bare_ns, instrumented_ns) = paired_median_ns(
        iters,
        || {
            black_box(run_steps(&mut bare));
        },
        || {
            black_box(run_steps(&mut instrumented));
        },
    );
    let overhead = instrumented_ns / bare_ns;
    println!(
        "obs/1024ch_x{STEPS} bare {:.3} ms vs instrumented {:.3} ms ({:.1}% overhead)",
        bare_ns / 1e6,
        instrumented_ns / 1e6,
        (overhead - 1.0) * 100.0,
    );
    assert!(
        overhead <= MAX_OVERHEAD,
        "instrumentation must cost at most {:.0}% on the warm 1024-channel chain, \
         got {overhead:.3}x ({bare_ns:.0} ns vs {instrumented_ns:.0} ns)",
        (MAX_OVERHEAD - 1.0) * 100.0
    );

    // The instrumented run was real: the registry saw every step.
    let steps_recorded = registry
        .snapshot()
        .counter("bench.0.sense.frames_in")
        .expect("sense stage registered");
    assert!(steps_recorded >= (STEPS * (iters + 1)) as u64);

    write_artifact(&format!(
        "{{\n  \"bench\": \"obs\",\n  \"quick\": {},\n  \
         \"channels\": 1024,\n  \"stages\": 5,\n  \"steps\": {STEPS},\n  \
         \"bare_ns_per_run\": {bare_ns:.0},\n  \
         \"instrumented_ns_per_run\": {instrumented_ns:.0},\n  \
         \"overhead\": {overhead:.4},\n  \"max_overhead\": {MAX_OVERHEAD}\n}}\n",
        quick(),
    ));
}

/// Writes `BENCH_obs.json` under the repository's `results/bench/`.
fn write_artifact(json: &str) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results/bench");
    std::fs::create_dir_all(&dir).expect("results/bench is creatable");
    let path = dir.join("BENCH_obs.json");
    std::fs::write(&path, json).expect("BENCH_obs.json is writable");
    println!("wrote {}", path.display());
}

criterion_group!(benches, bench_obs, report_obs_acceptance);
criterion_main!(benches);
