//! Modulation schemes and their AWGN bit-error-rate models.
//!
//! Implanted BCIs prefer energy-efficient On-Off Keying (OOK), which
//! carries one bit per symbol (Section 5.1). To raise the data rate
//! without widening the antenna bandwidth, the paper studies Quadrature
//! Amplitude Modulation (QAM) carrying `k` bits per symbol (Section 5.2);
//! its required Eb/N0 — and hence energy per bit — grows steeply with
//! `k`.

use core::fmt;

use crate::error::{Result, RfError};
use crate::qfunc::q;

/// Maximum bits per symbol supported by the QAM model (2^20-QAM is far
/// beyond anything implementable; the bound keeps arithmetic exact).
pub const MAX_BITS_PER_SYMBOL: u8 = 20;

/// A digital modulation scheme used by the implant's transmitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Modulation {
    /// On-Off Keying: one bit per symbol, the energy-efficient default in
    /// implanted SoCs.
    Ook,
    /// Square/cross M-QAM with `bits_per_symbol = log2(M)` bits per
    /// symbol.
    Qam {
        /// Bits carried per symbol (`k`, with `M = 2^k`).
        bits_per_symbol: u8,
    },
}

impl Modulation {
    /// Creates a QAM scheme carrying `bits_per_symbol` bits per symbol.
    ///
    /// # Errors
    ///
    /// Returns [`RfError::InvalidBitsPerSymbol`] when `bits_per_symbol`
    /// is zero or exceeds [`MAX_BITS_PER_SYMBOL`].
    pub fn qam(bits_per_symbol: u8) -> Result<Self> {
        if bits_per_symbol == 0 || bits_per_symbol > MAX_BITS_PER_SYMBOL {
            return Err(RfError::InvalidBitsPerSymbol {
                bits: bits_per_symbol,
            });
        }
        Ok(Self::Qam { bits_per_symbol })
    }

    /// Bits carried per transmitted symbol.
    #[must_use]
    pub fn bits_per_symbol(&self) -> u8 {
        match *self {
            Self::Ook => 1,
            Self::Qam { bits_per_symbol } => bits_per_symbol,
        }
    }

    /// Constellation size `M = 2^k`.
    #[must_use]
    pub fn constellation_size(&self) -> u64 {
        1_u64 << self.bits_per_symbol()
    }

    /// Bit error rate over an AWGN channel at a given Eb/N0 (linear, not
    /// dB).
    ///
    /// * OOK (coherent, amplitude-shift): `BER = Q(√(Eb/N0))`.
    /// * M-QAM (Gray-coded, square): the standard approximation
    ///   `BER ≈ (4/k)(1 − 1/√M) · Q(√(3k/(M−1) · Eb/N0))`.
    ///
    /// For `k = 1` the QAM expression degenerates to BPSK
    /// (`Q(√(2 Eb/N0))`), which we use directly.
    #[must_use]
    pub fn ber(&self, ebn0: f64) -> f64 {
        if ebn0 <= 0.0 {
            return 0.5;
        }
        match *self {
            Self::Ook => q(ebn0.sqrt()),
            Self::Qam { bits_per_symbol } => qam_ber(bits_per_symbol, ebn0),
        }
    }

    /// The Eb/N0 (linear) required to achieve a target BER, found by
    /// bisection on the monotone [`Modulation::ber`] curve.
    ///
    /// # Errors
    ///
    /// Returns [`RfError::InvalidBer`] for targets outside `(0, 0.5)`.
    pub fn required_ebn0(&self, target_ber: f64) -> Result<f64> {
        if !(target_ber > 0.0 && target_ber < 0.5) {
            return Err(RfError::InvalidBer { ber: target_ber });
        }
        // BER is monotone decreasing in Eb/N0; bracket then bisect in
        // log-space for numerical robustness.
        let (mut lo, mut hi) = (1e-6_f64, 1e12_f64);
        debug_assert!(self.ber(lo) > target_ber);
        debug_assert!(self.ber(hi) < target_ber);
        for _ in 0..200 {
            let mid = (lo * hi).sqrt();
            if self.ber(mid) > target_ber {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok((lo * hi).sqrt())
    }

    /// The required Eb/N0 in decibels for a target BER.
    ///
    /// # Errors
    ///
    /// Same as [`Modulation::required_ebn0`].
    pub fn required_ebn0_db(&self, target_ber: f64) -> Result<f64> {
        Ok(crate::qfunc::to_db(self.required_ebn0(target_ber)?))
    }

    /// Spectral efficiency in bits/s/Hz assuming symbol rate = bandwidth
    /// (Nyquist signalling): equal to the bits per symbol.
    #[must_use]
    pub fn spectral_efficiency(&self) -> f64 {
        f64::from(self.bits_per_symbol())
    }
}

impl fmt::Display for Modulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::Ook => f.write_str("OOK"),
            Self::Qam { bits_per_symbol } => {
                write!(f, "{}-QAM", 1_u64 << bits_per_symbol)
            }
        }
    }
}

/// Gray-coded square M-QAM BER approximation.
fn qam_ber(k: u8, ebn0: f64) -> f64 {
    let kf = f64::from(k);
    if k == 1 {
        // BPSK.
        return q((2.0 * ebn0).sqrt());
    }
    let m = (1_u64 << k) as f64;
    let coeff = (4.0 / kf) * (1.0 - 1.0 / m.sqrt());
    let arg = (3.0 * kf / (m - 1.0) * ebn0).sqrt();
    (coeff * q(arg)).min(0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qfunc::to_db;

    #[test]
    fn ook_requires_about_13_5_db_at_1e6() {
        // Q(√(Eb/N0)) = 1e-6 → Eb/N0 = 4.7534² = 22.595 → 13.54 dB.
        let ebn0 = Modulation::Ook.required_ebn0(1e-6).unwrap();
        assert!((to_db(ebn0) - 13.54).abs() < 0.02, "got {} dB", to_db(ebn0));
    }

    #[test]
    fn qpsk_requires_about_10_5_db_at_1e6() {
        // 4-QAM ≡ QPSK: Q(√(2 Eb/N0)) = 1e-6 → 10.53 dB.
        let qam = Modulation::qam(2).unwrap();
        let ebn0_db = qam.required_ebn0_db(1e-6).unwrap();
        assert!((ebn0_db - 10.53).abs() < 0.05, "got {ebn0_db} dB");
    }

    #[test]
    fn sixteen_qam_requires_about_14_4_db_at_1e6() {
        // Textbook value ≈ 14.4 dB for Gray-coded 16-QAM at 1e-6.
        let qam = Modulation::qam(4).unwrap();
        let ebn0_db = qam.required_ebn0_db(1e-6).unwrap();
        assert!((ebn0_db - 14.4).abs() < 0.2, "got {ebn0_db} dB");
    }

    #[test]
    fn required_ebn0_grows_with_bits_per_symbol() {
        let mut prev = Modulation::qam(2).unwrap().required_ebn0(1e-6).unwrap();
        for k in 3..=12 {
            let cur = Modulation::qam(k).unwrap().required_ebn0(1e-6).unwrap();
            assert!(cur > prev, "Eb/N0 must grow with k (k = {k})");
            prev = cur;
        }
    }

    #[test]
    fn ber_is_monotone_in_ebn0() {
        for modulation in [Modulation::Ook, Modulation::qam(4).unwrap()] {
            let mut prev = modulation.ber(0.1);
            for i in 1..60 {
                let ebn0 = 0.1 * 1.3_f64.powi(i);
                let cur = modulation.ber(ebn0);
                assert!(cur <= prev, "{modulation} BER rose at {ebn0}");
                prev = cur;
            }
        }
    }

    #[test]
    fn ber_at_zero_snr_is_coin_flip() {
        assert!((Modulation::Ook.ber(0.0) - 0.5).abs() < 1e-12);
        assert!((Modulation::qam(6).unwrap().ber(-1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn round_trip_required_ebn0() {
        for modulation in [
            Modulation::Ook,
            Modulation::qam(2).unwrap(),
            Modulation::qam(6).unwrap(),
            Modulation::qam(10).unwrap(),
        ] {
            for target in [1e-3, 1e-6, 1e-9] {
                let ebn0 = modulation.required_ebn0(target).unwrap();
                let back = modulation.ber(ebn0);
                assert!(
                    (back.ln() - target.ln()).abs() < 1e-6,
                    "{modulation} at {target}: {back}"
                );
            }
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(matches!(
            Modulation::qam(0),
            Err(RfError::InvalidBitsPerSymbol { bits: 0 })
        ));
        assert!(Modulation::qam(MAX_BITS_PER_SYMBOL + 1).is_err());
        assert!(matches!(
            Modulation::Ook.required_ebn0(0.0),
            Err(RfError::InvalidBer { .. })
        ));
        assert!(Modulation::Ook.required_ebn0(0.6).is_err());
    }

    #[test]
    fn display_and_metadata() {
        assert_eq!(Modulation::Ook.to_string(), "OOK");
        assert_eq!(Modulation::qam(4).unwrap().to_string(), "16-QAM");
        assert_eq!(Modulation::Ook.bits_per_symbol(), 1);
        assert_eq!(Modulation::qam(6).unwrap().constellation_size(), 64);
        assert!((Modulation::qam(3).unwrap().spectral_efficiency() - 3.0).abs() < 1e-12);
    }
}
