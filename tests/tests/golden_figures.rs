//! Golden-figure regression suite.
//!
//! Every paper experiment is regenerated in-process and its CSV is
//! diffed field-by-field against a committed snapshot under
//! `tests/golden/`. Numeric fields compare with explicit tolerances
//! (everything in the pipeline is deterministic, so the tolerances only
//! absorb float formatting and cross-platform libm differences);
//! non-numeric fields must match exactly, as must the header and the
//! row count.
//!
//! To regenerate the snapshots after an intentional model change:
//!
//! ```text
//! MINDFUL_BLESS=1 cargo test -p mindful-integration-tests --test golden_figures
//! ```

use std::fs;
use std::path::{Path, PathBuf};

use mindful_experiments::{
    explore, fig10, fig11, fig12, fig4, fig5, fig6, fig7, fig9, realtime, table1,
};

/// Absolute tolerance for numeric fields.
const ABS_TOL: f64 = 1e-9;

/// Relative tolerance for numeric fields.
const REL_TOL: f64 = 1e-9;

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join(name)
}

fn close(a: f64, b: f64) -> bool {
    if a == b {
        return true;
    }
    (a - b).abs() <= ABS_TOL + REL_TOL * a.abs().max(b.abs())
}

fn compare_csv(name: &str, golden: &str, produced: &str) {
    let golden_rows: Vec<&str> = golden.lines().collect();
    let produced_rows: Vec<&str> = produced.lines().collect();
    assert_eq!(
        golden_rows.first(),
        produced_rows.first(),
        "{name}: header changed"
    );
    assert_eq!(
        golden_rows.len(),
        produced_rows.len(),
        "{name}: row count changed"
    );
    for (row, (g, p)) in golden_rows.iter().zip(&produced_rows).enumerate().skip(1) {
        let golden_fields: Vec<&str> = g.split(',').collect();
        let produced_fields: Vec<&str> = p.split(',').collect();
        assert_eq!(
            golden_fields.len(),
            produced_fields.len(),
            "{name} row {row}: field count changed"
        );
        for (col, (gv, pv)) in golden_fields.iter().zip(&produced_fields).enumerate() {
            match (gv.parse::<f64>(), pv.parse::<f64>()) {
                (Ok(a), Ok(b)) => assert!(
                    close(a, b),
                    "{name} row {row} col {col}: golden {a} vs produced {b}"
                ),
                _ => assert_eq!(gv, pv, "{name} row {row} col {col}: text field changed"),
            }
        }
    }
}

/// Diffs `produced` against the committed snapshot `name`, or rewrites
/// the snapshot when `MINDFUL_BLESS` is set.
fn check_golden(name: &str, produced: &str) {
    let path = golden_path(name);
    if std::env::var_os("MINDFUL_BLESS").is_some() {
        fs::create_dir_all(path.parent().expect("golden files live in a directory")).unwrap();
        fs::write(&path, produced).unwrap();
        return;
    }
    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); regenerate with \
             MINDFUL_BLESS=1 cargo test -p mindful-integration-tests --test golden_figures",
            path.display()
        )
    });
    compare_csv(name, &golden, produced);
}

/// Renders one experiment into a scratch directory and returns `file`.
fn rendered_csv(experiment: &str, file: &str, render: impl FnOnce(&Path)) -> String {
    let dir = std::env::temp_dir().join(format!("mindful-golden-{experiment}"));
    render(&dir);
    let text = fs::read_to_string(dir.join(file))
        .unwrap_or_else(|e| panic!("{experiment} did not write {file}: {e}"));
    fs::remove_dir_all(&dir).ok();
    text
}

#[test]
fn table1_matches_golden() {
    let csv = rendered_csv("table1", "table1.csv", |d| {
        table1::render(&table1::generate(), d).unwrap();
    });
    check_golden("table1.csv", &csv);
}

#[test]
fn fig4_matches_golden() {
    let csv = rendered_csv("fig4", "fig4.csv", |d| {
        fig4::render(&fig4::generate(), d).unwrap();
    });
    check_golden("fig4.csv", &csv);
}

#[test]
fn fig5_matches_golden() {
    let csv = rendered_csv("fig5", "fig5.csv", |d| {
        fig5::render(&fig5::generate().unwrap(), d).unwrap();
    });
    check_golden("fig5.csv", &csv);
}

#[test]
fn fig6_matches_golden() {
    let csv = rendered_csv("fig6", "fig6.csv", |d| {
        fig6::render(&fig6::generate().unwrap(), d).unwrap();
    });
    check_golden("fig6.csv", &csv);
}

#[test]
fn fig7_matches_golden() {
    let csv = rendered_csv("fig7", "fig7.csv", |d| {
        fig7::render(&fig7::generate().unwrap(), d).unwrap();
    });
    check_golden("fig7.csv", &csv);
}

#[test]
fn fig9_matches_golden() {
    let csv = rendered_csv("fig9", "fig9.csv", |d| {
        fig9::render(&fig9::generate(), d).unwrap();
    });
    check_golden("fig9.csv", &csv);
}

#[test]
fn fig10_matches_golden() {
    let csv = rendered_csv("fig10", "fig10.csv", |d| {
        fig10::render(&fig10::generate().unwrap(), d).unwrap();
    });
    check_golden("fig10.csv", &csv);
}

#[test]
fn fig11_matches_golden() {
    let csv = rendered_csv("fig11", "fig11.csv", |d| {
        fig11::render(&fig11::generate().unwrap(), d).unwrap();
    });
    check_golden("fig11.csv", &csv);
}

#[test]
fn fig12_matches_golden() {
    let csv = rendered_csv("fig12", "fig12.csv", |d| {
        fig12::render(&fig12::generate().unwrap(), d).unwrap();
    });
    check_golden("fig12.csv", &csv);
}

#[test]
fn explore_sweep_matches_golden() {
    // The sweep engine's output is fully deterministic (ordering is
    // grid order regardless of worker count), so the full product-space
    // CSV doubles as a regression net for the engine itself.
    let csv = rendered_csv("explore", "explore.csv", |d| {
        explore::render(&explore::generate().unwrap(), d).unwrap();
    });
    check_golden("explore.csv", &csv);
}

#[test]
fn realtime_tables_match_golden() {
    // One render, two pinned files: the analytic latency table and the
    // deterministic slice of the streaming runs' registry scrapes
    // (counters + seeded fault gauges; wall-clock metrics excluded by
    // construction). The timing CSVs from the same render are machine-
    // dependent and deliberately not pinned.
    let dir = std::env::temp_dir().join("mindful-golden-realtime");
    realtime::render(&realtime::generate().unwrap(), &dir).unwrap();
    let analytic = fs::read_to_string(dir.join("realtime.csv")).unwrap();
    let observed = fs::read_to_string(dir.join("realtime_observed.csv")).unwrap();
    fs::remove_dir_all(&dir).ok();
    check_golden("realtime.csv", &analytic);
    check_golden("realtime_observed.csv", &observed);
}

#[test]
fn tolerance_comparison_accepts_formatting_noise_only() {
    compare_csv("self", "a,b\n1.0,x\n", "a,b\n1.0000000000001,x\n");
    let caught = std::panic::catch_unwind(|| {
        compare_csv("self", "a,b\n1.0,x\n", "a,b\n1.1,x\n");
    });
    assert!(caught.is_err(), "a 10% numeric drift must be rejected");
    let caught = std::panic::catch_unwind(|| {
        compare_csv("self", "a,b\n1.0,x\n", "a,b\n1.0,y\n");
    });
    assert!(caught.is_err(), "a text change must be rejected");
}
