//! Frames and buffers flowing between stages.
//!
//! A [`Frame`] is a borrowed view of one unit of work — digitized codes,
//! analog values, events, bin counts, activations, or wire bytes. A
//! [`FrameBuf`] owns the storage a stage writes into; the pipeline keeps
//! one per stage and re-presents it to the next stage as a `Frame`.
//! Buffers retain their capacity across frames, which is what makes the
//! composed chain allocation-free after warm-up.

use core::fmt;

/// The variant a [`Frame`] or [`FrameBuf`] currently carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Digitized ADC codes (`u16`), one per channel.
    Codes,
    /// Analog or decoded real values (`f64`).
    Values,
    /// DNN activations (`f32`).
    Activations,
    /// Per-channel event indicators (`bool`).
    Events,
    /// Binned per-channel event counts (`u32`).
    Counts,
    /// Wire bytes (a packetized frame).
    Bytes,
    /// Nothing — the input to a source stage, or a cleared buffer.
    Empty,
}

impl fmt::Display for FrameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Self::Codes => "codes",
            Self::Values => "values",
            Self::Activations => "activations",
            Self::Events => "events",
            Self::Counts => "counts",
            Self::Bytes => "bytes",
            Self::Empty => "empty",
        };
        write!(f, "{name}")
    }
}

/// A borrowed view of one unit of work flowing between stages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Frame<'a> {
    /// Digitized ADC codes, one per channel.
    Codes(&'a [u16]),
    /// Analog or decoded real values.
    Values(&'a [f64]),
    /// DNN activations.
    Activations(&'a [f32]),
    /// Per-channel event indicators.
    Events(&'a [bool]),
    /// Binned per-channel event counts.
    Counts(&'a [u32]),
    /// Wire bytes.
    Bytes(&'a [u8]),
    /// Nothing — what a source stage consumes.
    Empty,
}

impl Frame<'_> {
    /// The variant tag of this frame.
    #[must_use]
    pub fn kind(&self) -> FrameKind {
        match self {
            Self::Codes(_) => FrameKind::Codes,
            Self::Values(_) => FrameKind::Values,
            Self::Activations(_) => FrameKind::Activations,
            Self::Events(_) => FrameKind::Events,
            Self::Counts(_) => FrameKind::Counts,
            Self::Bytes(_) => FrameKind::Bytes,
            Self::Empty => FrameKind::Empty,
        }
    }

    /// Number of elements in the frame.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Self::Codes(s) => s.len(),
            Self::Values(s) => s.len(),
            Self::Activations(s) => s.len(),
            Self::Events(s) => s.len(),
            Self::Counts(s) => s.len(),
            Self::Bytes(s) => s.len(),
            Self::Empty => 0,
        }
    }

    /// Whether the frame carries no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What a stage did with the frame it was handed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageOutput {
    /// The stage wrote an output frame into its buffer; downstream
    /// stages run this step.
    Emitted,
    /// The stage absorbed the input (e.g. a bin window still filling);
    /// downstream stages are skipped this step.
    Pending,
}

/// An owned, reusable buffer holding one stage's output.
///
/// Each variant keeps its own backing `Vec` so switching kinds between
/// pipeline constructions never discards capacity; within a running
/// pipeline a stage always writes the same kind, so after the first few
/// frames every write lands in already-reserved storage.
#[derive(Debug, Clone, Default)]
pub struct FrameBuf {
    kind: Option<FrameKind>,
    codes: Vec<u16>,
    values: Vec<f64>,
    activations: Vec<f32>,
    events: Vec<bool>,
    counts: Vec<u32>,
    bytes: Vec<u8>,
}

impl FrameBuf {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The variant the buffer currently holds ([`FrameKind::Empty`]
    /// before the first write).
    #[must_use]
    pub fn kind(&self) -> FrameKind {
        self.kind.unwrap_or(FrameKind::Empty)
    }

    /// A borrowed view of the current contents.
    #[must_use]
    pub fn as_frame(&self) -> Frame<'_> {
        match self.kind() {
            FrameKind::Codes => Frame::Codes(&self.codes),
            FrameKind::Values => Frame::Values(&self.values),
            FrameKind::Activations => Frame::Activations(&self.activations),
            FrameKind::Events => Frame::Events(&self.events),
            FrameKind::Counts => Frame::Counts(&self.counts),
            FrameKind::Bytes => Frame::Bytes(&self.bytes),
            FrameKind::Empty => Frame::Empty,
        }
    }

    /// Clears the contents (capacity is retained).
    pub fn clear(&mut self) {
        self.kind = None;
        self.codes.clear();
        self.values.clear();
        self.activations.clear();
        self.events.clear();
        self.counts.clear();
        self.bytes.clear();
    }

    /// Total bytes of backing storage currently reserved — the
    /// "peak buffer bytes" a fixed-memory implant port would need.
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.codes.capacity() * core::mem::size_of::<u16>()
            + self.values.capacity() * core::mem::size_of::<f64>()
            + self.activations.capacity() * core::mem::size_of::<f32>()
            + self.events.capacity() * core::mem::size_of::<bool>()
            + self.counts.capacity() * core::mem::size_of::<u32>()
            + self.bytes.capacity() * core::mem::size_of::<u8>()
    }

    /// Starts a codes frame: tags the buffer, clears the codes vector,
    /// and returns it for the stage to fill.
    pub fn begin_codes(&mut self) -> &mut Vec<u16> {
        self.kind = Some(FrameKind::Codes);
        self.codes.clear();
        &mut self.codes
    }

    /// Starts a values frame (see [`FrameBuf::begin_codes`]).
    pub fn begin_values(&mut self) -> &mut Vec<f64> {
        self.kind = Some(FrameKind::Values);
        self.values.clear();
        &mut self.values
    }

    /// Starts an activations frame (see [`FrameBuf::begin_codes`]).
    pub fn begin_activations(&mut self) -> &mut Vec<f32> {
        self.kind = Some(FrameKind::Activations);
        self.activations.clear();
        &mut self.activations
    }

    /// Starts an events frame (see [`FrameBuf::begin_codes`]).
    pub fn begin_events(&mut self) -> &mut Vec<bool> {
        self.kind = Some(FrameKind::Events);
        self.events.clear();
        &mut self.events
    }

    /// Starts a counts frame (see [`FrameBuf::begin_codes`]).
    pub fn begin_counts(&mut self) -> &mut Vec<u32> {
        self.kind = Some(FrameKind::Counts);
        self.counts.clear();
        &mut self.counts
    }

    /// Starts a bytes frame (see [`FrameBuf::begin_codes`]).
    pub fn begin_bytes(&mut self) -> &mut Vec<u8> {
        self.kind = Some(FrameKind::Bytes);
        self.bytes.clear();
        &mut self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_tags_and_clears() {
        let mut buf = FrameBuf::new();
        assert_eq!(buf.kind(), FrameKind::Empty);
        assert_eq!(buf.as_frame(), Frame::Empty);
        buf.begin_codes().extend_from_slice(&[1, 2, 3]);
        assert_eq!(buf.kind(), FrameKind::Codes);
        assert_eq!(buf.as_frame(), Frame::Codes(&[1, 2, 3]));
        assert_eq!(buf.as_frame().len(), 3);
        // Re-beginning clears the previous contents but keeps capacity.
        let cap = buf.capacity_bytes();
        buf.begin_codes().push(9);
        assert_eq!(buf.as_frame(), Frame::Codes(&[9]));
        assert!(buf.capacity_bytes() >= cap);
    }

    #[test]
    fn kinds_round_trip_through_frames() {
        let mut buf = FrameBuf::new();
        buf.begin_values().push(1.5);
        assert_eq!(buf.as_frame(), Frame::Values(&[1.5]));
        buf.begin_events().push(true);
        assert_eq!(buf.as_frame(), Frame::Events(&[true]));
        buf.begin_counts().push(7);
        assert_eq!(buf.as_frame(), Frame::Counts(&[7]));
        buf.begin_activations().push(0.25);
        assert_eq!(buf.as_frame(), Frame::Activations(&[0.25]));
        buf.begin_bytes().push(0xBC);
        assert_eq!(buf.as_frame(), Frame::Bytes(&[0xBC]));
        buf.clear();
        assert_eq!(buf.as_frame(), Frame::Empty);
        assert!(buf.as_frame().is_empty());
    }

    #[test]
    fn capacity_bytes_counts_every_arena() {
        let mut buf = FrameBuf::new();
        assert_eq!(buf.capacity_bytes(), 0);
        buf.begin_codes().extend_from_slice(&[0; 16]);
        buf.begin_values().extend_from_slice(&[0.0; 4]);
        assert!(buf.capacity_bytes() >= 16 * 2 + 4 * 8);
    }

    #[test]
    fn kind_display_names() {
        for (kind, name) in [
            (FrameKind::Codes, "codes"),
            (FrameKind::Values, "values"),
            (FrameKind::Activations, "activations"),
            (FrameKind::Events, "events"),
            (FrameKind::Counts, "counts"),
            (FrameKind::Bytes, "bytes"),
            (FrameKind::Empty, "empty"),
        ] {
            assert_eq!(kind.to_string(), name);
        }
    }
}
