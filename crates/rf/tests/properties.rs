//! Property-based tests for the RF substrate.

use mindful_rf::linkbudget::LinkBudget;
use mindful_rf::modem::Modem;
use mindful_rf::modulation::Modulation;
use mindful_rf::packet::{crc16, depacketize, packetize};
use mindful_rf::qfunc::{from_db, q, q_inv, to_db};
use proptest::prelude::*;

proptest! {
    #[test]
    fn q_is_a_probability(x in -30.0_f64..30.0) {
        let p = q(x);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn q_complementarity(x in -8.0_f64..8.0) {
        // Q(x) + Q(−x) = 1.
        let sum = q(x) + q(-x);
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
    }

    #[test]
    fn q_inverse_round_trip(exp in -12.0_f64..-0.5) {
        let p = 10.0_f64.powf(exp);
        let x = q_inv(p);
        prop_assert!((q(x).ln() - p.ln()).abs() < 1e-5);
    }

    #[test]
    fn db_round_trip(v in 1e-9_f64..1e9) {
        prop_assert!((from_db(to_db(v)) / v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ber_monotone_in_ebn0(k in 1_u8..10, lo in 0.1_f64..100.0, mult in 1.01_f64..10.0) {
        let modulation = Modulation::qam(k).unwrap();
        let hi = lo * mult;
        prop_assert!(modulation.ber(hi) <= modulation.ber(lo) + 1e-15);
    }

    #[test]
    fn ber_monotone_in_constellation_size(k in 2_u8..12, ebn0 in 1.0_f64..1000.0) {
        // Bigger square constellations of the same parity are never more
        // robust at the same Eb/N0, within the union-bound approximation's
        // validity region (BER below a few percent). Adjacent odd/even
        // orders — and the near-0.5 saturation region — can cross slightly
        // because of the approximation's prefactor.
        let small = Modulation::qam(k).unwrap().ber(ebn0);
        prop_assume!(small < 0.05);
        let big = Modulation::qam(k + 2).unwrap().ber(ebn0);
        prop_assert!(big >= small * (1.0 - 1e-9), "k={k}: {big} < {small}");
    }

    #[test]
    fn required_ebn0_monotone_in_target(k in 1_u8..10, e1 in -10.0_f64..-2.0, delta in 0.5_f64..4.0) {
        let modulation = Modulation::qam(k).unwrap();
        let strict = 10.0_f64.powf(e1 - delta);
        let loose = 10.0_f64.powf(e1);
        let need_strict = modulation.required_ebn0(strict).unwrap();
        let need_loose = modulation.required_ebn0(loose).unwrap();
        prop_assert!(need_strict >= need_loose);
    }

    #[test]
    fn link_energy_scales_inverse_with_efficiency(
        eta1 in 0.01_f64..1.0,
        eta2 in 0.01_f64..1.0,
        k in 1_u8..8,
    ) {
        let link = LinkBudget::paper_nominal();
        let modulation = Modulation::qam(k).unwrap();
        let e1 = link.energy_per_bit(modulation, eta1).unwrap().joules();
        let e2 = link.energy_per_bit(modulation, eta2).unwrap().joules();
        prop_assert!((e1 * eta1 / (e2 * eta2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn modem_round_trips_without_noise(
        seed in 0_u64..u64::MAX,
        k in prop::sample::select(vec![1_u8, 2, 4, 6, 8]),
        len in 1_usize..512,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let bits: Vec<bool> = (0..len).map(|_| rng.random()).collect();
        let modem = Modem::new(Modulation::qam(k).unwrap(), 1.0).unwrap();
        let symbols = modem.modulate(&bits);
        let back = modem.demodulate(&symbols);
        prop_assert_eq!(&back[..bits.len()], &bits[..]);
    }

    #[test]
    fn packets_round_trip(
        seq in 0_u16..u16::MAX,
        bits in 1_u8..=16,
        len in 1_usize..256,
        seed in 0_u64..u64::MAX,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let limit: u16 = if bits == 16 { u16::MAX } else { (1 << bits) - 1 };
        let samples: Vec<u16> = (0..len).map(|_| rng.random::<u16>() & limit).collect();
        let wire = packetize(seq, &samples, bits).unwrap();
        let frame = depacketize(&wire).unwrap();
        prop_assert_eq!(frame.sequence, seq);
        prop_assert_eq!(frame.sample_bits, bits);
        prop_assert_eq!(frame.samples, samples);
    }

    #[test]
    fn single_bit_flips_never_pass_crc(
        len in 1_usize..64,
        seed in 0_u64..u64::MAX,
        flip_bit in 0_usize..4096,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let samples: Vec<u16> = (0..len).map(|_| rng.random::<u16>() & 0x3FF).collect();
        let wire = packetize(1, &samples, 10).unwrap();
        let bit = flip_bit % (wire.len() * 8);
        let mut bad = wire.clone();
        bad[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(depacketize(&bad).is_err());
    }

    #[test]
    fn crc_detects_any_prefix_change(data in prop::collection::vec(any::<u8>(), 1..128)) {
        let base = crc16(&data);
        let mut changed = data.clone();
        changed[0] ^= 0x01;
        prop_assert_ne!(base, crc16(&changed));
    }
}
