//! Offline stand-in for the `proptest` crate (the API subset this
//! workspace uses). See `compat/README.md` for scope.
//!
//! Differences from upstream worth knowing:
//!
//! * Cases are generated from a **deterministic** per-test RNG (seeded
//!   by an FNV-1a hash of the test function name), so every run of the
//!   suite sees the same inputs. There is no persistence file.
//! * Failing cases are reported with their input values but are **not
//!   shrunk**; rerunning reproduces them exactly.
//! * `prop_assume!` rejects the case; a test fails if too many cases in
//!   a row are rejected, like upstream's `max_global_rejects`.

#![warn(missing_docs)]
#![warn(clippy::all)]
#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod strategy;
pub mod test_runner;

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies (`vec`).
    pub mod collection {
        pub use crate::strategy::vec;
    }
    /// Sampling strategies (`select`).
    pub mod sample {
        pub use crate::strategy::select;
    }
}

/// Everything a property-test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fails the current case if both values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Rejects (skips) the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, …)`
/// becomes a normal `#[test]` running `ProptestConfig::cases` random
/// cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    let __case = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        { $body }
                        ::core::result::Result::Ok(())
                    })();
                    match __case {
                        ::core::result::Result::Ok(()) => {
                            accepted += 1;
                            rejected = 0;
                        }
                        ::core::result::Result::Err(e) if e.is_rejection() => {
                            rejected += 1;
                            assert!(
                                rejected < config.max_local_rejects,
                                "proptest `{}`: too many consecutive rejected cases ({})",
                                stringify!($name),
                                rejected,
                            );
                        }
                        ::core::result::Result::Err(e) => {
                            panic!(
                                "proptest `{}` failed after {} passing case(s): {}",
                                stringify!($name),
                                accepted,
                                e,
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(a in 3_u64..17, b in -2.5_f64..2.5, c in 1_u8..=4) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-2.5..2.5).contains(&b));
            prop_assert!((1..=4).contains(&c));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (1_u64..10, 0.0_f64..1.0).prop_map(|(n, f)| n as f64 + f),
        ) {
            prop_assert!((1.0..11.0).contains(&pair));
        }

        #[test]
        fn vec_and_select_strategies(
            xs in prop::collection::vec(0_u64..100, 2..6),
            pick in prop::sample::select(vec![10_u32, 20, 30]),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 100));
            prop_assert!([10, 20, 30].contains(&pick));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0_u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_limits_cases(_x in 0_u64..10) {
            prop_assert!(true);
        }
    }

    #[test]
    fn any_covers_bool_and_u8() {
        let mut rng = crate::test_runner::TestRng::for_test("any_covers");
        let mut saw_true = false;
        let mut saw_false = false;
        for _ in 0..64 {
            if Strategy::generate(&any::<bool>(), &mut rng) {
                saw_true = true;
            } else {
                saw_false = true;
            }
            let _: u8 = Strategy::generate(&any::<u8>(), &mut rng);
        }
        assert!(saw_true && saw_false);
    }

    #[test]
    fn deterministic_across_runs() {
        let gen = |label: &str| {
            let mut rng = crate::test_runner::TestRng::for_test(label);
            (0..16)
                .map(|_| Strategy::generate(&(0_u64..1_000_000), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen("alpha"), gen("alpha"));
        assert_ne!(gen("alpha"), gen("beta"));
    }
}
