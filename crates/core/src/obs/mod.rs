//! Zero-overhead observability: metrics registry, span tracing, and
//! exporters.
//!
//! The design splits the cost of observation into two phases so the
//! hot path never pays for the cold one:
//!
//! * **Setup** (allocating, locking): [`Registry::counter`] /
//!   [`Registry::gauge`] / [`Registry::histogram`] register named
//!   metrics and hand back cheap cloneable handles.
//! * **Recording** (lock-free, allocation-free): handles write through
//!   relaxed atomics into per-worker cache-padded shards
//!   ([`metrics::SHARDS`]); histograms bin into fixed log₂ buckets.
//!   Span guards ([`span()`]) stamp enter/exit times into a
//!   `const`-initialized per-thread ring. The pipeline and inference
//!   engine's zero-allocation proofs hold with all of this enabled.
//! * **Scraping** (allocating, reader-side): [`Registry::snapshot`]
//!   merges shards into a deterministic, name-sorted [`Snapshot`] that
//!   exports as JSON lines ([`Snapshot::to_jsonl`], round-trippable via
//!   [`Snapshot::from_jsonl`]), CSV ([`Snapshot::to_csv`]), or a human
//!   `Display` summary.
//!
//! Metrics (always compiled) answer "how much / how often"; spans
//! (compiled out without the `obs` feature, switchable at run time via
//! [`OBS_ENV`]) answer "where did the time go" for one thread's recent
//! work. See DESIGN.md §10 for the architecture discussion.

pub mod export;
pub mod metrics;
pub mod names;
pub mod registry;
pub mod span;

pub use export::ExportParseError;
pub use metrics::{
    bucket_index, bucket_upper_edge, Counter, Gauge, Histogram, HistogramState, BUCKETS, SHARDS,
};
pub use registry::{CounterSample, GaugeSample, HistogramSample, Registry, Snapshot};
pub use span::{
    clear_spans, drain_spans, obs_override, span, spans_enabled, SpanGuard, SpanRecord, OBS_ENV,
    SPAN_RING_CAPACITY,
};
