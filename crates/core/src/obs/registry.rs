//! The metrics registry: named handles out, merged snapshots back.
//!
//! Registration (the only locking, allocating path) happens at setup
//! time; the returned handles record through relaxed atomics only.
//! Scraping walks the name-sorted registry and merges every metric's
//! shards into an owned, deterministic [`Snapshot`].

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use super::metrics::{Counter, Gauge, Histogram, HistogramState, BUCKETS};

/// A registered metric of any kind.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Self::Counter(_) => "counter",
            Self::Gauge(_) => "gauge",
            Self::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// A shared registry of named counters, gauges, and histograms.
///
/// Cloning a `Registry` clones a handle to the same underlying store,
/// so one registry can be threaded through a whole pipeline, a worker
/// pool, and the scraping site. Metric registration is get-or-create:
/// asking twice for the same name and kind returns handles to the same
/// metric.
///
/// # Panics
///
/// Registering a name that already exists *with a different kind*
/// panics — that is a wiring bug, not a runtime condition, and the
/// panic names the clash.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut metrics = self.inner.metrics.lock().expect("registry lock poisoned");
        if let Some(existing) = metrics.get(name) {
            return existing.clone();
        }
        let metric = make();
        metrics.insert(name.to_owned(), metric.clone());
        metric
    }

    /// Returns the counter named `name`, creating it on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Returns the gauge named `name`, creating it on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Returns the histogram named `name`, creating it on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .metrics
            .lock()
            .expect("registry lock poisoned")
            .len()
    }

    /// Whether no metric has been registered yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merges every metric's shards into an owned snapshot, sorted by
    /// name within each kind. Scraping never blocks recorders: it only
    /// takes the registration lock, then reads relaxed atomics.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.inner.metrics.lock().expect("registry lock poisoned");
        let mut snapshot = Snapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => snapshot.counters.push(CounterSample {
                    name: name.clone(),
                    value: c.value(),
                }),
                Metric::Gauge(g) => snapshot.gauges.push(GaugeSample {
                    name: name.clone(),
                    value: g.value(),
                    high_water: g.high_water(),
                }),
                Metric::Histogram(h) => snapshot.histograms.push(HistogramSample {
                    name: name.clone(),
                    state: h.state(),
                }),
            }
        }
        snapshot
    }
}

/// A scraped counter value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Registered name.
    pub name: String,
    /// Merged (summed-over-shards) value.
    pub value: u64,
}

/// A scraped gauge value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSample {
    /// Registered name.
    pub name: String,
    /// Last stored value.
    pub value: u64,
    /// Largest value ever stored.
    pub high_water: u64,
}

/// A scraped, shard-merged histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSample {
    /// Registered name.
    pub name: String,
    /// Merged count / sum / min / max / buckets.
    pub state: HistogramState,
}

/// An owned, deterministic scrape of a whole [`Registry`].
///
/// Metrics appear sorted by name within each kind, so two snapshots of
/// identical recorded state are `==` and export byte-identically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counters, sorted by name.
    pub counters: Vec<CounterSample>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeSample>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSample>,
}

impl Snapshot {
    /// Looks up a counter's value by exact name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a gauge's `(value, high_water)` by exact name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<(u64, u64)> {
        self.gauges
            .iter()
            .find(|g| g.name == name)
            .map(|g| (g.value, g.high_water))
    }

    /// Looks up a histogram's merged state by exact name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramState> {
        self.histograms
            .iter()
            .find(|h| h.name == name)
            .map(|h| &h.state)
    }

    /// Total number of samples across all kinds.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Whether the snapshot carries no metric at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Re-exported so exporters can size bucket arrays without reaching
/// into the metrics module.
pub const SNAPSHOT_BUCKETS: usize = BUCKETS;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_get_or_create() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(a.value(), 5, "both handles hit the same counter");
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn kind_clash_panics_with_the_name() {
        let r = Registry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let r = Registry::new();
        r.counter("b.frames").add(7);
        r.counter("a.frames").add(1);
        r.gauge("buf").set(9);
        r.histogram("lat").record(100);
        let s = r.snapshot();
        assert_eq!(s.len(), 4);
        assert_eq!(s.counters[0].name, "a.frames");
        assert_eq!(s.counters[1].name, "b.frames");
        assert_eq!(s.counter("b.frames"), Some(7));
        assert_eq!(s.gauge("buf"), Some((9, 9)));
        assert_eq!(s.histogram("lat").unwrap().count, 1);
        assert_eq!(s.counter("missing"), None);
        assert!(Snapshot::default().is_empty());
    }

    #[test]
    fn cloned_registries_share_the_store() {
        let r = Registry::new();
        let r2 = r.clone();
        r.counter("n").increment();
        assert_eq!(r2.snapshot().counter("n"), Some(1));
    }
}
