//! Property-based tests for the core analytical framework.

use std::num::NonZeroUsize;

use mindful_core::budget::{budget_utilization, minimum_safe_area, power_budget};
use mindful_core::explore::{pareto_frontier, pareto_frontier_naive, CandidatePoint};
use mindful_core::regimes::{ScalingRegime, SplitDesign};
use mindful_core::scaling::{scale_baseline, scale_to_channels};
use mindful_core::soc::{soc_by_id, wireless_socs, SensingFractions, SocSpec};
use mindful_core::sweep::SweepGrid;
use mindful_core::throughput::sensing_throughput;
use mindful_core::units::{Area, DataRate, Energy, Frequency, Power, PowerDensity};
use proptest::prelude::*;

fn arbitrary_soc() -> impl Strategy<Value = SocSpec> {
    (
        1_u64..100_000,
        1e-1_f64..10_000.0, // mm²
        1e-2_f64..1500.0,   // mW/cm²
        1e2_f64..1e5,       // Hz
        0.0_f64..=1.0,
        0.0_f64..=1.0,
    )
        .prop_map(|(channels, mm2, pd, hz, sp, sa)| {
            SocSpec::builder("prop")
                .channels(channels)
                .area(Area::from_square_millimeters(mm2))
                .power_density(PowerDensity::from_milliwatts_per_square_centimeter(pd))
                .sampling(Frequency::from_hertz(hz))
                .wireless(true)
                .sensing_fractions(SensingFractions::new(sp, sa).unwrap())
                .build()
                .unwrap()
        })
}

proptest! {
    #[test]
    fn unit_arithmetic_is_consistent(
        mw in 1e-6_f64..1e3,
        mm2 in 1e-3_f64..1e5,
    ) {
        let p = Power::from_milliwatts(mw);
        let a = Area::from_square_millimeters(mm2);
        // Density round-trips through its definition.
        let d = p / a;
        let back = d * a;
        prop_assert!((back - p).abs().watts() <= 1e-12 * p.watts().max(1.0));
        // Addition is commutative; subtraction inverts addition.
        let q = Power::from_milliwatts(mw / 2.0);
        prop_assert_eq!(p + q, q + p);
        prop_assert!(((p + q) - q - p).abs().watts() < 1e-15 + 1e-12 * p.watts());
    }

    #[test]
    fn energy_rate_power_triangle(pj in 1e-3_f64..1e6, mbps in 1e-6_f64..1e4) {
        let eb = Energy::from_picojoules(pj);
        let rate = DataRate::from_megabits_per_second(mbps);
        let p = rate * eb;
        let eb_back = p / rate;
        prop_assert!((eb_back.picojoules() - pj).abs() < 1e-9 * pj.max(1.0));
    }

    #[test]
    fn budget_scales_linearly_with_area(mm2 in 1e-3_f64..1e6, k in 1.0_f64..100.0) {
        let a = Area::from_square_millimeters(mm2);
        let b1 = power_budget(a);
        let b2 = power_budget(a * k);
        prop_assert!((b2 / b1 - k).abs() < 1e-9 * k);
    }

    #[test]
    fn minimum_safe_area_is_budget_inverse(mw in 1e-6_f64..1e4) {
        let p = Power::from_milliwatts(mw);
        let a = minimum_safe_area(p);
        let u = budget_utilization(p, a).unwrap();
        prop_assert!((u - 1.0).abs() < 1e-9);
    }

    #[test]
    fn baseline_scaling_is_monotone(soc in arbitrary_soc(), k in 2_u64..64) {
        let n1 = soc.channels();
        let n2 = n1.saturating_mul(k).max(n1 + 1);
        let s1 = scale_baseline(&soc, n1).unwrap();
        let s2 = scale_baseline(&soc, n2).unwrap();
        prop_assert!(s2.power() >= s1.power());
        prop_assert!(s2.area() >= s1.area());
        // Power grows linearly, area sub-linearly: density must not drop.
        prop_assert!(
            s2.power_density().watts_per_square_meter()
                >= s1.power_density().watts_per_square_meter() * (1.0 - 1e-9)
        );
    }

    #[test]
    fn baseline_scaling_composes(soc in arbitrary_soc()) {
        // Scaling to 4n directly equals scaling to 2n twice (power), and
        // area likewise through the sqrt law.
        let n = soc.channels();
        let direct = scale_baseline(&soc, 4 * n).unwrap();
        let half = scale_baseline(&soc, 2 * n).unwrap();
        prop_assert!((direct.power() / half.power() - 2.0).abs() < 1e-9);
        prop_assert!((direct.area() / half.area() - 2.0_f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn split_projection_conserves_parts(
        soc in arbitrary_soc(),
        mult in 1_u64..32,
    ) {
        let scaled = scale_to_channels(&soc, soc.channels()).unwrap();
        let split = SplitDesign::from_scaled(scaled);
        let n = soc.channels() * mult;
        for regime in [ScalingRegime::Naive, ScalingRegime::HighMargin] {
            let p = split.project(regime, n).unwrap();
            let total = p.sensing_power() + p.non_sensing_power();
            prop_assert!((total - p.total_power()).abs().watts() < 1e-12);
            let area = p.sensing_area() + p.non_sensing_area();
            prop_assert!((area - p.total_area()).abs().square_meters() < 1e-15);
            // Fractions stay physical.
            let f = p.sensing_area_fraction();
            prop_assert!((0.0..=1.0 + 1e-12).contains(&f));
        }
    }

    #[test]
    fn naive_never_changes_utilization(soc in arbitrary_soc(), mult in 1_u64..64) {
        let scaled = scale_to_channels(&soc, soc.channels()).unwrap();
        let split = SplitDesign::from_scaled(scaled);
        let u0 = split
            .project(ScalingRegime::Naive, soc.channels())
            .unwrap()
            .budget_utilization();
        let u = split
            .project(ScalingRegime::Naive, soc.channels() * mult)
            .unwrap()
            .budget_utilization();
        prop_assert!((u - u0).abs() < 1e-9 * u0.max(1.0));
    }

    #[test]
    fn high_margin_utilization_is_nondecreasing(
        soc in arbitrary_soc(),
        mult in 1_u64..64,
    ) {
        let scaled = scale_to_channels(&soc, soc.channels()).unwrap();
        let split = SplitDesign::from_scaled(scaled);
        let u0 = split
            .project(ScalingRegime::HighMargin, soc.channels())
            .unwrap()
            .budget_utilization();
        let u = split
            .project(ScalingRegime::HighMargin, soc.channels() * mult)
            .unwrap()
            .budget_utilization();
        prop_assert!(u >= u0 * (1.0 - 1e-9));
    }

    #[test]
    fn sensing_throughput_is_multiplicative(
        n in 1_u64..1_000_000,
        d in 1_u8..32,
        khz in 0.1_f64..100.0,
    ) {
        let t = sensing_throughput(n, d, Frequency::from_kilohertz(khz));
        let expected = n as f64 * f64::from(d) * khz * 1e3;
        prop_assert!((t.bits_per_second() - expected).abs() < 1e-6 * expected);
    }

    #[test]
    fn published_socs_survive_any_valid_scale(id in 1_u8..=11, n in 1_u64..1_000_000) {
        let soc = soc_by_id(id).unwrap();
        let s = scale_to_channels(&soc, n).unwrap();
        prop_assert!(s.power().watts() > 0.0);
        prop_assert!(s.area().square_meters() > 0.0);
        prop_assert!(s.power().is_finite());
        prop_assert!(s.area().is_finite());
    }
}

/// Candidate sets drawn from tiny value grids, so exact-equal powers,
/// areas, and full duplicates occur constantly — the regime where a
/// skyline's tie handling can diverge from the all-pairs oracle.
fn tie_heavy_candidates() -> impl Strategy<Value = Vec<CandidatePoint>> {
    prop::collection::vec(
        (
            prop::sample::select(vec![1024_u64, 2048, 4096]),
            1_u32..6,
            1_u32..6,
        ),
        1..40,
    )
    .prop_map(|cells| {
        cells
            .into_iter()
            .enumerate()
            .map(|(i, (channels, pw, ar))| {
                CandidatePoint::new(
                    format!("p{i}"),
                    channels,
                    Power::from_milliwatts(f64::from(pw) * 5.0),
                    Area::from_square_millimeters(f64::from(ar) * 10.0),
                )
                .unwrap()
            })
            .collect()
    })
}

/// Candidate sets with continuous objectives (ties are measure-zero).
fn continuous_candidates() -> impl Strategy<Value = Vec<CandidatePoint>> {
    prop::collection::vec((1_u64..10_000, 1e-3_f64..100.0, 1e-3_f64..500.0), 1..60).prop_map(
        |cells| {
            cells
                .into_iter()
                .enumerate()
                .map(|(i, (channels, mw, mm2))| {
                    CandidatePoint::new(
                        format!("p{i}"),
                        channels,
                        Power::from_milliwatts(mw),
                        Area::from_square_millimeters(mm2),
                    )
                    .unwrap()
                })
                .collect()
        },
    )
}

fn assert_no_dominated_point(frontier: &[CandidatePoint]) -> Result<(), TestCaseError> {
    for p in frontier {
        for q in frontier {
            prop_assert!(!q.dominates(p), "{} dominates {}", q.label, p.label);
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn skyline_frontier_equals_naive_oracle_on_ties(set in tie_heavy_candidates()) {
        prop_assert_eq!(pareto_frontier(&set), pareto_frontier_naive(&set));
    }

    #[test]
    fn skyline_frontier_equals_naive_oracle_continuous(set in continuous_candidates()) {
        prop_assert_eq!(pareto_frontier(&set), pareto_frontier_naive(&set));
    }

    #[test]
    fn frontier_is_idempotent_and_never_dominated(set in tie_heavy_candidates()) {
        let once = pareto_frontier(&set);
        let twice = pareto_frontier(&once);
        prop_assert_eq!(&once, &twice);
        assert_no_dominated_point(&once)?;
    }

    #[test]
    fn parallel_sweep_is_identical_to_serial(
        channels in prop::collection::vec(
            prop::sample::select(vec![1024_u64, 1536, 2048, 3072, 4096, 8192]),
            1..5,
        ),
        efficiencies in prop::collection::vec(0.05_f64..1.0, 1..4),
        workers in 2_usize..9,
    ) {
        let grid = SweepGrid::builder()
            .socs(wireless_socs())
            .channels(channels)
            .efficiencies(efficiencies)
            .build()
            .unwrap();
        let serial = grid
            .evaluate_with_threads(NonZeroUsize::MIN)
            .unwrap();
        let parallel = grid
            .evaluate_with_threads(NonZeroUsize::new(workers).unwrap())
            .unwrap();
        prop_assert_eq!(serial.points(), parallel.points());
        prop_assert_eq!(serial.to_csv(), parallel.to_csv());
        // The frontier derived from the sweep is stable too.
        prop_assert_eq!(
            serial.feasible_frontier().unwrap(),
            parallel.feasible_frontier().unwrap()
        );
    }
}
