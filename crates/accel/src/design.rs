//! The layer-accelerator architecture and its power model (Fig. 9).
//!
//! The accelerator executes one DNN layer with `MAChw` processing
//! elements (PEs). Each PE bundles a MAC unit, a ReLU, a small FSM, and a
//! ROM holding its statically-assigned weights (weight-stationary,
//! non-Von-Neumann — no CPU, no shared memory). A dataflow FSM streams
//! inputs through staging registers and time-multiplexes `#MACop`
//! independent sequences over the PEs.
//!
//! Power decomposes into the PE array and the layer-level wrapper
//! (dataflow FSM, clock spine, I/O staging registers). The paper's
//! synthesis study (Fig. 9) shows the PE share rising from ~25 % in small
//! designs to >90 % in large ones — the behaviour this model reproduces
//! from per-component costs.

use core::fmt;

use mindful_core::units::Power;

use crate::error::{AccelError, Result};
use crate::tech::TechnologyNode;
use crate::workload::MacWorkload;

/// Minimum width (in 8-bit registers) of the input/output staging
/// buffers; wider PE arrays need proportionally wider staging.
const MIN_STAGING_WIDTH: u64 = 16;

/// A synthesized layer-accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorDesign {
    node: TechnologyNode,
    mac_hw: u64,
    mac_seq: u64,
    mac_ops: u64,
}

impl AcceleratorDesign {
    /// Creates a design with `mac_hw` PEs executing a layer of `mac_ops`
    /// sequences of `mac_seq` steps.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidParameter`] when any count is zero.
    pub fn new(node: TechnologyNode, mac_hw: u64, mac_seq: u64, mac_ops: u64) -> Result<Self> {
        for (name, v) in [("MAChw", mac_hw), ("MACseq", mac_seq), ("#MACop", mac_ops)] {
            if v == 0 {
                return Err(AccelError::InvalidParameter { name, value: 0.0 });
            }
        }
        Ok(Self {
            node,
            mac_hw,
            mac_seq,
            mac_ops,
        })
    }

    /// A design sized for a layer workload with a chosen PE count.
    ///
    /// # Errors
    ///
    /// Same as [`AcceleratorDesign::new`].
    pub fn for_workload(node: TechnologyNode, workload: MacWorkload, mac_hw: u64) -> Result<Self> {
        Self::new(node, mac_hw, workload.seq(), workload.ops())
    }

    /// The technology node.
    #[must_use]
    pub fn node(&self) -> TechnologyNode {
        self.node
    }

    /// Number of PEs (`MAChw`).
    #[must_use]
    pub fn mac_hw(&self) -> u64 {
        self.mac_hw
    }

    /// Sequence length (`MACseq`), which sets each PE's ROM depth.
    #[must_use]
    pub fn mac_seq(&self) -> u64 {
        self.mac_seq
    }

    /// Independent sequences in the layer (`#MACop`).
    #[must_use]
    pub fn mac_ops(&self) -> u64 {
        self.mac_ops
    }

    /// Power of one PE: MAC + ReLU + PE FSM + weight ROM of `MACseq`
    /// words.
    #[must_use]
    pub fn pe_power(&self) -> Power {
        self.node.mac_power()
            + self.node.relu_power()
            + self.node.pe_fsm_power()
            + self.node.rom_word_power() * self.mac_seq as f64
    }

    /// Power of the whole PE array.
    #[must_use]
    pub fn pe_array_power(&self) -> Power {
        self.pe_power() * self.mac_hw as f64
    }

    /// Width of each staging buffer in 8-bit registers.
    #[must_use]
    pub fn staging_width(&self) -> u64 {
        self.mac_hw.max(MIN_STAGING_WIDTH)
    }

    /// Power of everything outside the PEs: dataflow FSM, clock spine,
    /// and input/output staging registers.
    #[must_use]
    pub fn wrapper_power(&self) -> Power {
        let staging = self.node.register_power() * (2 * self.staging_width()) as f64;
        let dataflow = self.node.dataflow_per_pe_power() * self.mac_hw as f64;
        self.node.layer_base_power() + staging + dataflow
    }

    /// Total layer power (the "Layer Power" series of Fig. 9).
    #[must_use]
    pub fn layer_power(&self) -> Power {
        self.pe_array_power() + self.wrapper_power()
    }

    /// Fraction of total power consumed by the PE array (the
    /// "PE Power / Layer Power" series of Fig. 9).
    #[must_use]
    pub fn pe_share(&self) -> f64 {
        self.pe_array_power() / self.layer_power()
    }

    /// Cycles to execute the layer: `MACseq · ⌈#MACop / MAChw⌉` (Eq. 11
    /// divided by `t_MAC`).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.mac_seq * self.mac_ops.div_ceil(self.mac_hw)
    }

    /// Wall-clock latency of the layer at the node's MAC latency.
    #[must_use]
    pub fn latency(&self) -> mindful_core::units::TimeSpan {
        self.node.mac_latency() * self.cycles() as f64
    }
}

impl fmt::Display for AcceleratorDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: MAChw {}, MACseq {}, #MACop {} -> {:.3} mW ({:.0}% PE)",
            self.node.name(),
            self.mac_hw,
            self.mac_seq,
            self.mac_ops,
            self.layer_power().milliwatts(),
            self.pe_share() * 100.0
        )
    }
}

/// The twelve design points of the Fig. 9 synthesis study
/// (`(MACseq, MAChw, #MACop)` per row, 130 nm, 100 MHz, 8-bit).
pub const FIG9_CONFIGS: [(u64, u64, u64); 12] = [
    (256, 4, 4),
    (256, 4, 8),
    (256, 4, 16),
    (256, 4, 32),
    (256, 4, 64),
    (256, 8, 64),
    (256, 16, 64),
    (256, 32, 64),
    (256, 64, 64),
    (512, 128, 128),
    (1024, 256, 256),
    (2048, 512, 512),
];

/// Builds the twelve Fig. 9 design points at 130 nm.
#[must_use]
pub fn fig9_design_points() -> Vec<AcceleratorDesign> {
    FIG9_CONFIGS
        .iter()
        .map(|&(seq, hw, ops)| {
            AcceleratorDesign::new(TechnologyNode::TSMC_130NM, hw, seq, ops)
                .expect("table configs are valid")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_design_points() {
        let points = fig9_design_points();
        assert_eq!(points.len(), 12);
        assert_eq!(points[0].mac_hw(), 4);
        assert_eq!(points[11].mac_seq(), 2048);
    }

    #[test]
    fn small_designs_have_low_pe_share() {
        // Fig. 9: designs 1–5 stay around 25 % PE share.
        for design in &fig9_design_points()[..5] {
            let share = design.pe_share();
            assert!((0.15..=0.35).contains(&share), "{design}: share {share:.2}");
        }
    }

    #[test]
    fn growing_mac_hw_raises_pe_share_toward_eighty_percent() {
        // Fig. 9: designs 6–9 rise to roughly 80 %.
        let points = fig9_design_points();
        let shares: Vec<f64> = points[5..9]
            .iter()
            .map(AcceleratorDesign::pe_share)
            .collect();
        for pair in shares.windows(2) {
            assert!(pair[1] > pair[0], "share must rise: {shares:?}");
        }
        assert!(
            (0.70..=0.90).contains(&shares[3]),
            "design 9 share {:.2}",
            shares[3]
        );
    }

    #[test]
    fn largest_designs_exceed_ninety_percent() {
        // Fig. 9: designs 10–12 approach ~96 %.
        let points = fig9_design_points();
        assert!(points[11].pe_share() > 0.90, "{}", points[11]);
        assert!(points[11].pe_share() > points[9].pe_share());
    }

    #[test]
    fn total_power_tracks_mac_hw() {
        // Doubling the PE count roughly doubles power in large designs.
        let node = TechnologyNode::TSMC_130NM;
        let a = AcceleratorDesign::new(node, 256, 1024, 256).unwrap();
        let b = AcceleratorDesign::new(node, 512, 1024, 512).unwrap();
        let ratio = b.layer_power() / a.layer_power();
        assert!((1.8..=2.1).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn cycles_match_time_multiplexing() {
        let node = TechnologyNode::NANGATE_45NM;
        let d = AcceleratorDesign::new(node, 4, 256, 10).unwrap();
        // ceil(10/4) = 3 rounds of 256 steps.
        assert_eq!(d.cycles(), 768);
        assert!((d.latency().microseconds() - 768.0 * 2e-3).abs() < 1e-9);
    }

    #[test]
    fn pe_power_includes_rom_depth() {
        let node = TechnologyNode::TSMC_130NM;
        let shallow = AcceleratorDesign::new(node, 1, 256, 1).unwrap();
        let deep = AcceleratorDesign::new(node, 1, 2048, 1).unwrap();
        assert!(deep.pe_power() > shallow.pe_power());
        let delta = deep.pe_power() - shallow.pe_power();
        let expected = node.rom_word_power() * (2048.0 - 256.0);
        assert!((delta - expected).abs().watts() < 1e-15);
    }

    #[test]
    fn zero_parameters_rejected() {
        let node = TechnologyNode::TSMC_130NM;
        assert!(AcceleratorDesign::new(node, 0, 1, 1).is_err());
        assert!(AcceleratorDesign::new(node, 1, 0, 1).is_err());
        assert!(AcceleratorDesign::new(node, 1, 1, 0).is_err());
    }

    #[test]
    fn for_workload_uses_layer_shape() {
        let w = MacWorkload::dense(256, 64).unwrap();
        let d = AcceleratorDesign::for_workload(TechnologyNode::NANGATE_45NM, w, 8).unwrap();
        assert_eq!(d.mac_seq(), 256);
        assert_eq!(d.mac_ops(), 64);
        assert_eq!(d.mac_hw(), 8);
    }

    #[test]
    fn display_shows_percentages() {
        let d = fig9_design_points()[0];
        let text = d.to_string();
        assert!(text.contains("130nm"));
        assert!(text.contains("% PE"));
    }
}
