//! Property-based tests for the accelerator substrate.

use mindful_accel::alloc::{allocate_non_pipelined, allocate_pipelined, best_allocation};
use mindful_accel::design::AcceleratorDesign;
use mindful_accel::sim::{simulate_dense, DenseLayer};
use mindful_accel::tech::TechnologyNode;
use mindful_accel::workload::{MacWorkload, NetworkWorkload};
use proptest::prelude::*;

fn arbitrary_network() -> impl Strategy<Value = NetworkWorkload> {
    prop::collection::vec((1_u64..64, 1_u64..64), 1..5).prop_map(|layers| {
        NetworkWorkload::new(
            layers
                .into_iter()
                .map(|(inputs, outputs)| MacWorkload::dense(inputs, outputs).unwrap())
                .collect(),
        )
        .unwrap()
    })
}

/// Exact total steps for a shared pool, mirroring the allocator's model.
fn steps(net: &NetworkWorkload, hw: u64) -> u64 {
    net.layers()
        .iter()
        .map(|l| l.seq() * l.ops().div_ceil(hw))
        .sum()
}

proptest! {
    #[test]
    fn non_pipelined_allocation_is_minimal_and_feasible(
        net in arbitrary_network(),
        budget_steps in 1_u64..20_000,
    ) {
        let node = TechnologyNode::NANGATE_45NM;
        let deadline = node.mac_latency() * budget_steps as f64;
        match allocate_non_pipelined(&net, node, deadline) {
            Ok(alloc) => {
                let hw = alloc.total_mac_hw();
                prop_assert!(steps(&net, hw) <= budget_steps);
                if hw > 1 {
                    prop_assert!(steps(&net, hw - 1) > budget_steps, "not minimal");
                }
                prop_assert!(hw <= net.max_ops(), "violates Eq. 12 upper bound");
            }
            Err(_) => {
                // Infeasible must really be infeasible at max parallelism.
                prop_assert!(steps(&net, net.max_ops()) > budget_steps);
            }
        }
    }

    #[test]
    fn pipelined_allocation_is_stage_minimal(
        net in arbitrary_network(),
        budget_steps in 1_u64..20_000,
    ) {
        let node = TechnologyNode::NANGATE_45NM;
        let deadline = node.mac_latency() * budget_steps as f64;
        if let Ok(alloc) = allocate_pipelined(&net, node, deadline) {
            for (layer, &hw) in net.layers().iter().zip(alloc.per_layer()) {
                let t = layer.seq() * layer.ops().div_ceil(hw);
                prop_assert!(t <= budget_steps);
                if hw > 1 {
                    let fewer = layer.seq() * layer.ops().div_ceil(hw - 1);
                    prop_assert!(fewer > budget_steps, "stage over-provisioned");
                }
            }
            let total: u64 = alloc.per_layer().iter().sum();
            prop_assert_eq!(total, alloc.total_mac_hw());
            // Eq. 15: total never exceeds the sum of per-layer #MACop.
            let cap: u64 = net.layers().iter().map(|l| l.ops()).sum();
            prop_assert!(total <= cap);
        }
    }

    #[test]
    fn best_allocation_is_never_worse_than_either_mode(
        net in arbitrary_network(),
        budget_steps in 1_u64..20_000,
    ) {
        let node = TechnologyNode::NANGATE_45NM;
        let deadline = node.mac_latency() * budget_steps as f64;
        let best = best_allocation(&net, node, deadline);
        let np = allocate_non_pipelined(&net, node, deadline);
        let pl = allocate_pipelined(&net, node, deadline);
        match best {
            Ok(b) => {
                if let Ok(a) = np {
                    prop_assert!(b.total_mac_hw() <= a.total_mac_hw());
                }
                if let Ok(a) = pl {
                    prop_assert!(b.total_mac_hw() <= a.total_mac_hw());
                }
            }
            Err(_) => {
                prop_assert!(np.is_err() && pl.is_err());
            }
        }
    }

    #[test]
    fn longer_deadlines_never_need_more_macs(
        net in arbitrary_network(),
        budget in 10_u64..10_000,
        extra in 1_u64..10_000,
    ) {
        let node = TechnologyNode::NANGATE_45NM;
        let short = node.mac_latency() * budget as f64;
        let long = node.mac_latency() * (budget + extra) as f64;
        if let (Ok(a), Ok(b)) = (
            allocate_non_pipelined(&net, node, short),
            allocate_non_pipelined(&net, node, long),
        ) {
            prop_assert!(b.total_mac_hw() <= a.total_mac_hw());
        }
    }

    #[test]
    fn simulation_equals_reference(
        inputs in 1_usize..48,
        outputs in 1_usize..32,
        hw in 1_u64..64,
        seed in 0_i32..1000,
        relu in any::<bool>(),
    ) {
        let weights: Vec<i8> = (0..inputs * outputs)
            .map(|i| (((i as i32) * 13 + seed) % 25 - 12) as i8)
            .collect();
        let bias: Vec<i32> = (0..outputs).map(|j| (j as i32 + seed) % 9 - 4).collect();
        let layer = DenseLayer::new(inputs, outputs, weights, bias, relu).unwrap();
        let x: Vec<i8> = (0..inputs).map(|i| (((i as i32) * 7 + seed) % 21 - 10) as i8).collect();
        let sim = simulate_dense(&layer, &x, hw, TechnologyNode::NANGATE_45NM).unwrap();
        prop_assert_eq!(sim.outputs, layer.reference(&x).unwrap());
        prop_assert_eq!(sim.macs_issued, (inputs * outputs) as u64);
        let eff_hw = hw.min(outputs as u64);
        prop_assert_eq!(sim.cycles, inputs as u64 * (outputs as u64).div_ceil(eff_hw));
    }

    #[test]
    fn design_power_is_monotone_in_every_dimension(
        hw in 1_u64..512,
        seq in 1_u64..4096,
        ops in 1_u64..512,
    ) {
        let node = TechnologyNode::TSMC_130NM;
        let base = AcceleratorDesign::new(node, hw, seq, ops).unwrap();
        let more_hw = AcceleratorDesign::new(node, hw + 1, seq, ops).unwrap();
        let more_seq = AcceleratorDesign::new(node, hw, seq + 1, ops).unwrap();
        prop_assert!(more_hw.layer_power() > base.layer_power());
        prop_assert!(more_seq.layer_power() >= base.layer_power());
        // PE share lies in (0, 1).
        let share = base.pe_share();
        prop_assert!(share > 0.0 && share < 1.0);
    }
}
