//! The safety power budget (Section 3.2, Eq. 3).
//!
//! Brain tissue must not warm by more than 1–2 °C; with cortical blood flow
//! this translates into a maximum sustained power density of 40 mW/cm² for
//! a subdural implant. Given a chip's brain-contact area, the *power
//! budget* is the maximum safe total power:
//!
//! ```text
//! P_budget(n) = A_soc(n) · 40 mW/cm²          (Eq. 3)
//! ```

use crate::error::{CoreError, Result};
use crate::units::{Area, Power, PowerDensity};

/// The safe power-density limit for an implanted device: 40 mW/cm².
///
/// See Wolf & Reichert (2008) and Serrano-Amenos et al. (2020), cited in
/// Section 3.2 of the paper.
pub const SAFE_POWER_DENSITY: PowerDensity =
    PowerDensity::from_milliwatts_per_square_centimeter(40.0);

/// Computes the power budget `P_budget = A · 40 mW/cm²` for a contact area.
///
/// # Examples
///
/// ```
/// use mindful_core::budget::power_budget;
/// use mindful_core::units::Area;
///
/// // A 144 mm² implant may dissipate at most 57.6 mW.
/// let budget = power_budget(Area::from_square_millimeters(144.0));
/// assert!((budget.milliwatts() - 57.6).abs() < 1e-9);
/// ```
#[must_use]
pub fn power_budget(area: Area) -> Power {
    SAFE_POWER_DENSITY * area
}

/// Computes the minimum contact area needed to dissipate `power` safely.
///
/// This is the inverse of [`power_budget`]: `A_min = P / 40 mW/cm²`.
#[must_use]
pub fn minimum_safe_area(power: Power) -> Area {
    power / SAFE_POWER_DENSITY
}

/// Returns the fraction of the power budget a design consumes
/// (`P_soc / P_budget`); values above 1 are unsafe.
///
/// # Errors
///
/// Returns [`CoreError::NonPhysicalArea`] if `area` is not strictly
/// positive.
pub fn budget_utilization(power: Power, area: Area) -> Result<f64> {
    if area.square_meters() <= 0.0 {
        return Err(CoreError::NonPhysicalArea { area });
    }
    Ok(power / power_budget(area))
}

/// Checks a design point against the safety limit (Eq. 3).
///
/// # Errors
///
/// Returns [`CoreError::PowerBudgetExceeded`] when the design is over
/// budget and [`CoreError::NonPhysicalArea`] for a non-positive area.
pub fn check_safety(power: Power, area: Area) -> Result<()> {
    if area.square_meters() <= 0.0 {
        return Err(CoreError::NonPhysicalArea { area });
    }
    let budget = power_budget(area);
    if power > budget {
        Err(CoreError::PowerBudgetExceeded { power, budget })
    } else {
        Ok(())
    }
}

/// The margin left under the budget (`P_budget − P_soc`); negative when the
/// design is over budget.
#[must_use]
pub fn budget_margin(power: Power, area: Area) -> Power {
    power_budget(area) - power
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limit_is_forty_milliwatts_per_square_centimeter() {
        assert!((SAFE_POWER_DENSITY.milliwatts_per_square_centimeter() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn budget_of_one_square_centimeter_is_forty_milliwatts() {
        let b = power_budget(Area::from_square_centimeters(1.0));
        assert!((b.milliwatts() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn minimum_area_inverts_budget() {
        let area = Area::from_square_millimeters(20.0);
        let b = power_budget(area);
        let back = minimum_safe_area(b);
        assert!((back.square_millimeters() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_at_exactly_budget_is_one() {
        let area = Area::from_square_millimeters(144.0);
        let u = budget_utilization(power_budget(area), area).unwrap();
        assert!((u - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_rejects_zero_area() {
        let err = budget_utilization(Power::from_milliwatts(1.0), Area::ZERO).unwrap_err();
        assert!(matches!(err, CoreError::NonPhysicalArea { .. }));
    }

    #[test]
    fn check_safety_accepts_under_budget() {
        // BISC at 1024 channels: 38.88 mW on 144 mm² (budget 57.6 mW).
        assert!(check_safety(
            Power::from_milliwatts(38.88),
            Area::from_square_millimeters(144.0)
        )
        .is_ok());
    }

    #[test]
    fn check_safety_rejects_over_budget() {
        // HALO as published: 15 mW on 1 mm² (budget 0.4 mW).
        let err = check_safety(
            Power::from_milliwatts(15.0),
            Area::from_square_millimeters(1.0),
        )
        .unwrap_err();
        match err {
            CoreError::PowerBudgetExceeded { power, budget } => {
                assert!((power.milliwatts() - 15.0).abs() < 1e-9);
                assert!((budget.milliwatts() - 0.4).abs() < 1e-9);
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn margin_sign_tracks_safety() {
        let area = Area::from_square_millimeters(100.0);
        assert!(!budget_margin(Power::from_milliwatts(1.0), area).is_negative());
        assert!(budget_margin(Power::from_watts(1.0), area).is_negative());
    }
}
