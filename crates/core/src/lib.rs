//! # MINDFUL core — analytical framework for implantable BCI SoCs
//!
//! A Rust implementation of the analytical framework from *MINDFUL: Safe,
//! Implantable, Large-Scale Brain-Computer Interfaces from a System-Level
//! Design Perspective* (MICRO 2025). The framework captures how the three
//! subsystems of an implanted BCI SoC — the neural interface (sensing),
//! on-chip computation, and wireless communication — trade off against
//! each other under the hard safety limit of 40 mW/cm² power density over
//! the brain-contact area.
//!
//! ## Layout
//!
//! * [`units`] — strongly-typed power/area/density/energy/rate quantities.
//! * [`budget`] — the safety power budget (Eq. 3).
//! * [`soc`] — the published SoC database (Table 1).
//! * [`scaling`] — scaling designs to the 1024-channel standard (Eq. 1,
//!   Section 4.1 special cases, Fig. 4).
//! * [`regimes`] — beyond-1024 projections under the naive / high-margin
//!   hypotheses (Sections 4.2 & 5.1, Figs. 5–6).
//! * [`throughput`] — real-time data-rate requirements (Eqs. 6–8).
//! * [`dataflow`] — communication- vs. computation-centric pipelines.
//! * [`geometry`] — channel pitch and neuron-coverage metrics.
//! * [`explore`] — design-space candidates and Pareto frontiers.
//! * [`pool`] — deterministic scoped-thread fan-out primitives shared
//!   by the sweep engine, batched DNN inference, and Monte-Carlo BER.
//! * [`sweep`] — the parallel batched sweep engine driving Figs. 5–7
//!   and 10 and the `explore` experiment.
//! * [`obs`] — zero-overhead observability: sharded metrics registry,
//!   per-thread span tracing, and snapshot exporters.
//! * [`mod@env`] — shared parsing for boolean `MINDFUL_*` environment
//!   knobs (see EXPERIMENTS.md for the knob table).
//!
//! ## Quick start
//!
//! ```
//! use mindful_core::prelude::*;
//!
//! // Scale Neuralink (SoC 3) to 1024 channels and check safety.
//! let spec = soc_by_id(3)?;
//! let scaled = scale_to_standard(&spec)?;
//! assert!(scaled.is_safe());
//!
//! // Project it to 4096 channels under the high-margin hypothesis.
//! let split = SplitDesign::from_scaled(scaled);
//! let projected = split.project(ScalingRegime::HighMargin, 4096)?;
//! // High data rates without new communication area blow the budget:
//! assert!(projected.budget_utilization() > 1.0);
//! # Ok::<(), mindful_core::CoreError>(())
//! ```

pub mod budget;
pub mod dataflow;
pub mod env;
mod error;
pub mod explore;
pub mod geometry;
pub mod obs;
pub mod pool;
pub mod regimes;
pub mod scaling;
pub mod soc;
pub mod sweep;
pub mod throughput;
pub mod units;

pub use error::{CoreError, Result};

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::budget::{check_safety, power_budget, SAFE_POWER_DENSITY};
    pub use crate::dataflow::Dataflow;
    pub use crate::obs::{Registry, Snapshot};
    pub use crate::pool::{default_threads, par_map, par_map_init, Scheduler, TaskSlot};
    pub use crate::regimes::{ScalingRegime, SplitDesign};
    pub use crate::scaling::{scale_to_channels, scale_to_standard, ScaledSoc};
    pub use crate::soc::{
        published_socs, soc_by_id, wireless_socs, NiTechnology, SocSpec, STANDARD_CHANNELS,
    };
    pub use crate::sweep::{sweep_threads, ProjectionCache, SweepGrid, SweepPoint, SweepResult};
    pub use crate::throughput::sensing_throughput;
    pub use crate::units::{Area, DataRate, Energy, Frequency, Power, PowerDensity, TimeSpan};
    pub use crate::{CoreError, Result};
}
