//! Proof of the tentpole contract: a warm five-stage implant pipeline
//! (sense → spike → bin → decode → packetize) streams a 1024-channel
//! frame train with **zero** heap allocations per step.
//!
//! A counting wrapper around the system allocator tracks every
//! allocation; the workspace denies `unsafe_code` — only this test
//! harness opts out to install the instrumented allocator.

// SAFETY: the sole unsafe construct in this file is the `GlobalAlloc`
// impl below, which delegates straight to `System`.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use mindful_decode::binning::BinAccumulator;
use mindful_decode::kalman::KalmanDecoder;
use mindful_decode::spike::SpikeDetector;
use mindful_dnn::infer::Network;
use mindful_dnn::models::ModelFamily;
use mindful_pipeline::prelude::*;
use mindful_signal::prelude::NeuralInterface;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

struct CountingAlloc;

// SAFETY: delegates directly to the system allocator; the counter is a
// relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The counter is process-global, so tests that measure it must not
/// run concurrently with tests that allocate.
static MEASURE: Mutex<()> = Mutex::new(());

/// Allocations performed while running `f`.
fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

const WINDOW: usize = 4;

/// Calibrates a detector and Kalman decoder from a recorded trajectory,
/// exactly as the glue sites do.
fn calibrate(ni: &mut NeuralInterface) -> (SpikeDetector, KalmanDecoder) {
    let frames = ni.record_trajectory(160).unwrap();
    let rows: Vec<Vec<f64>> = frames
        .iter()
        .map(|f| f.samples.iter().map(|&c| f64::from(c)).collect())
        .collect();
    let mut detector = SpikeDetector::calibrate(&rows[..64], 2.5, 3).unwrap();
    let events: Vec<Vec<bool>> = rows.iter().map(|r| detector.step(r).unwrap()).collect();
    let bins = BinAccumulator::new(ni.channels(), WINDOW)
        .unwrap()
        .bin_all(&events)
        .unwrap();
    let bin_rows: Vec<Vec<f64>> = bins
        .iter()
        .map(|b| b.iter().map(|&c| f64::from(c)).collect())
        .collect();
    let bin_intents: Vec<(f64, f64)> = (0..bins.len())
        .map(|k| {
            let i = frames[(k + 1) * WINDOW - 1].intent;
            (i.x, i.y)
        })
        .collect();
    let kalman = KalmanDecoder::calibrate(&bin_rows, &bin_intents).unwrap();
    (detector, kalman)
}

/// The acceptance chain: a 1024-channel sensing front end feeding
/// spike detection, binning, Kalman decode, and RF packetization —
/// allocation-free once every buffer has seen one full window.
#[test]
fn warm_five_stage_chain_is_allocation_free() {
    let _guard = MEASURE.lock().unwrap();
    let mut ni = NeuralInterface::new(32, 600, 10, 5).unwrap();
    assert_eq!(ni.channels(), 1024);
    let (detector, kalman) = calibrate(&mut ni);
    let channels = ni.channels();

    let mut pipeline = Pipeline::new()
        .with_stage(SenseStage::from_interface(ni, IntentSchedule::FigureEight))
        .with_stage(SpikeStage::new(detector))
        .with_stage(BinStage::new(channels, WINDOW).unwrap())
        .with_stage(KalmanStage::new(kalman))
        .with_stage(PacketizeStage::new(10).unwrap());

    // Warm-up: two full bin windows so every stage (including the
    // window-gated decode tail) has sized its buffers.
    let mut warm_emitted = 0;
    for _ in 0..2 * WINDOW {
        if pipeline.step().unwrap().is_some() {
            warm_emitted += 1;
        }
    }
    assert_eq!(warm_emitted, 2, "decode tail emits once per window");

    let mut emitted = 0;
    let allocs = allocations_during(|| {
        for _ in 0..32 {
            if pipeline.step().unwrap().is_some() {
                emitted += 1;
            }
        }
    });
    assert_eq!(emitted, 32 / WINDOW);
    assert_eq!(
        allocs, 0,
        "a warm sense→spike→bin→decode→packetize chain must not allocate"
    );

    // `telemetry()` clones — allowed to allocate, checked outside the
    // measured region.
    let t = pipeline.telemetry();
    assert_eq!(t[0].frames_in, (2 * WINDOW + 32) as u64);
    assert!(t[4].bytes_out > 0);
}

/// The observability contract of this PR: the same five-stage chain
/// with full registry instrumentation — per-stage frame counters,
/// latency histograms, buffer gauges — still streams with **zero**
/// allocations per warm step. Registration allocates up front;
/// recording must not.
#[test]
fn warm_instrumented_five_stage_chain_is_allocation_free() {
    let _guard = MEASURE.lock().unwrap();
    let registry = mindful_core::obs::Registry::new();
    let mut ni = NeuralInterface::new(32, 600, 10, 5).unwrap();
    assert_eq!(ni.channels(), 1024);
    let (detector, kalman) = calibrate(&mut ni);
    let channels = ni.channels();

    let mut pipeline = Pipeline::new()
        .with_stage(SenseStage::from_interface(ni, IntentSchedule::FigureEight))
        .with_stage(SpikeStage::new(detector))
        .with_stage(BinStage::new(channels, WINDOW).unwrap())
        .with_stage(KalmanStage::new(kalman))
        .with_stage(PacketizeStage::new(10).unwrap())
        .with_instrumentation(&registry, "pipe");

    // Warm-up also initializes the observability thread-locals (shard
    // selection, span clock) so the measured region starts truly warm.
    for _ in 0..2 * WINDOW {
        pipeline.step().unwrap();
    }

    let mut emitted = 0;
    let allocs = allocations_during(|| {
        for _ in 0..32 {
            if pipeline.step().unwrap().is_some() {
                emitted += 1;
            }
        }
    });
    assert_eq!(emitted, 32 / WINDOW);
    assert_eq!(
        allocs, 0,
        "a warm instrumented chain must not allocate: metric recording is atomics only"
    );

    // Scraping allocates by design — outside the measured region — and
    // the scrape must agree with the driver's own telemetry exactly.
    // Without the `obs` feature instrumentation is a no-op and the
    // registry stays empty; the allocation-free property above is the
    // part that holds in every configuration.
    #[cfg(feature = "obs")]
    let snapshot = registry.snapshot();
    #[cfg(feature = "obs")]
    for (i, t) in pipeline.telemetry().iter().enumerate() {
        let base = format!("pipe.{i}.{}", t.name);
        assert_eq!(
            snapshot.counter(&format!("{base}.frames_in")),
            Some(t.frames_in),
            "{base}"
        );
        assert_eq!(
            snapshot.counter(&format!("{base}.frames_out")),
            Some(t.frames_out),
            "{base}"
        );
        assert_eq!(
            snapshot.counter(&format!("{base}.bytes_out")),
            Some(t.bytes_out),
            "{base}"
        );
        assert_eq!(
            snapshot.gauge(&format!("{base}.buffer_bytes")).unwrap().1,
            t.peak_buffer_bytes as u64,
            "{base}: gauge high water tracks the peak buffer"
        );
        assert_eq!(
            snapshot
                .histogram(&format!("{base}.latency_ns"))
                .unwrap()
                .count,
            t.frames_in,
            "{base}: one latency sample per input frame"
        );
    }
}

/// The serving tentpole's memory contract: a warm [`Fleet`] epoch —
/// ready-list scan, serial dispatch, real steps, load shedding into
/// concealment, backpressure rejections, and metric recording — runs
/// with **zero** heap allocations.
///
/// The proof is on a one-worker scheduler deliberately: multi-worker
/// epochs spawn scoped threads (which allocate stacks by design), but
/// the per-session step path they execute is exactly this serial path,
/// so proving the serial epoch allocation-free proves the work itself
/// is.
#[test]
fn warm_fleet_epoch_is_allocation_free() {
    use std::num::{NonZeroU32, NonZeroUsize};

    let _guard = MEASURE.lock().unwrap();
    let registry = mindful_core::obs::Registry::new();
    let sched = mindful_core::pool::Scheduler::new(NonZeroUsize::MIN);
    let config = FleetConfig {
        capacity: NonZeroUsize::new(8).unwrap(),
        quantum: NonZeroU32::new(4).unwrap(),
        max_backlog: 16,
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::observed(&sched, config, &registry, "zfleet");
    // One plain chain (backlogged under pressure, rejections at the
    // cap) and one sheddable chain (gap markers into its concealer
    // every epoch): both warm paths sit inside the measured region.
    let plain = fleet
        .admit(SessionSpec::new(
            Pipeline::new()
                .with_stage(SenseStage::new(2, 16, 10, 3, IntentSchedule::FigureEight).unwrap())
                .with_stage(PacketizeStage::new(10).unwrap()),
        ))
        .unwrap();
    let shedding = fleet
        .admit(
            SessionSpec::new(
                Pipeline::new()
                    .with_stage(SenseStage::new(2, 16, 10, 4, IntentSchedule::FigureEight).unwrap())
                    .with_stage(ConcealStage::new(4, DegradePolicy::HoldLast).unwrap()),
            )
            .with_shed(1, FrameKind::Codes),
        )
        .unwrap();

    // Warm-up: grow the ready list, pipeline buffers, and backlog to
    // steady state (the plain session saturates its bound and starts
    // rejecting; the sheddable one sheds every epoch).
    for _ in 0..5 {
        fleet.request(plain, 8).unwrap();
        fleet.request(shedding, 8).unwrap();
        fleet.drive_epoch().unwrap();
    }

    let allocs = allocations_during(|| {
        for _ in 0..8 {
            fleet.request(plain, 8).unwrap();
            fleet.request(shedding, 8).unwrap();
            fleet.drive_epoch().unwrap();
        }
    });
    assert_eq!(
        allocs, 0,
        "a warm fleet epoch must not allocate: scheduling, stepping, \
         shedding, and metric recording all reuse warm state"
    );

    // The degraded and rejected paths really ran inside the measured
    // region.
    let shed_report = fleet.evict(shedding).unwrap();
    assert!(shed_report.shed >= 8 * 4, "every measured epoch shed");
    let plain_report = fleet.evict(plain).unwrap();
    assert!(
        plain_report.rejected > 0,
        "backpressure rejected at the cap"
    );
    assert_eq!(
        plain_report.backlog,
        config.max_backlog - config.quantum.get(),
        "steady state: the bound fills each round, one quantum drains"
    );
}

/// The secure-link chain of the authenticated-framing PR: sense →
/// packetize → authenticated ARQ link (seal + NH/SipHash MAC verify +
/// replay window) → neural firewall — allocation-free once the link's
/// seal buffer, the MAC pad, and the firewall's baselines are warm.
#[test]
fn warm_secure_chain_is_allocation_free() {
    use mindful_rf::arq::ArqConfig;
    use mindful_rf::auth::{AuthConfig, AuthKey};

    let _guard = MEASURE.lock().unwrap();
    let ni = NeuralInterface::new(32, 600, 10, 5).unwrap();
    let channels = ni.channels();
    let auth = AuthConfig::new(AuthKey::from_seed(0xA110C, 2));
    let mut pipeline = Pipeline::new()
        .with_stage(SenseStage::from_interface(ni, IntentSchedule::FigureEight))
        .with_stage(PacketizeStage::new(10).unwrap())
        .with_stage(
            LinkStage::with_channel(ArqConfig::selective_repeat(4), None, 1, Some(&auth)).unwrap(),
        )
        .with_stage(FirewallStage::new(channels, FirewallConfig::default()).unwrap());

    // Warm-up long enough to flush the link's playout delay and to
    // finish the firewall's warm-up window, so the measured region is
    // pure steady state.
    let mut warm_emitted = 0;
    for _ in 0..80 {
        if pipeline.step().unwrap().is_some() {
            warm_emitted += 1;
        }
    }
    assert!(warm_emitted > 0, "the link plays out during warm-up");

    let mut emitted = 0;
    let allocs = allocations_during(|| {
        for _ in 0..32 {
            if pipeline.step().unwrap().is_some() {
                emitted += 1;
            }
        }
    });
    assert_eq!(emitted, 32, "steady state plays out every frame");
    assert_eq!(
        allocs, 0,
        "a warm sense→packetize→auth-link→firewall chain must not allocate: \
         sealing, MAC verification, and coherence scoring reuse their buffers"
    );

    // The crypto path really ran: every frame sealed and accepted, and
    // the firewall scored a coherent stream without quarantining.
    let telemetry = pipeline.telemetry();
    let link = telemetry[2].secure.expect("link reports secure telemetry");
    assert!(link.sealed >= (80 + 32) as u64);
    assert_eq!(link.rejected_auth, 0);
    let firewall = telemetry[3]
        .secure
        .expect("firewall reports secure telemetry");
    assert_eq!(firewall.firewalled, 0);
}

/// The computation-centric variant: sensing straight into the embedded
/// DNN, allocation-free after one warm frame.
#[test]
fn warm_dnn_chain_is_allocation_free() {
    let _guard = MEASURE.lock().unwrap();
    let ni = NeuralInterface::new(32, 600, 10, 5).unwrap();
    let channels = ni.channels() as u64;
    let network = Network::with_seeded_weights(ModelFamily::Mlp.architecture(channels).unwrap(), 7);
    let mut pipeline = Pipeline::new()
        .with_stage(SenseStage::from_interface(ni, IntentSchedule::FigureEight))
        .with_stage(DnnStage::new(network, 10).unwrap());

    for _ in 0..2 {
        pipeline.step().unwrap().expect("dnn emits every frame");
    }
    let allocs = allocations_during(|| {
        for _ in 0..32 {
            pipeline.step().unwrap().expect("dnn emits every frame");
        }
    });
    assert_eq!(allocs, 0, "a warm sense→dnn chain must not allocate");
}

/// The quantized twin: the int8 datapath reuses the same workspace
/// arenas (i8 ping-pong + i32 accumulators grown once at
/// construction), so a warm Int8 chain is just as allocation-free.
#[test]
fn warm_int8_dnn_chain_is_allocation_free() {
    let _guard = MEASURE.lock().unwrap();
    let ni = NeuralInterface::new(32, 600, 10, 5).unwrap();
    let channels = ni.channels() as u64;
    let network = Network::with_seeded_weights(ModelFamily::Mlp.architecture(channels).unwrap(), 7);
    let stage = DnnStage::with_precision(
        std::sync::Arc::new(network),
        10,
        mindful_pipeline::Precision::Int8,
    )
    .unwrap();
    assert_eq!(stage.precision(), mindful_pipeline::Precision::Int8);
    let mut pipeline = Pipeline::new()
        .with_stage(SenseStage::from_interface(ni, IntentSchedule::FigureEight))
        .with_stage(stage);

    for _ in 0..2 {
        pipeline.step().unwrap().expect("dnn emits every frame");
    }
    let allocs = allocations_during(|| {
        for _ in 0..32 {
            pipeline.step().unwrap().expect("dnn emits every frame");
        }
    });
    assert_eq!(allocs, 0, "a warm int8 sense→dnn chain must not allocate");
}

/// The instrumented computation-centric chain: per-stage metrics *and*
/// the inference engine's per-layer span tracing (ring-buffer writes on
/// this thread) — still allocation-free per warm step.
#[test]
fn warm_instrumented_dnn_chain_is_allocation_free() {
    let _guard = MEASURE.lock().unwrap();
    let registry = mindful_core::obs::Registry::new();
    let ni = NeuralInterface::new(32, 600, 10, 5).unwrap();
    let channels = ni.channels() as u64;
    let network = Network::with_seeded_weights(ModelFamily::Mlp.architecture(channels).unwrap(), 7);
    let mut pipeline = Pipeline::new()
        .with_stage(SenseStage::from_interface(ni, IntentSchedule::FigureEight))
        .with_stage(DnnStage::new(network, 10).unwrap())
        .with_instrumentation(&registry, "dnnchain");

    for _ in 0..2 {
        pipeline.step().unwrap().expect("dnn emits every frame");
    }
    mindful_core::obs::clear_spans();
    let allocs = allocations_during(|| {
        for _ in 0..32 {
            pipeline.step().unwrap().expect("dnn emits every frame");
        }
    });
    assert_eq!(
        allocs, 0,
        "a warm instrumented sense→dnn chain must not allocate, span tracing included"
    );

    #[cfg(feature = "obs")]
    assert_eq!(
        registry.snapshot().counter("dnnchain.1.dnn.frames_in"),
        Some(2 + 32)
    );
    if mindful_core::obs::spans_enabled() {
        let mut spans = Vec::new();
        let overwritten = mindful_core::obs::drain_spans(&mut spans);
        assert!(
            spans.len() as u64 + overwritten > 0,
            "per-layer spans were recorded during the measured steps"
        );
        assert!(spans.iter().all(|s| s.name.starts_with("dnn.")));
    }
}
