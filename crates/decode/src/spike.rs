//! Threshold spike detection and activity-ranked channel dropout
//! (Section 6.2, the `ChDr` optimization).
//!
//! Spike sorting-style methods reduce the neural data volume by filtering
//! out inactive channels. This module implements the hardware-friendly
//! first stage: a robust per-channel threshold detector (median absolute
//! deviation noise estimate, as used in classic spike-sorting pipelines)
//! and a selector that ranks channels by detected event rate to pick the
//! `n' < n` *active* channels the on-implant DNN should consume.

use crate::error::{DecodeError, Result};

/// A per-channel threshold spike detector.
#[derive(Debug, Clone)]
pub struct SpikeDetector {
    threshold: Vec<f64>,
    baseline: Vec<f64>,
    refractory: usize,
    /// Steps remaining in each channel's refractory window.
    holdoff: Vec<usize>,
}

impl SpikeDetector {
    /// Calibrates thresholds from a quiet recording segment
    /// (`rows × channels`): threshold = baseline + `k` × MAD-estimated
    /// noise sigma.
    ///
    /// # Errors
    ///
    /// * [`DecodeError::InsufficientData`] for fewer than 32 rows.
    /// * [`DecodeError::ShapeMismatch`] for ragged rows.
    /// * [`DecodeError::InvalidParameter`] for a non-positive `k` or
    ///   `refractory`.
    pub fn calibrate(segment: &[Vec<f64>], k: f64, refractory: usize) -> Result<Self> {
        if segment.len() < 32 {
            return Err(DecodeError::InsufficientData {
                provided: segment.len(),
                required: 32,
            });
        }
        if !(k > 0.0 && k.is_finite()) {
            return Err(DecodeError::InvalidParameter {
                name: "k",
                value: k,
            });
        }
        if refractory == 0 {
            return Err(DecodeError::InvalidParameter {
                name: "refractory",
                value: 0.0,
            });
        }
        let channels = segment[0].len();
        if channels == 0 {
            return Err(DecodeError::ShapeMismatch {
                expected: 1,
                actual: 0,
            });
        }
        for row in segment {
            if row.len() != channels {
                return Err(DecodeError::ShapeMismatch {
                    expected: channels,
                    actual: row.len(),
                });
            }
        }
        let mut threshold = Vec::with_capacity(channels);
        let mut baseline = Vec::with_capacity(channels);
        let mut column: Vec<f64> = Vec::with_capacity(segment.len());
        for c in 0..channels {
            column.clear();
            column.extend(segment.iter().map(|row| row[c]));
            let med = median(&mut column);
            let mut deviations: Vec<f64> = segment.iter().map(|r| (r[c] - med).abs()).collect();
            let mad = median(&mut deviations);
            // sigma ≈ MAD / 0.6745 for Gaussian noise.
            let sigma = (mad / 0.6745).max(1e-9);
            baseline.push(med);
            threshold.push(med + k * sigma);
        }
        Ok(Self {
            threshold,
            baseline,
            refractory,
            holdoff: vec![0; channels],
        })
    }

    /// Number of calibrated channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.threshold.len()
    }

    /// Per-channel thresholds.
    #[must_use]
    pub fn thresholds(&self) -> &[f64] {
        &self.threshold
    }

    /// Per-channel baselines (median of the calibration segment).
    #[must_use]
    pub fn baselines(&self) -> &[f64] {
        &self.baseline
    }

    /// Processes one frame; returns per-channel detection indicators.
    /// Detections within a channel's refractory window are suppressed.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::ShapeMismatch`] for a wrong frame width.
    pub fn step(&mut self, frame: &[f64]) -> Result<Vec<bool>> {
        let mut events = Vec::with_capacity(self.channels());
        self.step_into(frame, &mut events)?;
        Ok(events)
    }

    /// Like [`SpikeDetector::step`], but writes the indicators into
    /// `events` (cleared first). Allocation-free once `events` has
    /// capacity for the channel count.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::ShapeMismatch`] for a wrong frame width.
    pub fn step_into(&mut self, frame: &[f64], events: &mut Vec<bool>) -> Result<()> {
        if frame.len() != self.channels() {
            return Err(DecodeError::ShapeMismatch {
                expected: self.channels(),
                actual: frame.len(),
            });
        }
        events.clear();
        events.extend(
            frame
                .iter()
                .zip(self.threshold.iter())
                .zip(self.holdoff.iter_mut())
                .map(|((&v, &t), hold)| {
                    if *hold > 0 {
                        *hold -= 1;
                        false
                    } else if v > t {
                        *hold = self.refractory;
                        true
                    } else {
                        false
                    }
                }),
        );
        Ok(())
    }

    /// Counts detections per channel over a whole recording.
    ///
    /// # Errors
    ///
    /// Same as [`SpikeDetector::step`].
    pub fn event_counts(&mut self, frames: &[Vec<f64>]) -> Result<Vec<u64>> {
        self.holdoff.iter_mut().for_each(|h| *h = 0);
        let mut counts = vec![0_u64; self.channels()];
        for frame in frames {
            for (count, hit) in counts.iter_mut().zip(self.step(frame)?) {
                *count += u64::from(hit);
            }
        }
        Ok(counts)
    }
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        0.5 * (values[n / 2 - 1] + values[n / 2])
    }
}

/// Selects the `keep` most active channels by detected event count
/// (ties broken by lower index). Returns sorted channel indices.
///
/// # Errors
///
/// Returns [`DecodeError::InvalidParameter`] when `keep` is zero or
/// exceeds the channel count.
pub fn select_active_channels(counts: &[u64], keep: usize) -> Result<Vec<usize>> {
    if keep == 0 || keep > counts.len() {
        return Err(DecodeError::InvalidParameter {
            name: "keep",
            value: keep as f64,
        });
    }
    let mut order: Vec<usize> = (0..counts.len()).collect();
    order.sort_by_key(|&i| (core::cmp::Reverse(counts[i]), i));
    let mut chosen = order[..keep].to_vec();
    chosen.sort_unstable();
    Ok(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn noise_segment(channels: usize, rows: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..rows)
            .map(|_| {
                (0..channels)
                    .map(|_| rng.random::<f64>() * 0.2 - 0.1)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn detects_clear_events_and_ignores_noise() {
        let quiet = noise_segment(4, 200, 1);
        let mut det = SpikeDetector::calibrate(&quiet, 4.5, 3).unwrap();
        // A frame with a big deflection on channel 2 only.
        let hits = det.step(&[0.0, 0.01, 5.0, -0.02]).unwrap();
        assert_eq!(hits, vec![false, false, true, false]);
        // Plain noise produces (almost) no detections.
        let counts = det.event_counts(&quiet).unwrap();
        let total: u64 = counts.iter().sum();
        assert!(total <= 4, "false positives: {total}");
    }

    #[test]
    fn refractory_suppresses_double_counting() {
        let quiet = noise_segment(1, 100, 2);
        let mut det = SpikeDetector::calibrate(&quiet, 4.0, 3).unwrap();
        assert_eq!(det.step(&[5.0]).unwrap(), vec![true]);
        assert_eq!(det.step(&[5.0]).unwrap(), vec![false]);
        assert_eq!(det.step(&[5.0]).unwrap(), vec![false]);
        assert_eq!(det.step(&[5.0]).unwrap(), vec![false]);
        assert_eq!(det.step(&[5.0]).unwrap(), vec![true]);
    }

    #[test]
    fn step_into_matches_step() {
        let quiet = noise_segment(4, 200, 1);
        let mut a = SpikeDetector::calibrate(&quiet, 4.0, 3).unwrap();
        let mut b = a.clone();
        let mut events = Vec::new();
        for k in 0..30 {
            let frame = [k as f64, 0.01, 5.0 - k as f64, -0.02];
            b.step_into(&frame, &mut events).unwrap();
            assert_eq!(a.step(&frame).unwrap(), events);
        }
    }

    #[test]
    fn thresholds_track_noise_level() {
        let mut loud = noise_segment(2, 300, 3);
        for row in &mut loud {
            row[1] *= 10.0;
        }
        let det = SpikeDetector::calibrate(&loud, 4.0, 2).unwrap();
        assert!(det.thresholds()[1] > det.thresholds()[0] * 3.0);
        // Baselines stay near zero for zero-mean noise.
        assert!(det.baselines().iter().all(|b| b.abs() < 0.2));
    }

    #[test]
    fn active_channel_selection_ranks_by_count() {
        let counts = [5_u64, 40, 0, 40, 12];
        let top2 = select_active_channels(&counts, 2).unwrap();
        assert_eq!(top2, vec![1, 3]);
        let top3 = select_active_channels(&counts, 3).unwrap();
        assert_eq!(top3, vec![1, 3, 4]);
        assert!(select_active_channels(&counts, 0).is_err());
        assert!(select_active_channels(&counts, 6).is_err());
    }

    #[test]
    fn calibration_validation() {
        let quiet = noise_segment(3, 200, 4);
        assert!(SpikeDetector::calibrate(&quiet[..10], 4.0, 2).is_err());
        assert!(SpikeDetector::calibrate(&quiet, 0.0, 2).is_err());
        assert!(SpikeDetector::calibrate(&quiet, 4.0, 0).is_err());
        let mut ragged = quiet.clone();
        ragged[7] = vec![0.0; 2];
        assert!(SpikeDetector::calibrate(&ragged, 4.0, 2).is_err());
        let mut det = SpikeDetector::calibrate(&quiet, 4.0, 2).unwrap();
        assert!(det.step(&[0.0; 2]).is_err());
    }

    #[test]
    fn median_helper() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
    }
}
