//! Wireless-link laboratory: validate the analytic BER models with the
//! functional modem, then price the implant uplink.
//!
//! ```text
//! cargo run -p mindful-examples --bin wireless_link
//! ```
//!
//! Sweeps Eb/N0 for OOK, QPSK, and 16-QAM, measuring BER by Monte-Carlo
//! through the bit-level modem and comparing against the closed forms
//! the Fig. 7 analysis relies on — then converts required Eb/N0 into
//! transmit energy per bit through the paper's tissue link budget.

use mindful_examples::section;
use mindful_plot::AsciiTable;
use mindful_rf::prelude::*;

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    section("1. Monte-Carlo vs. analytic BER over AWGN");
    let mut table = AsciiTable::new(&["scheme", "Eb/N0 (dB)", "measured BER", "analytic BER"]);
    let schemes = [Modulation::Ook, Modulation::qam(2)?, Modulation::qam(4)?];
    for modulation in schemes {
        for ebn0_db in [4.0_f64, 8.0, 10.0] {
            let ebn0 = 10.0_f64.powf(ebn0_db / 10.0);
            let modem = Modem::new(modulation, ebn0)?;
            let measured = modem.measure_ber(1.0, 600_000, 42)?;
            let analytic = modulation.ber(ebn0);
            table.push(&[
                modulation.to_string(),
                format!("{ebn0_db:.0}"),
                format!("{measured:.2e}"),
                format!("{analytic:.2e}"),
            ]);
        }
    }
    println!("{table}");

    section("2. Required Eb/N0 at the paper's BER target (1e-6)");
    let mut table = AsciiTable::new(&["scheme", "required Eb/N0 (dB)"]);
    for k in [1_u8, 2, 4, 6, 8] {
        let m = Modulation::qam(k)?;
        table.push(&[m.to_string(), format!("{:.2}", m.required_ebn0_db(1e-6)?)]);
    }
    println!("{table}");

    section("3. Through-tissue link budget (60 dB path loss + 20 dB margin)");
    let link = LinkBudget::paper_nominal();
    let mut table = AsciiTable::new(&[
        "scheme",
        "E_b ideal (pJ/b)",
        "E_b @20% (pJ/b)",
        "P @82 Mbps, 20% (mW)",
    ]);
    let rate = mindful_core::units::DataRate::from_megabits_per_second(81.92);
    for k in [1_u8, 2, 3, 4, 6] {
        let m = Modulation::qam(k)?;
        let ideal = link.energy_per_bit(m, 1.0)?;
        let real = link.energy_per_bit(m, 0.2)?;
        let power = link.transmit_power(m, 0.2, rate)?;
        table.push(&[
            m.to_string(),
            format!("{:.1}", ideal.picojoules()),
            format!("{:.1}", real.picojoules()),
            format!("{:.2}", power.milliwatts()),
        ]);
    }
    println!("{table}");
    println!(
        "the paper's 50 pJ/bit OOK anchor corresponds to a ~15-20% efficient \
         transmitter through this budget"
    );
    Ok(())
}
