//! Fig. 10 — power consumption (normalized to the power budget) of
//! implanted SoCs running the full MLP and DN-CNN decoders on-chip.

use std::path::Path;

use mindful_core::regimes::{standard_split_designs, ScalingRegime};
use mindful_core::soc::wireless_socs;
use mindful_core::sweep::{par_map, sweep_threads, SweepGrid};
use mindful_dnn::integration::{evaluate_full, max_channels, IntegrationConfig};
use mindful_dnn::models::ModelFamily;
use mindful_dnn::DnnError;
use mindful_plot::{Csv, LineChart, Series};

use crate::error::Result;
use crate::output::Artifacts;

/// Channel sweep granularity.
const STEP: u64 = 128;

/// Sweep limit (the paper plots to 7168).
const LIMIT: u64 = 7168;

/// One SoC's normalized-power curve for one model.
#[derive(Debug, Clone)]
pub struct PowerCurve {
    /// Table 1 id.
    pub id: u8,
    /// SoC display name.
    pub name: String,
    /// `(channels, P_soc / P_budget)`.
    pub points: Vec<(u64, f64)>,
    /// The largest feasible channel count, if any.
    pub max_channels: Option<u64>,
}

/// The generated Fig. 10 data.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Curves for the MLP (left panel).
    pub mlp: Vec<PowerCurve>,
    /// Curves for the DN-CNN (right panel).
    pub dn_cnn: Vec<PowerCurve>,
}

impl Fig10 {
    /// Average maximum channel count among SoCs that fit a model at all.
    #[must_use]
    pub fn average_max(&self, family: ModelFamily) -> f64 {
        let curves = match family {
            ModelFamily::Mlp => &self.mlp,
            ModelFamily::DnCnn => &self.dn_cnn,
        };
        let feasible: Vec<u64> = curves.iter().filter_map(|c| c.max_channels).collect();
        if feasible.is_empty() {
            0.0
        } else {
            feasible.iter().map(|&n| n as f64).sum::<f64>() / feasible.len() as f64
        }
    }
}

/// Sweeps normalized power for SoCs 1–8 and both model families at the
/// 45 nm evaluation node.
///
/// # Errors
///
/// Propagates evaluation errors other than real-time infeasibility
/// (which simply ends a curve).
pub fn generate() -> Result<Fig10> {
    let config = IntegrationConfig::paper_45nm();
    let designs = standard_split_designs();
    let channels: Vec<u64> = (1024..=LIMIT).step_by(STEP as usize).collect();
    let grid = SweepGrid::builder()
        .socs(wireless_socs())
        // The regime axis is inert here: Fig. 10 scales through the
        // DNN integration model, not the area hypothesis.
        .regimes([ScalingRegime::Naive])
        .channels(channels.clone())
        .build()?;
    let mut fig = Fig10 {
        mlp: Vec::new(),
        dn_cnn: Vec::new(),
    };
    for family in ModelFamily::ALL {
        let cells =
            grid.map(
                |c| match evaluate_full(&designs[c.soc_index], family, c.channels, &config) {
                    Ok(point) => Ok(Some(point.budget_utilization())),
                    Err(DnnError::Accel(_)) => Ok(None),
                    Err(e) => Err(crate::ExperimentError::from(e)),
                },
            );
        let maxima = par_map(&designs, sweep_threads(), |_, design| {
            max_channels(design, family, &config, 64, 1 << 15).map_err(crate::ExperimentError::from)
        });
        let mut cells = cells.into_iter();
        for (design, max) in designs.iter().zip(maxima) {
            let mut points = Vec::new();
            let mut feasible = true;
            for (&n, cell) in channels.iter().zip(cells.by_ref().take(channels.len())) {
                if !feasible {
                    continue;
                }
                match cell? {
                    Some(utilization) => points.push((n, utilization)),
                    None => feasible = false,
                }
            }
            let curve = PowerCurve {
                id: design.scaled().spec().id(),
                name: design.scaled().name().to_owned(),
                points,
                max_channels: max?,
            };
            match family {
                ModelFamily::Mlp => fig.mlp.push(curve),
                ModelFamily::DnCnn => fig.dn_cnn.push(curve),
            }
        }
    }
    Ok(fig)
}

/// Writes both panels and the summary.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn render(fig: &Fig10, dir: &Path) -> Result<Artifacts> {
    let mut artifacts = Artifacts::new();
    let mut csv = Csv::new(&["model", "soc", "channels", "normalized_power"]);
    for (family, curves) in [("MLP", &fig.mlp), ("DN-CNN", &fig.dn_cnn)] {
        let mut chart = LineChart::new(
            format!("Fig. 10 ({family}): normalized power with on-implant DNN"),
            "Number of NI Channels",
            "Normalized Power",
        );
        for curve in curves.iter() {
            // Clamp to the paper's plot bounds (5x) for readability.
            chart.push_series(Series::new(
                format!("SoC {}", curve.id),
                curve
                    .points
                    .iter()
                    .map(|&(n, u)| (n as f64, u.min(5.0)))
                    .collect(),
            ));
            for &(n, u) in &curve.points {
                csv.push(&[
                    family.to_owned(),
                    curve.name.clone(),
                    n.to_string(),
                    u.to_string(),
                ]);
            }
        }
        chart.reference_line(1.0, "Power Budget");
        artifacts.write_file(
            dir,
            &format!("fig10_{}.svg", family.to_lowercase().replace('-', "_")),
            &chart.to_svg(),
        )?;
    }
    artifacts.write_file(dir, "fig10.csv", csv.as_str())?;

    let mlp_avg = fig.average_max(ModelFamily::Mlp);
    let cnn_avg = fig.average_max(ModelFamily::DnCnn);
    artifacts.report(format!(
        "Fig. 10: average max channels (feasible SoCs): MLP {mlp_avg:.0} (paper ~1800), \
         DN-CNN {cnn_avg:.0} (paper ~1400)"
    ));
    for (family, curves) in [("MLP", &fig.mlp), ("DN-CNN", &fig.dn_cnn)] {
        for curve in curves.iter() {
            let at_1024 = curve.points.first().map_or(f64::NAN, |&(_, u)| u);
            artifacts.report(format!(
                "  {family} on SoC {} ({}): {:.2}x budget at 1024, max {}",
                curve.id,
                curve.name,
                at_1024,
                curve
                    .max_channels
                    .map_or("infeasible".into(), |n| format!("{n} ch")),
            ));
        }
    }
    Ok(artifacts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_crossovers_match_paper_bands() {
        let fig = generate().unwrap();
        let mlp = fig.average_max(ModelFamily::Mlp);
        let cnn = fig.average_max(ModelFamily::DnCnn);
        assert!((1400.0..2400.0).contains(&mlp), "MLP avg {mlp}");
        assert!((1100.0..1800.0).contains(&cnn), "DN-CNN avg {cnn}");
        assert!(mlp > cnn, "the MLP must out-scale the DN-CNN");
    }

    #[test]
    fn small_socs_exceed_budget_severely_for_dn_cnn() {
        // Paper: SoCs 4 and 5 exceed the budget by ~5x at 1024.
        let fig = generate().unwrap();
        for curve in fig.dn_cnn.iter().filter(|c| c.id == 4 || c.id == 5) {
            let u = curve.points[0].1;
            assert!(u > 3.0, "SoC {}: {u:.1}x", curve.id);
        }
    }

    #[test]
    fn utilization_rises_along_every_curve() {
        let fig = generate().unwrap();
        for curve in fig.mlp.iter().chain(&fig.dn_cnn) {
            for pair in curve.points.windows(2) {
                assert!(pair[1].1 > pair[0].1, "SoC {}", curve.id);
            }
        }
    }

    #[test]
    fn render_writes_three_files() {
        let dir = std::env::temp_dir().join("mindful-fig10-test");
        let artifacts = render(&generate().unwrap(), &dir).unwrap();
        assert_eq!(artifacts.files().len(), 3);
        assert!(artifacts.report_text().contains("average max channels"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
