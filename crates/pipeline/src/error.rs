//! Error type for the streaming pipeline.

use core::fmt;

use crate::frame::FrameKind;

/// Errors produced while composing or driving a pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum PipelineError {
    /// A signal-substrate error from a sensing stage.
    Signal(mindful_signal::SignalError),
    /// A decoder error from a spike/bin/Kalman/Wiener stage.
    Decode(mindful_decode::DecodeError),
    /// A DNN error from an inference stage.
    Dnn(mindful_dnn::DnnError),
    /// An RF error from a packetizing stage.
    Rf(mindful_rf::RfError),
    /// A stage received a frame variant it cannot consume.
    UnexpectedFrame {
        /// The stage that rejected the frame.
        stage: &'static str,
        /// The frame variant it received.
        actual: FrameKind,
    },
    /// The pipeline has no stages.
    Empty,
    /// The fleet is at capacity and cannot admit another session.
    FleetSaturated {
        /// The fleet's configured session capacity.
        capacity: usize,
    },
    /// No live session has this id (never admitted, or already
    /// evicted).
    UnknownSession {
        /// The id that failed to resolve.
        id: u64,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Signal(e) => write!(f, "{e}"),
            Self::Decode(e) => write!(f, "{e}"),
            Self::Dnn(e) => write!(f, "{e}"),
            Self::Rf(e) => write!(f, "{e}"),
            Self::UnexpectedFrame { stage, actual } => {
                write!(f, "stage {stage} cannot consume a {actual} frame")
            }
            Self::Empty => write!(f, "pipeline has no stages"),
            Self::FleetSaturated { capacity } => {
                write!(f, "fleet is saturated at {capacity} sessions")
            }
            Self::UnknownSession { id } => write!(f, "no live session with id {id}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Signal(e) => Some(e),
            Self::Decode(e) => Some(e),
            Self::Dnn(e) => Some(e),
            Self::Rf(e) => Some(e),
            Self::UnexpectedFrame { .. }
            | Self::Empty
            | Self::FleetSaturated { .. }
            | Self::UnknownSession { .. } => None,
        }
    }
}

macro_rules! from_error {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for PipelineError {
            fn from(e: $ty) -> Self {
                Self::$variant(e)
            }
        }
    };
}

from_error!(Signal, mindful_signal::SignalError);
from_error!(Decode, mindful_decode::DecodeError);
from_error!(Dnn, mindful_dnn::DnnError);
from_error!(Rf, mindful_rf::RfError);

/// Convenience alias for results in this crate.
pub type Result<T, E = PipelineError> = core::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_display_and_sources() {
        let e: PipelineError = mindful_signal::SignalError::Empty { what: "steps" }.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(!e.to_string().is_empty());
        let e = PipelineError::UnexpectedFrame {
            stage: "kalman",
            actual: FrameKind::Bytes,
        };
        assert!(e.to_string().contains("kalman"));
        assert!(std::error::Error::source(&e).is_none());
        assert!(PipelineError::Empty.to_string().contains("no stages"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: std::error::Error + Send + Sync + 'static>() {}
        check::<PipelineError>();
    }
}
