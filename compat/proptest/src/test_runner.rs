//! The case runner's configuration, RNG, and error type.

use core::fmt;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must run.
    pub cases: u32,
    /// Maximum consecutive rejected cases (via `prop_assume!`) before
    /// the test aborts.
    pub max_local_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_local_rejects: 4096,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
    rejection: bool,
}

impl TestCaseError {
    /// A genuine assertion failure.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            rejection: false,
        }
    }

    /// A rejected case (failed `prop_assume!`); not counted as failure.
    #[must_use]
    pub fn reject(assumption: impl Into<String>) -> Self {
        Self {
            message: assumption.into(),
            rejection: true,
        }
    }

    /// Whether this is a rejection rather than a failure.
    #[must_use]
    pub fn is_rejection(&self) -> bool {
        self.rejection
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rejection {
            write!(f, "rejected: {}", self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic case RNG: xoshiro256++ seeded from an FNV-1a hash of
/// the test name, so each test sees its own reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// The stream for the named test.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::seeded(hash)
    }

    /// A stream from an explicit 64-bit seed (SplitMix64 expansion).
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `[0, bound)`; `bound` must be nonzero.
    pub fn index(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // 128-bit multiply-shift: unbiased enough for test generation.
        let wide = u128::from(self.next_u64()) * u128::from(bound);
        (wide >> 64) as u64
    }
}
