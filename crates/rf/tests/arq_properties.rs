//! Property-based tests for the ARQ receiver and the faulted link.
//!
//! The invariants a safety-critical receiver must hold under *any*
//! channel behaviour, not just the scripted fault patterns of the unit
//! tests:
//!
//! * no panic, whatever bytes arrive;
//! * playout sequences are strictly in-order (`+1` with `u16` wrap),
//!   each transmitted sequence played exactly once — never duplicated,
//!   never reordered;
//! * a frame marked `delivered` carries exactly the payload that was
//!   transmitted under that sequence number;
//! * the stats ledger balances: `delivered + lost == frames transmitted`
//!   and `recovered + lost == gaps_detected` after the drain.

use mindful_rf::arq::{ArqConfig, ArqLink, ArqReceiver};
use mindful_rf::fault::{FaultConfig, FaultPlan, WireFaultInjector};
use mindful_rf::packet::packetize;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic per-sequence payload so a delivered frame can be
/// checked against what was transmitted without keeping a log.
fn payload(seq: u16, channels: usize) -> Vec<u16> {
    (0..channels as u16)
        .map(|c| c.wrapping_mul(31).wrapping_add(seq) % 1024)
        .collect()
}

fn wire(seq: u16, channels: usize) -> Vec<u8> {
    packetize(seq, &payload(seq, channels), 10).unwrap()
}

/// Drives a bare receiver (no retransmission path) over a mangled
/// packet stream and checks the ordering/integrity invariants.
fn check_receiver(
    start: u16,
    window: usize,
    channels: usize,
    actions: &[u8],
    seed: u64,
    arq_on: bool,
) -> Result<(), TestCaseError> {
    let config = if arq_on {
        ArqConfig::selective_repeat(window)
    } else {
        ArqConfig::degraded(window)
    };
    let mut rx = ArqReceiver::new(config).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = Vec::new();
    let mut naks = Vec::new();
    let mut played: Vec<(u16, bool)> = Vec::new();
    let sent = actions.len();

    rx.prime(start);
    for (i, &action) in actions.iter().enumerate() {
        let seq = start.wrapping_add(i as u16);
        let clean = wire(seq, channels);
        match action {
            // Dropped on the wire: the receiver sees nothing.
            0 => {}
            // Bit flip anywhere in the packet.
            1 => {
                let mut bad = clean.clone();
                let bit = rng.random::<u64>() as usize % (bad.len() * 8);
                bad[bit / 8] ^= 1 << (bit % 8);
                rx.push_wire(&bad);
            }
            // Truncation (possibly to nothing).
            2 => {
                let keep = rng.random::<u64>() as usize % clean.len();
                rx.push_wire(&clean[..keep]);
            }
            // Duplicate delivery.
            3 => {
                rx.push_wire(&clean);
                rx.push_wire(&clean);
            }
            // Clean delivery.
            _ => rx.push_wire(&clean),
        }
        rx.poll_naks(&mut naks);
        if let Some(p) = rx.poll_into(&mut samples) {
            if p.delivered {
                prop_assert_eq!(&samples, &payload(p.sequence, channels));
            }
            played.push((p.sequence, p.delivered));
        }
    }
    // Drain: every transmitted sequence must come out exactly once.
    rx.close(start.wrapping_add((sent - 1) as u16));
    let mut stalls = 0;
    while rx.buffered() > 0 && stalls < 4 * (window + sent) {
        if let Some(p) = rx.poll_into(&mut samples) {
            if p.delivered {
                prop_assert_eq!(&samples, &payload(p.sequence, channels));
            }
            played.push((p.sequence, p.delivered));
            stalls = 0;
        } else {
            stalls += 1;
        }
    }
    prop_assert_eq!(played.len(), sent, "each sequence played exactly once");
    for (i, &(seq, _)) in played.iter().enumerate() {
        prop_assert_eq!(
            seq,
            start.wrapping_add(i as u16),
            "strictly in-order playout"
        );
    }
    let stats = rx.stats();
    prop_assert_eq!(stats.delivered + stats.lost, sent as u64);
    prop_assert_eq!(stats.recovered + stats.lost, stats.gaps_detected);
    // A frame the wire carried intact (action 3 or 4) is never lost by
    // the receiver itself, so losses are bounded by mangled sends.
    let mangled = actions.iter().filter(|&&a| a < 3).count() as u64;
    prop_assert!(
        stats.lost <= mangled,
        "lost {} > mangled {}",
        stats.lost,
        mangled
    );
    Ok(())
}

proptest! {
    #[test]
    fn receiver_orders_and_accounts_under_arbitrary_mangling(
        start in 0_u16..=u16::MAX,
        window in 1_usize..24,
        channels in 1_usize..24,
        seed in 0_u64..u64::MAX,
        arq_on in prop::sample::select(vec![true, false]),
        actions in prop::collection::vec(0_u8..8, 2..120),
    ) {
        check_receiver(start, window, channels, &actions, seed, arq_on)?;
    }

    #[test]
    fn receiver_never_panics_on_raw_garbage(
        garbage in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..40),
        window in 1_usize..16,
    ) {
        let mut rx = ArqReceiver::new(ArqConfig::selective_repeat(window)).unwrap();
        rx.prime(0);
        let mut samples = Vec::new();
        let mut naks = Vec::new();
        for blob in &garbage {
            rx.push_wire(blob);
            rx.poll_naks(&mut naks);
            rx.poll_into(&mut samples);
        }
        // Garbage never produces a *delivered* frame with a bogus
        // payload: anything delivered must have passed the CRC, and no
        // valid packet other than sequence 0's neighbourhood exists.
        prop_assert!(rx.stats().delivered <= garbage.len() as u64);
    }

    #[test]
    fn faulted_link_plays_out_in_order_with_exact_payloads(
        seed in 0_u64..u64::MAX,
        start in 0_u16..=u16::MAX,
        window in 2_usize..24,
        rate in 0.0_f64..0.25,
        frames in 50_usize..200,
    ) {
        let channels = 8;
        let plan = FaultPlan::new(FaultConfig::wire_composite(rate), seed).unwrap();
        let mut link = ArqLink::new(
            ArqConfig::selective_repeat(window),
            Some(WireFaultInjector::new(plan)),
            2,
        )
        .unwrap();
        let mut samples = Vec::new();
        let mut played = Vec::new();
        for i in 0..frames {
            let seq = start.wrapping_add(i as u16);
            if let Some(p) = link.step_into(&wire(seq, channels), &mut samples).unwrap() {
                if p.delivered {
                    prop_assert_eq!(&samples, &payload(p.sequence, channels));
                }
                played.push(p.sequence);
            }
        }
        while let Some(p) = link.finish_into(&mut samples) {
            if p.delivered {
                prop_assert_eq!(&samples, &payload(p.sequence, channels));
            }
            played.push(p.sequence);
        }
        prop_assert_eq!(played.len(), frames);
        for (i, &seq) in played.iter().enumerate() {
            prop_assert_eq!(seq, start.wrapping_add(i as u16));
        }
        let stats = link.stats();
        prop_assert_eq!(stats.delivered + stats.lost, frames as u64);
        prop_assert_eq!(stats.recovered + stats.lost, stats.gaps_detected);
    }
}
