//! Shannon-limit checks for the implant uplink (Section 5.1 cites
//! Shannon's limit as the reason constant-E_b scaling breaks down).
//!
//! For a band-limited AWGN channel, `C = B·log2(1 + SNR)`; in energy
//! terms, reliable communication at spectral efficiency `r = R/B`
//! bits/s/Hz requires at least
//!
//! ```text
//! Eb/N0 ≥ (2^r − 1) / r
//! ```
//!
//! which approaches ln 2 (−1.59 dB) as `r → 0` and grows exponentially
//! as modulation packs more bits per symbol — the fundamental version of
//! the Fig. 7 efficiency wall.

use mindful_core::units::{DataRate, Frequency};

use crate::error::{Result, RfError};
use crate::modulation::Modulation;

/// The ultimate Shannon limit on Eb/N0 (−1.59 dB) as spectral efficiency
/// approaches zero.
pub const ULTIMATE_EBN0: f64 = core::f64::consts::LN_2;

/// Channel capacity `C = B·log2(1 + SNR)` for a bandwidth and linear
/// SNR.
///
/// # Errors
///
/// Returns [`RfError::InvalidParameter`] for non-positive bandwidth or
/// negative SNR.
pub fn capacity(bandwidth: Frequency, snr: f64) -> Result<DataRate> {
    if bandwidth.hertz() <= 0.0 || !bandwidth.hertz().is_finite() {
        return Err(RfError::InvalidParameter {
            name: "bandwidth (Hz)",
            value: bandwidth.hertz(),
        });
    }
    if !(snr >= 0.0 && snr.is_finite()) {
        return Err(RfError::InvalidParameter {
            name: "snr",
            value: snr,
        });
    }
    Ok(DataRate::from_bits_per_second(
        bandwidth.hertz() * (1.0 + snr).log2(),
    ))
}

/// The minimum Eb/N0 (linear) for reliable communication at spectral
/// efficiency `r` bits/s/Hz: `(2^r − 1)/r`.
///
/// # Errors
///
/// Returns [`RfError::InvalidParameter`] for a non-positive `r`.
pub fn min_ebn0_at_spectral_efficiency(r: f64) -> Result<f64> {
    if !(r > 0.0 && r.is_finite()) {
        return Err(RfError::InvalidParameter {
            name: "spectral efficiency",
            value: r,
        });
    }
    Ok((2.0_f64.powf(r) - 1.0) / r)
}

/// How far a modulation's required Eb/N0 at a target BER sits above the
/// Shannon minimum for its spectral efficiency, in dB — the coding gap
/// a real implant transceiver leaves on the table.
///
/// # Errors
///
/// Propagates BER-inversion errors.
pub fn gap_to_shannon_db(modulation: Modulation, target_ber: f64) -> Result<f64> {
    let required = modulation.required_ebn0(target_ber)?;
    let minimum = min_ebn0_at_spectral_efficiency(modulation.spectral_efficiency())?;
    Ok(crate::qfunc::to_db(required / minimum))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_known_point() {
        // 100 MHz at SNR 3 (linear): C = 100e6 · log2(4) = 200 Mbps.
        let c = capacity(Frequency::from_megahertz(100.0), 3.0).unwrap();
        assert!((c.megabits_per_second() - 200.0).abs() < 1e-9);
        // Zero SNR → zero capacity.
        let c = capacity(Frequency::from_megahertz(100.0), 0.0).unwrap();
        assert_eq!(c.bits_per_second(), 0.0);
    }

    #[test]
    fn min_ebn0_approaches_ln2_at_low_rate() {
        let low = min_ebn0_at_spectral_efficiency(1e-6).unwrap();
        assert!((low - ULTIMATE_EBN0).abs() < 1e-3);
    }

    #[test]
    fn min_ebn0_known_points() {
        // r = 1: (2−1)/1 = 1 (0 dB). r = 2: 3/2. r = 4: 15/4.
        assert!((min_ebn0_at_spectral_efficiency(1.0).unwrap() - 1.0).abs() < 1e-12);
        assert!((min_ebn0_at_spectral_efficiency(2.0).unwrap() - 1.5).abs() < 1e-12);
        assert!((min_ebn0_at_spectral_efficiency(4.0).unwrap() - 3.75).abs() < 1e-12);
    }

    #[test]
    fn min_ebn0_grows_with_spectral_efficiency() {
        let mut prev = min_ebn0_at_spectral_efficiency(0.5).unwrap();
        for r in [1.0, 2.0, 4.0, 6.0, 8.0, 10.0] {
            let cur = min_ebn0_at_spectral_efficiency(r).unwrap();
            assert!(cur > prev);
            prev = cur;
        }
    }

    #[test]
    fn every_modulation_sits_above_shannon() {
        for k in 1..=10 {
            let m = Modulation::qam(k).unwrap();
            let gap = gap_to_shannon_db(m, 1e-6).unwrap();
            assert!(gap > 0.0, "{m} must be above the Shannon bound");
            assert!(gap < 15.0, "{m} gap {gap:.1} dB is implausibly large");
        }
        let gap = gap_to_shannon_db(Modulation::Ook, 1e-6).unwrap();
        assert!(gap > 0.0);
    }

    #[test]
    fn uncoded_gap_shrinks_at_looser_ber() {
        let strict = gap_to_shannon_db(Modulation::qam(4).unwrap(), 1e-9).unwrap();
        let loose = gap_to_shannon_db(Modulation::qam(4).unwrap(), 1e-3).unwrap();
        assert!(loose < strict);
    }

    #[test]
    fn validation() {
        assert!(capacity(Frequency::ZERO, 1.0).is_err());
        assert!(capacity(Frequency::from_megahertz(1.0), -1.0).is_err());
        assert!(min_ebn0_at_spectral_efficiency(0.0).is_err());
        assert!(min_ebn0_at_spectral_efficiency(f64::NAN).is_err());
    }

    #[test]
    fn capacity_explains_the_qam_wall() {
        // The OOK design point (82 Mbps in 100 MHz) is far from capacity
        // at its SNR; packing 8 bits/symbol into the same band requires
        // exponentially more SNR — the Fig. 7 wall in its pure form.
        let band = Frequency::from_megahertz(100.0);
        let snr_for_1bps = 2.0_f64.powf(1.0) - 1.0;
        let snr_for_8bps = 2.0_f64.powf(8.0) - 1.0;
        assert!(snr_for_8bps / snr_for_1bps > 200.0);
        let c1 = capacity(band, snr_for_1bps).unwrap();
        let c8 = capacity(band, snr_for_8bps).unwrap();
        assert!((c8 / c1 - 8.0).abs() < 1e-9);
    }
}
