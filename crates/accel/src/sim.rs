//! Cycle-level functional simulation of the weight-stationary PE array.
//!
//! The analytic model in [`crate::alloc`] counts cycles; this simulator
//! actually executes a dense layer on the modelled hardware — `MAChw`
//! PEs, each with an 8-bit MAC (32-bit accumulator), a ReLU, and a local
//! weight ROM — cycle by cycle, with time multiplexing of the `#MACop`
//! sequences over the PEs. Tests verify the simulated datapath computes
//! exactly the reference matrix arithmetic and that the measured cycle
//! count matches the closed form `MACseq · ⌈#MACop / MAChw⌉` used by the
//! allocator.

use mindful_core::units::Energy;

use crate::error::{AccelError, Result};
use crate::tech::TechnologyNode;
use crate::workload::MacWorkload;

/// An 8-bit weight-stationary layer executed by the simulator.
///
/// Computes `out[j] = relu(Σ_k w[j][k] · x[k] + b[j])` with `i8` inputs
/// and weights and an `i32` accumulator, matching the synthesized 8-bit
/// datatype of the Fig. 9 study.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseLayer {
    inputs: usize,
    outputs: usize,
    /// Row-major `[outputs × inputs]` weights.
    weights: Vec<i8>,
    bias: Vec<i32>,
    relu: bool,
}

impl DenseLayer {
    /// Creates a dense layer from row-major weights and a bias vector.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::ShapeMismatch`] when `weights.len() !=
    /// inputs · outputs` or `bias.len() != outputs`, and
    /// [`AccelError::EmptyWorkload`] for zero dimensions.
    pub fn new(
        inputs: usize,
        outputs: usize,
        weights: Vec<i8>,
        bias: Vec<i32>,
        relu: bool,
    ) -> Result<Self> {
        if inputs == 0 || outputs == 0 {
            return Err(AccelError::EmptyWorkload);
        }
        if weights.len() != inputs * outputs {
            return Err(AccelError::ShapeMismatch {
                expected: inputs * outputs,
                actual: weights.len(),
            });
        }
        if bias.len() != outputs {
            return Err(AccelError::ShapeMismatch {
                expected: outputs,
                actual: bias.len(),
            });
        }
        Ok(Self {
            inputs,
            outputs,
            weights,
            bias,
            relu,
        })
    }

    /// Input width.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Output width.
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// The layer's MAC workload (`#MACop = outputs`, `MACseq = inputs`).
    ///
    /// # Errors
    ///
    /// Never fails for a constructed layer; kept fallible for API
    /// uniformity with [`MacWorkload::new`].
    pub fn workload(&self) -> Result<MacWorkload> {
        MacWorkload::dense(self.inputs as u64, self.outputs as u64)
    }

    /// Reference (non-simulated) computation of the layer.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::ShapeMismatch`] when `x` has the wrong
    /// width.
    pub fn reference(&self, x: &[i8]) -> Result<Vec<i32>> {
        if x.len() != self.inputs {
            return Err(AccelError::ShapeMismatch {
                expected: self.inputs,
                actual: x.len(),
            });
        }
        Ok((0..self.outputs)
            .map(|j| {
                let row = &self.weights[j * self.inputs..(j + 1) * self.inputs];
                let mut acc = self.bias[j];
                for (w, v) in row.iter().zip(x) {
                    acc += i32::from(*w) * i32::from(*v);
                }
                if self.relu {
                    acc.max(0)
                } else {
                    acc
                }
            })
            .collect())
    }
}

/// The result of one simulated layer execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// The computed (post-ReLU) outputs.
    pub outputs: Vec<i32>,
    /// Cycles spent, counting one MAC step per cycle per active PE.
    pub cycles: u64,
    /// Total MAC operations actually issued (excludes idle PE slots).
    pub macs_issued: u64,
    /// Dynamic energy consumed by issued MAC steps at the node's per-step
    /// energy (`P_MAC · t_MAC`).
    pub energy: Energy,
}

/// Simulates a dense layer on a PE array of `mac_hw` units, cycle by
/// cycle.
///
/// Each *round* assigns up to `mac_hw` output neurons to PEs; the round
/// then runs `MACseq` cycles, every active PE consuming the broadcast
/// input element of that cycle and its ROM weight. After the last cycle
/// of a round, active PEs apply ReLU and write their staging register.
///
/// # Errors
///
/// Returns [`AccelError::InvalidParameter`] for `mac_hw == 0` and
/// [`AccelError::ShapeMismatch`] for a wrong input width.
pub fn simulate_dense(
    layer: &DenseLayer,
    x: &[i8],
    mac_hw: u64,
    node: TechnologyNode,
) -> Result<SimOutcome> {
    if mac_hw == 0 {
        return Err(AccelError::InvalidParameter {
            name: "MAChw",
            value: 0.0,
        });
    }
    if x.len() != layer.inputs {
        return Err(AccelError::ShapeMismatch {
            expected: layer.inputs,
            actual: x.len(),
        });
    }
    let mac_hw = usize::try_from(mac_hw)
        .unwrap_or(usize::MAX)
        .min(layer.outputs);

    let mut outputs = vec![0_i32; layer.outputs];
    let mut cycles: u64 = 0;
    let mut macs_issued: u64 = 0;

    // Per-PE accumulator registers.
    let mut acc = vec![0_i32; mac_hw];
    for round_start in (0..layer.outputs).step_by(mac_hw) {
        let active = (layer.outputs - round_start).min(mac_hw);
        // Load bias into accumulators (the ROM's first entry in the real
        // design; free here, like the synthesis study's register init).
        for (pe, a) in acc.iter_mut().enumerate().take(active) {
            *a = layer.bias[round_start + pe];
        }
        // MACseq cycles: the dataflow FSM broadcasts x[k]; each active PE
        // multiplies by its stationary weight and accumulates.
        for (k, &xv) in x.iter().enumerate() {
            for (pe, a) in acc.iter_mut().enumerate().take(active) {
                let j = round_start + pe;
                let w = layer.weights[j * layer.inputs + k];
                *a += i32::from(w) * i32::from(xv);
                macs_issued += 1;
            }
            cycles += 1;
        }
        // Writeback through ReLU.
        for (pe, a) in acc.iter().enumerate().take(active) {
            let v = if layer.relu { (*a).max(0) } else { *a };
            outputs[round_start + pe] = v;
        }
    }

    let step_energy = node.mac_power() * node.mac_latency();
    Ok(SimOutcome {
        outputs,
        cycles,
        macs_issued,
        energy: step_energy * macs_issued as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(inputs: usize, outputs: usize, relu: bool, seed: i32) -> DenseLayer {
        // Deterministic pseudo-random small weights.
        let weights: Vec<i8> = (0..inputs * outputs)
            .map(|i| (((i as i32).wrapping_mul(31).wrapping_add(seed) % 23) - 11) as i8)
            .collect();
        let bias: Vec<i32> = (0..outputs).map(|j| (j as i32 % 7) - 3).collect();
        DenseLayer::new(inputs, outputs, weights, bias, relu).unwrap()
    }

    fn input(len: usize, seed: i32) -> Vec<i8> {
        (0..len)
            .map(|i| (((i as i32).wrapping_mul(17).wrapping_add(seed) % 19) - 9) as i8)
            .collect()
    }

    #[test]
    fn simulation_matches_reference_exactly() {
        let l = layer(37, 23, true, 5);
        let x = input(37, 2);
        let expected = l.reference(&x).unwrap();
        for hw in [1, 2, 3, 8, 23, 64] {
            let sim = simulate_dense(&l, &x, hw, TechnologyNode::NANGATE_45NM).unwrap();
            assert_eq!(sim.outputs, expected, "MAChw = {hw}");
        }
    }

    #[test]
    fn simulation_without_relu_can_be_negative() {
        let l = layer(8, 4, false, 11);
        let x = input(8, 3);
        let sim = simulate_dense(&l, &x, 2, TechnologyNode::NANGATE_45NM).unwrap();
        assert_eq!(sim.outputs, l.reference(&x).unwrap());
        assert!(
            sim.outputs.iter().any(|&v| v < 0),
            "chosen seed should produce a negative output: {:?}",
            sim.outputs
        );
    }

    #[test]
    fn cycle_count_matches_closed_form() {
        let l = layer(64, 30, true, 1);
        let x = input(64, 1);
        for hw in [1_u64, 3, 7, 16, 30] {
            let sim = simulate_dense(&l, &x, hw, TechnologyNode::NANGATE_45NM).unwrap();
            let expected = 64 * (30_u64.div_ceil(hw));
            assert_eq!(sim.cycles, expected, "MAChw = {hw}");
        }
    }

    #[test]
    fn macs_issued_equals_total_work() {
        // Regardless of parallelism, the same number of MACs is issued.
        let l = layer(40, 12, true, 9);
        let x = input(40, 4);
        for hw in [1, 5, 12] {
            let sim = simulate_dense(&l, &x, hw, TechnologyNode::NANGATE_45NM).unwrap();
            assert_eq!(sim.macs_issued, 40 * 12);
        }
    }

    #[test]
    fn energy_is_macs_times_step_energy() {
        let node = TechnologyNode::NANGATE_45NM;
        let l = layer(16, 8, true, 7);
        let x = input(16, 7);
        let sim = simulate_dense(&l, &x, 4, node).unwrap();
        // 0.05 mW × 2 ns = 0.1 pJ per step; 128 steps = 12.8 pJ.
        assert!((sim.energy.picojoules() - 12.8).abs() < 1e-9);
    }

    #[test]
    fn oversized_mac_hw_is_clamped() {
        let l = layer(10, 4, true, 3);
        let x = input(10, 8);
        let few = simulate_dense(&l, &x, 4, TechnologyNode::NANGATE_45NM).unwrap();
        let many = simulate_dense(&l, &x, 1000, TechnologyNode::NANGATE_45NM).unwrap();
        assert_eq!(few.outputs, many.outputs);
        assert_eq!(few.cycles, many.cycles);
    }

    #[test]
    fn shape_errors_are_reported() {
        let l = layer(10, 4, true, 3);
        assert!(simulate_dense(&l, &input(9, 0), 2, TechnologyNode::NANGATE_45NM).is_err());
        assert!(simulate_dense(&l, &input(10, 0), 0, TechnologyNode::NANGATE_45NM).is_err());
        assert!(l.reference(&input(11, 0)).is_err());
        assert!(DenseLayer::new(4, 2, vec![0; 7], vec![0; 2], true).is_err());
        assert!(DenseLayer::new(4, 2, vec![0; 8], vec![0; 3], true).is_err());
        assert!(DenseLayer::new(0, 2, vec![], vec![0; 2], true).is_err());
    }

    #[test]
    fn workload_matches_layer_shape() {
        let l = layer(128, 40, true, 0);
        let w = l.workload().unwrap();
        assert_eq!(w.ops(), 40);
        assert_eq!(w.seq(), 128);
    }

    #[test]
    fn simulated_latency_matches_allocator_model() {
        use crate::alloc::allocate_non_pipelined;
        use crate::workload::NetworkWorkload;
        let l = layer(100, 50, true, 13);
        let x = input(100, 13);
        let net = NetworkWorkload::new(vec![l.workload().unwrap()]).unwrap();
        let node = TechnologyNode::NANGATE_45NM;
        let deadline = mindful_core::units::TimeSpan::from_microseconds(60.0);
        let alloc = allocate_non_pipelined(&net, node, deadline).unwrap();
        let sim = simulate_dense(&l, &x, alloc.total_mac_hw(), node).unwrap();
        let sim_latency = node.mac_latency() * sim.cycles as f64;
        assert!(
            (sim_latency - alloc.latency()).abs().seconds() < 1e-12,
            "simulated {} vs allocated {}",
            sim_latency.microseconds(),
            alloc.latency().microseconds()
        );
        assert!(sim_latency <= deadline);
    }
}
