//! Layer compute kernels: naive oracles, cache-blocked fast paths, and
//! runtime-dispatched SIMD.
//!
//! Three implementations of the hot layer primitives live side by side:
//!
//! * The **naive** kernels (`*_naive`) are the original textbook loops
//!   — one dot product per dense output, per-MAC padding checks in the
//!   convolution. They allocate their outputs and are kept as
//!   property-test oracles and benchmark baselines, mirroring the
//!   skyline/naive pairing of `mindful_core::explore`.
//! * The **blocked scalar** kernels (`*_scalar`) write into
//!   caller-provided slices (no allocation) and restructure the loops
//!   for locality and vectorization:
//!   - [`dense_into_scalar`] uses a *transposed* weight layout
//!     (`[input × output]`) with the accumulation loop unrolled four
//!     inputs at a time, so the inner loop is a contiguous,
//!     register-tiled AXPY over the output vector instead of a
//!     horizontal reduction — the compiler vectorizes it, and each
//!     input value is loaded once per four rows of weights.
//!   - [`conv1d_into_scalar`] hoists the zero-padding bounds out of the
//!     MAC loop entirely: for each kernel tap it computes the valid
//!     destination/source overlap once and runs a check-free AXPY over
//!     the interior, so edges cost a range intersection rather than a
//!     branch per MAC.
//! * The **SIMD** paths ([`crate::simd`]): explicit AVX2/NEON
//!   implementations of the dense AXPY and the convolution interior,
//!   selected once per process by cached runtime feature detection
//!   (`MINDFUL_SIMD=0` forces scalar). They apply the same per-output
//!   operation order as the blocked scalar kernels — no FMA — so their
//!   results are **bit-identical**, not merely close
//!   (`tests/simd_kernels.rs`).
//!
//! [`dense_into`] and [`conv1d_into`] are the dispatching entry points
//! [`crate::infer::Network`] runs. Naive vs. blocked agreement is
//! summation-order-limited; the property tests in
//! `tests/blocked_kernels.rs` pin it to 1e-4 relative tolerance across
//! randomized shapes.

use crate::simd::{self, SimdLevel};

/// Transposes a row-major dense weight matrix (`[output × input]`) into
/// the `[input × output]` layout the blocked kernel consumes.
///
/// # Panics
///
/// Panics if `weights.len() != inputs * outputs`.
#[must_use]
pub fn transpose_dense(weights: &[f32], inputs: usize, outputs: usize) -> Vec<f32> {
    assert_eq!(weights.len(), inputs * outputs, "dense weight count");
    let mut t = vec![0.0_f32; weights.len()];
    for j in 0..outputs {
        for k in 0..inputs {
            t[k * outputs + j] = weights[j * inputs + k];
        }
    }
    t
}

/// Naive dense layer: one dot product per output (the oracle).
#[must_use]
pub fn dense_naive(input: &[f32], weights: &[f32], bias: &[f32], outputs: usize) -> Vec<f32> {
    let inputs = input.len();
    (0..outputs)
        .map(|j| {
            let row = &weights[j * inputs..(j + 1) * inputs];
            bias[j] + row.iter().zip(input).map(|(w, x)| w * x).sum::<f32>()
        })
        .collect()
}

/// Dense layer entry point: dispatches to the SIMD path resolved at
/// startup ([`crate::simd::level`]), falling back to the blocked
/// scalar kernel. All paths produce bit-identical results.
///
/// `weights_t` must be the [`transpose_dense`] layout; `out.len()`
/// fixes the output width and `input.len()` the input width.
///
/// # Panics
///
/// Panics if `weights_t.len() != input.len() * out.len()` or
/// `bias.len() != out.len()`.
pub fn dense_into(input: &[f32], weights_t: &[f32], bias: &[f32], out: &mut [f32]) {
    dense_into_at(simd::level(), input, weights_t, bias, out);
}

/// [`dense_into`] at an explicit dispatch level — the hook the
/// equivalence tests and benches use to pin SIMD against scalar on the
/// same host.
///
/// # Panics
///
/// Same as [`dense_into`].
pub fn dense_into_at(
    level: SimdLevel,
    input: &[f32],
    weights_t: &[f32],
    bias: &[f32],
    out: &mut [f32],
) {
    assert_eq!(
        weights_t.len(),
        input.len() * out.len(),
        "dense weight count"
    );
    assert_eq!(bias.len(), out.len(), "dense bias count");
    if simd::dense_into_simd(level, input, weights_t, bias, out) {
        return;
    }
    dense_into_scalar(input, weights_t, bias, out);
}

/// Blocked scalar dense layer: transposed weights, register-tiled AXPY.
/// The always-compiled fallback and bit-level oracle for the SIMD
/// paths.
///
/// # Panics
///
/// Same as [`dense_into`].
pub fn dense_into_scalar(input: &[f32], weights_t: &[f32], bias: &[f32], out: &mut [f32]) {
    let inputs = input.len();
    let outputs = out.len();
    assert_eq!(weights_t.len(), inputs * outputs, "dense weight count");
    assert_eq!(bias.len(), outputs, "dense bias count");
    out.copy_from_slice(bias);
    let mut k = 0;
    // Four input rows per pass: each output element is loaded and
    // stored once per four accumulated inputs, and the inner zip is a
    // contiguous multiply-add the compiler vectorizes.
    while k + 4 <= inputs {
        let (x0, x1, x2, x3) = (input[k], input[k + 1], input[k + 2], input[k + 3]);
        let r0 = &weights_t[k * outputs..(k + 1) * outputs];
        let r1 = &weights_t[(k + 1) * outputs..(k + 2) * outputs];
        let r2 = &weights_t[(k + 2) * outputs..(k + 3) * outputs];
        let r3 = &weights_t[(k + 3) * outputs..(k + 4) * outputs];
        for ((((o, &w0), &w1), &w2), &w3) in out.iter_mut().zip(r0).zip(r1).zip(r2).zip(r3) {
            *o += x0 * w0 + x1 * w1 + x2 * w2 + x3 * w3;
        }
        k += 4;
    }
    while k < inputs {
        let x = input[k];
        let row = &weights_t[k * outputs..(k + 1) * outputs];
        for (o, &w) in out.iter_mut().zip(row) {
            *o += x * w;
        }
        k += 1;
    }
}

/// Naive same-padded 1-D convolution, channel-major layout (the
/// oracle): bounds are re-checked on every MAC.
#[must_use]
pub fn conv1d_naive(
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    positions: usize,
) -> Vec<f32> {
    let half = kernel / 2;
    let mut out = vec![0.0_f32; out_channels * positions];
    for oc in 0..out_channels {
        for p in 0..positions {
            let mut acc = bias[oc];
            for ic in 0..in_channels {
                for j in 0..kernel {
                    let src = p + j;
                    if src < half || src - half >= positions {
                        continue;
                    }
                    let w = weights[(oc * in_channels + ic) * kernel + j];
                    acc += w * input[ic * positions + (src - half)];
                }
            }
            out[oc * positions + p] = acc;
        }
    }
    out
}

/// Same-padded 1-D convolution entry point: dispatches the interior
/// AXPY to the SIMD path resolved at startup, falling back to the
/// blocked scalar loop. All paths produce bit-identical results.
///
/// # Panics
///
/// Panics if the slice lengths disagree with the given shape.
#[allow(clippy::too_many_arguments)] // the shape parameters mirror conv1d_naive
pub fn conv1d_into(
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    positions: usize,
    out: &mut [f32],
) {
    conv1d_into_at(
        simd::level(),
        input,
        weights,
        bias,
        in_channels,
        out_channels,
        kernel,
        positions,
        out,
    );
}

/// [`conv1d_into`] at an explicit dispatch level — the hook the
/// equivalence tests and benches use to pin SIMD against scalar on the
/// same host.
///
/// # Panics
///
/// Same as [`conv1d_into`].
#[allow(clippy::too_many_arguments)] // the shape parameters mirror conv1d_naive
pub fn conv1d_into_at(
    level: SimdLevel,
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    positions: usize,
    out: &mut [f32],
) {
    conv1d_into_impl(
        level,
        input,
        weights,
        bias,
        in_channels,
        out_channels,
        kernel,
        positions,
        out,
    );
}

/// Blocked scalar same-padded 1-D convolution with the padding checks
/// hoisted out of the MAC loop. The always-compiled fallback and
/// bit-level oracle for the SIMD paths.
///
/// For each `(output channel, input channel, tap)` triple the valid
/// destination range is intersected once, then the tap is applied as a
/// check-free AXPY over the contiguous interior. Channel-major layout,
/// `out.len() == out_channels * positions`.
///
/// # Panics
///
/// Same as [`conv1d_into`].
#[allow(clippy::too_many_arguments)] // the shape parameters mirror conv1d_naive
pub fn conv1d_into_scalar(
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    positions: usize,
    out: &mut [f32],
) {
    conv1d_into_impl(
        SimdLevel::Scalar,
        input,
        weights,
        bias,
        in_channels,
        out_channels,
        kernel,
        positions,
        out,
    );
}

#[allow(clippy::too_many_arguments)] // the shape parameters mirror conv1d_naive
fn conv1d_into_impl(
    level: SimdLevel,
    input: &[f32],
    weights: &[f32],
    bias: &[f32],
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    positions: usize,
    out: &mut [f32],
) {
    assert_eq!(input.len(), in_channels * positions, "conv input size");
    assert_eq!(
        weights.len(),
        out_channels * in_channels * kernel,
        "conv weight count"
    );
    assert_eq!(bias.len(), out_channels, "conv bias count");
    assert_eq!(out.len(), out_channels * positions, "conv output size");
    let half = kernel / 2;
    for oc in 0..out_channels {
        let orow = &mut out[oc * positions..(oc + 1) * positions];
        orow.fill(bias[oc]);
        for ic in 0..in_channels {
            let xrow = &input[ic * positions..(ic + 1) * positions];
            let wrow = &weights[(oc * in_channels + ic) * kernel..][..kernel];
            for (j, &w) in wrow.iter().enumerate() {
                // Destination p reads source p + j - half; intersect
                // both ranges once instead of branching per MAC.
                let shift = j as isize - half as isize;
                let dst0 = usize::try_from(-shift).unwrap_or(0);
                let dst1 = usize::try_from(positions as isize - shift.max(0))
                    .unwrap_or(0)
                    .min(positions);
                if dst1 <= dst0 {
                    continue;
                }
                let src0 = usize::try_from(dst0 as isize + shift)
                    .expect("dst0 clamps the shift to a valid source start");
                let len = dst1 - dst0;
                let (dst, src) = (&mut orow[dst0..dst1], &xrow[src0..src0 + len]);
                if !simd::axpy_simd(level, dst, src, w) {
                    for (o, &x) in dst.iter_mut().zip(src) {
                        *o += w * x;
                    }
                }
            }
        }
    }
}

/// Widening i8 × i8 → i32 dot product at an explicit dispatch level.
/// Integer arithmetic is exact, so every level returns the same value
/// as [`dot_i8_scalar`].
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn dot_i8_at(level: SimdLevel, x: &[i8], w: &[i8]) -> i32 {
    assert_eq!(x.len(), w.len(), "i8 dot operand lengths");
    simd::dot_i8_simd(level, x, w).unwrap_or_else(|| dot_i8_scalar(x, w))
}

/// Scalar widening i8 dot product — the fallback and exactness oracle
/// for the SIMD paths.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn dot_i8_scalar(x: &[i8], w: &[i8]) -> i32 {
    assert_eq!(x.len(), w.len(), "i8 dot operand lengths");
    x.iter()
        .zip(w)
        .map(|(&a, &b)| i32::from(a) * i32::from(b))
        .sum()
}

/// Quantized dense matvec: row-major i8 weights, i32 bias and
/// accumulators — `out[j] = bias[j] + Σ_k x[k] · w[j·n + k]` — the
/// accelerator's 8-bit datapath shape. Dispatches each row's dot
/// product to the SIMD path resolved at startup.
///
/// # Panics
///
/// Panics if `weights.len() != x.len() * out.len()` or
/// `bias.len() != out.len()`.
pub fn matvec_i8_into(x: &[i8], weights: &[i8], bias: &[i32], out: &mut [i32]) {
    matvec_i8_into_at(simd::level(), x, weights, bias, out);
}

/// [`matvec_i8_into`] at an explicit dispatch level.
///
/// # Panics
///
/// Same as [`matvec_i8_into`].
pub fn matvec_i8_into_at(
    level: SimdLevel,
    x: &[i8],
    weights: &[i8],
    bias: &[i32],
    out: &mut [i32],
) {
    let inputs = x.len();
    assert_eq!(weights.len(), inputs * out.len(), "i8 weight count");
    assert_eq!(bias.len(), out.len(), "i8 bias count");
    for (j, (o, &b)) in out.iter_mut().zip(bias).enumerate() {
        let row = &weights[j * inputs..(j + 1) * inputs];
        *o = b + dot_i8_at(level, x, row);
    }
}

/// Average pooling over the position axis into a caller-provided slice.
///
/// # Panics
///
/// Panics if the slice lengths disagree with the given shape or
/// `out_positions` does not divide `in_positions`.
pub fn pool1d_into(
    input: &[f32],
    channels: usize,
    in_positions: usize,
    out_positions: usize,
    out: &mut [f32],
) {
    assert!(
        out_positions > 0 && in_positions.is_multiple_of(out_positions),
        "pool window must divide the input positions"
    );
    assert_eq!(input.len(), channels * in_positions, "pool input size");
    assert_eq!(out.len(), channels * out_positions, "pool output size");
    let window = in_positions / out_positions;
    let inv = 1.0 / window as f32;
    for c in 0..channels {
        for q in 0..out_positions {
            let start = c * in_positions + q * window;
            let sum: f32 = input[start..start + window].iter().sum();
            out[c * out_positions + q] = sum * inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded(n: usize, seed: u64) -> Vec<f32> {
        // Small deterministic pseudo-random values in [-1, 1].
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                ((state >> 40) as f32 / (1_u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    fn close(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            let tol = 1e-4 * x.abs().max(y.abs()).max(1.0);
            assert!((x - y).abs() <= tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn transpose_round_trips() {
        let w = seeded(6 * 4, 1);
        let t = transpose_dense(&w, 6, 4);
        let back = transpose_dense(&t, 4, 6);
        assert_eq!(w, back);
    }

    #[test]
    fn dense_blocked_matches_naive() {
        for (inputs, outputs, seed) in
            [(1, 1, 2), (3, 5, 3), (16, 16, 4), (37, 41, 5), (128, 40, 6)]
        {
            let w = seeded(inputs * outputs, seed);
            let b = seeded(outputs, seed + 100);
            let x = seeded(inputs, seed + 200);
            let naive = dense_naive(&x, &w, &b, outputs);
            let wt = transpose_dense(&w, inputs, outputs);
            let mut blocked = vec![0.0; outputs];
            dense_into(&x, &wt, &b, &mut blocked);
            close(&naive, &blocked);
        }
    }

    #[test]
    fn conv_blocked_matches_naive() {
        for (ic, oc, k, p, seed) in [
            (1, 1, 1, 1, 7),
            (1, 1, 3, 4, 8),
            (2, 3, 3, 8, 9),
            (4, 4, 5, 6, 10),
            (3, 2, 7, 5, 11),
            (2, 2, 2, 8, 12), // even kernel
        ] {
            let w = seeded(ic * oc * k, seed);
            let b = seeded(oc, seed + 100);
            let x = seeded(ic * p, seed + 200);
            let naive = conv1d_naive(&x, &w, &b, ic, oc, k, p);
            let mut blocked = vec![0.0; oc * p];
            conv1d_into(&x, &w, &b, ic, oc, k, p, &mut blocked);
            close(&naive, &blocked);
        }
    }

    #[test]
    fn conv_identity_kernel_passes_through() {
        // A single-channel conv with kernel [0, 1, 0] is identity.
        let mut out = vec![0.0; 4];
        conv1d_into(
            &[1.0, 2.0, 3.0, 4.0],
            &[0.0, 1.0, 0.0],
            &[0.0],
            1,
            1,
            3,
            4,
            &mut out,
        );
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn conv_edges_are_zero_padded() {
        // Kernel [1, 0, 0] shifts left; the first output sees padding.
        let mut out = vec![0.0; 4];
        conv1d_into(
            &[1.0, 2.0, 3.0, 4.0],
            &[1.0, 0.0, 0.0],
            &[0.0],
            1,
            1,
            3,
            4,
            &mut out,
        );
        assert_eq!(out, vec![0.0, 1.0, 2.0, 3.0]);
        let naive = conv1d_naive(&[1.0, 2.0, 3.0, 4.0], &[1.0, 0.0, 0.0], &[0.0], 1, 1, 3, 4);
        assert_eq!(out, naive);
    }

    #[test]
    fn pooling_averages_windows() {
        let input = [1.0, 3.0, 5.0, 7.0, 10.0, 20.0, 30.0, 40.0];
        let mut out = vec![0.0; 4];
        pool1d_into(&input, 2, 4, 2, &mut out);
        assert_eq!(out, vec![2.0, 6.0, 15.0, 35.0]);
    }
}
