//! Kalman-filter intent decoder — the traditional linear baseline the
//! paper contrasts with DNNs (Section 2.3).
//!
//! State: the 2-D latent intent `v`. Dynamics: `v_t = a·v_{t−1} + w`,
//! `w ~ N(0, qI)`. Observation: per-channel activity
//! `z_t = b + H v_t + r`, with diagonal `R`. Calibration fits `b`, `H`,
//! and `R` by per-channel least squares against known intents, then the
//! filter runs in information form so only 2×2 inversions are needed —
//! exactly the economy that makes Kalman decoders attractive on
//! implants.

use crate::error::{DecodeError, Result};
use crate::linalg::{Mat2, Vec2};

/// Minimum calibration samples per channel parameter.
const MIN_SAMPLES: usize = 16;

/// A calibrated Kalman intent decoder.
#[derive(Debug, Clone)]
pub struct KalmanDecoder {
    /// Per-channel baseline.
    baseline: Vec<f64>,
    /// Per-channel observation row (h_x, h_y).
    gain: Vec<(f64, f64)>,
    /// Per-channel observation noise variance (floored).
    noise: Vec<f64>,
    /// State transition coefficient.
    a: f64,
    /// Process noise variance.
    q: f64,
    /// Filter state.
    state: Vec2,
    covariance: Mat2,
}

impl KalmanDecoder {
    /// Calibrates a decoder from observations (`rows × channels`) and the
    /// intents that produced them.
    ///
    /// # Errors
    ///
    /// * [`DecodeError::InsufficientData`] for fewer than 16 samples.
    /// * [`DecodeError::ShapeMismatch`] for ragged observation rows.
    /// * [`DecodeError::Singular`] when the intents do not excite both
    ///   dimensions.
    pub fn calibrate(observations: &[Vec<f64>], intents: &[(f64, f64)]) -> Result<Self> {
        let rows = observations.len();
        if rows < MIN_SAMPLES || intents.len() != rows {
            return Err(DecodeError::InsufficientData {
                provided: rows.min(intents.len()),
                required: MIN_SAMPLES,
            });
        }
        let channels = observations[0].len();
        if channels == 0 {
            return Err(DecodeError::ShapeMismatch {
                expected: 1,
                actual: 0,
            });
        }
        for row in observations {
            if row.len() != channels {
                return Err(DecodeError::ShapeMismatch {
                    expected: channels,
                    actual: row.len(),
                });
            }
        }

        // Normal equations for z = b + hx·vx + hy·vy, shared across
        // channels: the 3×3 Gram matrix of [1, vx, vy].
        let n = rows as f64;
        let (mut sx, mut sy, mut sxx, mut sxy, mut syy) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for &(vx, vy) in intents {
            sx += vx;
            sy += vy;
            sxx += vx * vx;
            sxy += vx * vy;
            syy += vy * vy;
        }
        // Solve per channel via the explicit 3×3 inverse (Cramer).
        let g = [[n, sx, sy], [sx, sxx, sxy], [sy, sxy, syy]];
        let ginv = invert3(&g).ok_or(DecodeError::Singular)?;

        let mut baseline = vec![0.0; channels];
        let mut gain = vec![(0.0, 0.0); channels];
        let mut noise = vec![0.0; channels];
        for c in 0..channels {
            let (mut s0, mut s1, mut s2) = (0.0, 0.0, 0.0);
            for (row, &(vx, vy)) in observations.iter().zip(intents) {
                let z = row[c];
                s0 += z;
                s1 += z * vx;
                s2 += z * vy;
            }
            let b = ginv[0][0] * s0 + ginv[0][1] * s1 + ginv[0][2] * s2;
            let hx = ginv[1][0] * s0 + ginv[1][1] * s1 + ginv[1][2] * s2;
            let hy = ginv[2][0] * s0 + ginv[2][1] * s1 + ginv[2][2] * s2;
            baseline[c] = b;
            gain[c] = (hx, hy);
            let mut ss = 0.0;
            for (row, &(vx, vy)) in observations.iter().zip(intents) {
                let e = row[c] - (b + hx * vx + hy * vy);
                ss += e * e;
            }
            noise[c] = (ss / n).max(1e-9);
        }

        // Fit AR(1) dynamics on the intents.
        let (mut num, mut den) = (0.0, 0.0);
        for pair in intents.windows(2) {
            num += pair[0].0 * pair[1].0 + pair[0].1 * pair[1].1;
            den += pair[0].0 * pair[0].0 + pair[0].1 * pair[0].1;
        }
        let a = if den > 0.0 {
            (num / den).clamp(0.0, 1.0)
        } else {
            0.98
        };
        let mut q = 0.0;
        for pair in intents.windows(2) {
            let ex = pair[1].0 - a * pair[0].0;
            let ey = pair[1].1 - a * pair[0].1;
            q += ex * ex + ey * ey;
        }
        q = (q / (2.0 * (rows - 1) as f64)).max(1e-9);

        Ok(Self {
            baseline,
            gain,
            noise,
            a,
            q,
            state: Vec2::default(),
            covariance: Mat2::scalar(1.0),
        })
    }

    /// Calibrated channel count.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.baseline.len()
    }

    /// The fitted state-transition coefficient.
    #[must_use]
    pub fn transition(&self) -> f64 {
        self.a
    }

    /// Resets the filter state to the origin with unit covariance.
    pub fn reset(&mut self) {
        self.state = Vec2::default();
        self.covariance = Mat2::scalar(1.0);
    }

    /// Processes one observation frame and returns the decoded intent.
    ///
    /// Non-finite observations are rejected *before* any state update:
    /// the filter is stateful, and a single NaN channel — exactly what
    /// a faulty front end produces — would otherwise poison `state`
    /// and `covariance` irrecoverably with no error. After a
    /// [`DecodeError::NonFinite`] rejection the filter state is exactly
    /// what it was before the call, so decoding can simply continue
    /// (or [`KalmanDecoder::reset`] for a clean restart).
    ///
    /// # Errors
    ///
    /// * [`DecodeError::ShapeMismatch`] for a wrong frame width.
    /// * [`DecodeError::NonFinite`] for a NaN or infinite channel.
    /// * [`DecodeError::Singular`] if the covariance degenerates.
    pub fn step(&mut self, frame: &[f64]) -> Result<Vec2> {
        if frame.len() != self.channels() {
            return Err(DecodeError::ShapeMismatch {
                expected: self.channels(),
                actual: frame.len(),
            });
        }
        if let Some(channel) = frame.iter().position(|z| !z.is_finite()) {
            return Err(DecodeError::NonFinite { channel });
        }
        // Predict.
        let predicted = self.state * self.a;
        let p = Mat2::scalar(self.a * self.a)
            .mul_mat(self.covariance)
            .add_scalar(self.q);

        // Information-form update: P⁻¹ + Hᵀ R⁻¹ H is 2×2.
        let p_inv = p.inverse()?;
        let mut info = p_inv;
        let mut info_vec = p_inv.mul_vec(predicted);
        for ((&(hx, hy), &r), (&z, &b)) in self
            .gain
            .iter()
            .zip(&self.noise)
            .zip(frame.iter().zip(&self.baseline))
        {
            let w = 1.0 / r;
            info = info + Mat2::new(hx * hx * w, hx * hy * w, hx * hy * w, hy * hy * w);
            let innovation = z - b;
            info_vec = info_vec + Vec2::new(hx * w * innovation, hy * w * innovation);
        }
        self.covariance = info.inverse()?;
        self.state = self.covariance.mul_vec(info_vec);
        Ok(self.state)
    }

    /// Decodes a whole session, resetting first.
    ///
    /// # Errors
    ///
    /// Same as [`KalmanDecoder::step`].
    pub fn decode(&mut self, frames: &[Vec<f64>]) -> Result<Vec<Vec2>> {
        self.reset();
        frames.iter().map(|f| self.step(f)).collect()
    }
}

trait AddScalarDiag {
    fn add_scalar(self, s: f64) -> Self;
}

impl AddScalarDiag for Mat2 {
    fn add_scalar(self, s: f64) -> Self {
        Mat2::new(self.a + s, self.b, self.c, self.d + s)
    }
}

fn invert3(m: &[[f64; 3]; 3]) -> Option<[[f64; 3]; 3]> {
    let det = m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
        - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
        + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
    if det.abs() < 1e-12 || !det.is_finite() {
        return None;
    }
    let inv = |r1: usize, c1: usize, r2: usize, c2: usize| {
        (m[r1][c1] * m[r2][c2] - m[r1][c2] * m[r2][c1]) / det
    };
    Some([
        [inv(1, 1, 2, 2), inv(0, 2, 2, 1), inv(0, 1, 1, 2)],
        [inv(1, 2, 2, 0), inv(0, 0, 2, 2), inv(0, 2, 1, 0)],
        [inv(1, 0, 2, 1), inv(0, 1, 2, 0), inv(0, 0, 1, 1)],
    ])
}

/// Pearson correlation between decoded and true series.
#[must_use]
pub fn correlation(decoded: &[f64], truth: &[f64]) -> f64 {
    let n = decoded.len().min(truth.len()) as f64;
    if n < 2.0 {
        return 0.0;
    }
    let md = decoded.iter().sum::<f64>() / n;
    let mt = truth.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut dd = 0.0;
    let mut dt = 0.0;
    for (d, t) in decoded.iter().zip(truth) {
        num += (d - md) * (t - mt);
        dd += (d - md) * (d - md);
        dt += (t - mt) * (t - mt);
    }
    if dd <= 0.0 || dt <= 0.0 {
        0.0
    } else {
        num / (dd * dt).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Synthetic linear observations for a smooth intent trajectory.
    fn synthetic(
        channels: usize,
        steps: usize,
        noise: f64,
        seed: u64,
    ) -> (Vec<Vec<f64>>, Vec<(f64, f64)>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let gains: Vec<(f64, f64)> = (0..channels)
            .map(|_| {
                (
                    rng.random::<f64>() * 2.0 - 1.0,
                    rng.random::<f64>() * 2.0 - 1.0,
                )
            })
            .collect();
        let mut observations = Vec::with_capacity(steps);
        let mut intents = Vec::with_capacity(steps);
        for k in 0..steps {
            let t = k as f64 * 0.03;
            let (vx, vy) = (t.sin(), (1.7 * t).cos() * 0.7);
            intents.push((vx, vy));
            observations.push(
                gains
                    .iter()
                    .map(|&(gx, gy)| {
                        0.5 + gx * vx + gy * vy + noise * (rng.random::<f64>() * 2.0 - 1.0)
                    })
                    .collect(),
            );
        }
        (observations, intents)
    }

    #[test]
    fn recovers_a_linear_system() {
        let (obs, intents) = synthetic(24, 600, 0.2, 3);
        let mut decoder = KalmanDecoder::calibrate(&obs, &intents).unwrap();
        let decoded = decoder.decode(&obs).unwrap();
        let corr_x = correlation(
            &decoded.iter().map(|v| v.x).collect::<Vec<_>>(),
            &intents.iter().map(|i| i.0).collect::<Vec<_>>(),
        );
        let corr_y = correlation(
            &decoded.iter().map(|v| v.y).collect::<Vec<_>>(),
            &intents.iter().map(|i| i.1).collect::<Vec<_>>(),
        );
        assert!(corr_x > 0.95, "x correlation {corr_x}");
        assert!(corr_y > 0.95, "y correlation {corr_y}");
    }

    #[test]
    fn noisier_observations_decode_worse() {
        let (clean_obs, intents) = synthetic(16, 500, 0.05, 7);
        let (noisy_obs, _) = synthetic(16, 500, 2.5, 7);
        let mut clean = KalmanDecoder::calibrate(&clean_obs, &intents).unwrap();
        let mut noisy = KalmanDecoder::calibrate(&noisy_obs, &intents).unwrap();
        let cx = correlation(
            &clean
                .decode(&clean_obs)
                .unwrap()
                .iter()
                .map(|v| v.x)
                .collect::<Vec<_>>(),
            &intents.iter().map(|i| i.0).collect::<Vec<_>>(),
        );
        let nx = correlation(
            &noisy
                .decode(&noisy_obs)
                .unwrap()
                .iter()
                .map(|v| v.x)
                .collect::<Vec<_>>(),
            &intents.iter().map(|i| i.0).collect::<Vec<_>>(),
        );
        assert!(cx > nx, "clean {cx} vs noisy {nx}");
    }

    #[test]
    fn transition_tracks_trajectory_smoothness() {
        let (obs, intents) = synthetic(8, 400, 0.1, 5);
        let decoder = KalmanDecoder::calibrate(&obs, &intents).unwrap();
        // The figure-eight trajectory is smooth: a ≈ 1.
        assert!(decoder.transition() > 0.9, "a = {}", decoder.transition());
    }

    #[test]
    fn calibration_validates_input() {
        let (obs, intents) = synthetic(4, 500, 0.1, 1);
        assert!(matches!(
            KalmanDecoder::calibrate(&obs[..8], &intents[..8]),
            Err(DecodeError::InsufficientData { .. })
        ));
        let mut ragged = obs.clone();
        ragged[5] = vec![0.0; 3];
        assert!(matches!(
            KalmanDecoder::calibrate(&ragged, &intents),
            Err(DecodeError::ShapeMismatch { .. })
        ));
        // Constant intents cannot be fit (singular Gram matrix).
        let flat: Vec<(f64, f64)> = vec![(0.5, 0.5); obs.len()];
        assert!(KalmanDecoder::calibrate(&obs, &flat).is_err());
    }

    #[test]
    fn step_validates_width() {
        let (obs, intents) = synthetic(6, 100, 0.1, 2);
        let mut decoder = KalmanDecoder::calibrate(&obs, &intents).unwrap();
        assert!(decoder.step(&[0.0; 5]).is_err());
        assert!(decoder.step(&obs[0]).is_ok());
    }

    #[test]
    fn reset_clears_state() {
        let (obs, intents) = synthetic(6, 100, 0.1, 2);
        let mut decoder = KalmanDecoder::calibrate(&obs, &intents).unwrap();
        decoder.step(&obs[50]).unwrap();
        decoder.reset();
        let after_reset = decoder.step(&obs[50]).unwrap();
        decoder.reset();
        let again = decoder.step(&obs[50]).unwrap();
        assert_eq!(after_reset, again);
    }

    /// Regression for the missing finite-input guard: a NaN observation
    /// used to flow straight into the information-form update and leave
    /// `state`/`covariance` permanently NaN. It is now rejected before
    /// any state mutation, and the filter keeps working afterwards.
    #[test]
    fn non_finite_frames_are_rejected_without_poisoning_state() {
        let (obs, intents) = synthetic(6, 100, 0.1, 2);
        let mut decoder = KalmanDecoder::calibrate(&obs, &intents).unwrap();
        let mut twin = decoder.clone();
        decoder.step(&obs[0]).unwrap();
        twin.step(&obs[0]).unwrap();

        for (k, bad) in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY]
            .into_iter()
            .enumerate()
        {
            let mut frame = obs[1].clone();
            frame[k + 1] = bad;
            match decoder.step(&frame) {
                Err(DecodeError::NonFinite { channel }) => assert_eq!(channel, k + 1),
                other => panic!("expected NonFinite rejection, got {other:?}"),
            }
        }

        // The rejected frames left no trace: the decoder tracks a twin
        // that never saw them, bit for bit.
        for frame in &obs[1..20] {
            let a = decoder.step(frame).unwrap();
            let b = twin.step(frame).unwrap();
            assert_eq!(a, b, "state poisoned by a rejected frame");
            assert!(a.x.is_finite() && a.y.is_finite());
        }

        // And reset() still returns it to a pristine start.
        decoder.step(&[f64::NAN; 6]).unwrap_err();
        decoder.reset();
        let mut fresh = KalmanDecoder::calibrate(&obs, &intents).unwrap();
        for frame in &obs[..20] {
            assert_eq!(
                decoder.step(frame).unwrap(),
                fresh.step(frame).unwrap(),
                "reset after rejection must match a fresh decoder"
            );
        }
    }

    #[test]
    fn correlation_helper_behaves() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((correlation(&a, &b) - 1.0).abs() < 1e-12);
        let c = [4.0, 3.0, 2.0, 1.0];
        assert!((correlation(&a, &c) + 1.0).abs() < 1e-12);
        assert_eq!(correlation(&a[..1], &b[..1]), 0.0);
        assert_eq!(correlation(&a, &[1.0, 1.0, 1.0, 1.0]), 0.0);
    }
}
