//! Minimum QAM efficiency analysis (Section 5.2, Fig. 7).
//!
//! To transmit raw neural data from `n > 1024` channels without widening
//! the antenna, the transceiver packs `k = ⌈n / 1024⌉` bits into each
//! symbol (the symbol rate stays at the 1024-channel design point). The
//! required transmit energy per bit then follows the QAM link budget, and
//! the *QAM efficiency* `η` of the implementation determines the real
//! power draw. This module computes, per SoC and channel count, the
//! minimum `η` that keeps the whole SoC inside its power budget —
//! reproducing Fig. 7.

use core::fmt;

use mindful_core::budget::power_budget;
use mindful_core::regimes::SplitDesign;
use mindful_core::units::{Area, DataRate, Energy, Power};

use crate::error::{Result, RfError};
use crate::linkbudget::LinkBudget;
use crate::modulation::Modulation;

/// The QAM efficiency achieved by current biomedical transmitters
/// (Section 5.2: ~15 %).
pub const CURRENT_QAM_EFFICIENCY: f64 = 0.15;

/// A realistic short-term QAM efficiency target (Section 5.2: 20 %).
pub const SHORT_TERM_QAM_EFFICIENCY: f64 = 0.20;

/// One evaluated QAM operating point for a scaled SoC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QamOperatingPoint {
    channels: u64,
    bits_per_symbol: u8,
    rate: DataRate,
    ideal_energy_per_bit: Energy,
    sensing_power: Power,
    budget: Power,
    min_efficiency: f64,
}

impl QamOperatingPoint {
    /// The evaluated channel count.
    #[must_use]
    pub fn channels(&self) -> u64 {
        self.channels
    }

    /// Bits per symbol `k = ⌈n / n_ref⌉`.
    #[must_use]
    pub fn bits_per_symbol(&self) -> u8 {
        self.bits_per_symbol
    }

    /// The raw data rate the link must carry.
    #[must_use]
    pub fn data_rate(&self) -> DataRate {
        self.rate
    }

    /// Transmit energy per bit of an ideal (η = 1) implementation.
    #[must_use]
    pub fn ideal_energy_per_bit(&self) -> Energy {
        self.ideal_energy_per_bit
    }

    /// Projected sensing power at this channel count.
    #[must_use]
    pub fn sensing_power(&self) -> Power {
        self.sensing_power
    }

    /// The power budget at this channel count.
    #[must_use]
    pub fn power_budget(&self) -> Power {
        self.budget
    }

    /// The minimum QAM efficiency that meets the budget (may exceed 1,
    /// meaning even an ideal implementation cannot).
    #[must_use]
    pub fn min_efficiency(&self) -> f64 {
        self.min_efficiency
    }

    /// Whether the point is achievable at a given implementation
    /// efficiency.
    #[must_use]
    pub fn feasible_at(&self, eta: f64) -> bool {
        self.min_efficiency <= eta
    }
}

impl fmt::Display for QamOperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ch: {} bits/sym, {:.1} Mbps, min QAM efficiency {:.1}%",
            self.channels,
            self.bits_per_symbol,
            self.rate.megabits_per_second(),
            self.min_efficiency * 100.0,
        )
    }
}

/// Evaluates the QAM operating point of a 1024-channel anchor design
/// scaled to `channels` raw-streamed channels.
///
/// The non-sensing area is reused for QAM (it does not grow), sensing
/// power and area grow linearly, and the headroom left under the budget
/// must absorb the whole QAM transmit power.
///
/// # Errors
///
/// * [`RfError::Core`] if `channels` is below the anchor's reference.
/// * [`RfError::InvalidBitsPerSymbol`] if the implied `k` exceeds the
///   model's limit.
/// * [`RfError::LinkInfeasible`] if sensing alone already exceeds the
///   budget (no headroom for any transmitter).
pub fn qam_operating_point(
    design: &SplitDesign,
    channels: u64,
    link: &LinkBudget,
) -> Result<QamOperatingPoint> {
    let reference = design.reference_channels();
    if channels < reference {
        return Err(mindful_core::CoreError::BelowReferenceChannels {
            requested: channels,
            reference,
        }
        .into());
    }
    let ratio = channels as f64 / reference as f64;
    let bits_per_symbol = u8::try_from(channels.div_ceil(reference))
        .map_err(|_| RfError::InvalidBitsPerSymbol { bits: u8::MAX })?;
    let modulation = Modulation::qam(bits_per_symbol)?;

    let spec = design.scaled().spec();
    let rate =
        mindful_core::throughput::sensing_throughput(channels, spec.sample_bits(), spec.sampling());

    // Area: sensing grows linearly, non-sensing is reused for QAM.
    let area: Area = design.sensing_area() * ratio + design.non_sensing_area();
    let budget = power_budget(area);
    let sensing_power = design.sensing_power() * ratio;
    let headroom = budget - sensing_power;
    if headroom.watts() <= 0.0 {
        return Err(RfError::LinkInfeasible {
            reason: format!(
                "sensing power {:.2} mW alone exceeds the {:.2} mW budget at {channels} channels",
                sensing_power.milliwatts(),
                budget.milliwatts()
            ),
        });
    }

    let ideal_energy_per_bit = link.energy_per_bit(modulation, 1.0)?;
    let min_efficiency = link.minimum_efficiency(modulation, rate, headroom)?;

    Ok(QamOperatingPoint {
        channels,
        bits_per_symbol,
        rate,
        ideal_energy_per_bit,
        sensing_power,
        budget,
        min_efficiency,
    })
}

/// The maximum channel count (multiple of `step`) a design supports at a
/// given implementation efficiency, searched up to `max_channels`.
///
/// Returns `None` when even the reference channel count is infeasible.
///
/// # Errors
///
/// Returns [`RfError::InvalidEfficiency`] for `eta` outside `(0, 1]` and
/// [`RfError::InvalidParameter`] for a zero step.
pub fn max_channels_at_efficiency(
    design: &SplitDesign,
    eta: f64,
    link: &LinkBudget,
    step: u64,
    max_channels: u64,
) -> Result<Option<u64>> {
    if !(eta > 0.0 && eta <= 1.0) {
        return Err(RfError::InvalidEfficiency { eta });
    }
    if step == 0 {
        return Err(RfError::InvalidParameter {
            name: "step",
            value: 0.0,
        });
    }
    let mut best = None;
    let mut n = design.reference_channels();
    while n <= max_channels {
        match qam_operating_point(design, n, link) {
            Ok(point) if point.feasible_at(eta) => best = Some(n),
            Ok(_) => break,
            // No headroom at all: stop searching upward.
            Err(RfError::LinkInfeasible { .. }) => break,
            Err(e) => return Err(e),
        }
        n += step;
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mindful_core::regimes::standard_split_designs;
    use mindful_core::scaling::scale_to_standard;
    use mindful_core::soc::soc_by_id;

    fn bisc() -> SplitDesign {
        SplitDesign::from_scaled(scale_to_standard(&soc_by_id(1).unwrap()).unwrap())
    }

    #[test]
    fn bits_per_symbol_steps_at_reference_multiples() {
        let design = bisc();
        let link = LinkBudget::paper_nominal();
        assert_eq!(
            qam_operating_point(&design, 1024, &link)
                .unwrap()
                .bits_per_symbol(),
            1
        );
        assert_eq!(
            qam_operating_point(&design, 1025, &link)
                .unwrap()
                .bits_per_symbol(),
            2
        );
        assert_eq!(
            qam_operating_point(&design, 2048, &link)
                .unwrap()
                .bits_per_symbol(),
            2
        );
        assert_eq!(
            qam_operating_point(&design, 2049, &link)
                .unwrap()
                .bits_per_symbol(),
            3
        );
    }

    #[test]
    fn min_efficiency_grows_with_channels() {
        let design = bisc();
        let link = LinkBudget::paper_nominal();
        let mut prev = 0.0;
        for n in (1024..=6144).step_by(1024) {
            let eta = qam_operating_point(&design, n, &link)
                .unwrap()
                .min_efficiency();
            assert!(eta > prev, "efficiency must rise at {n}: {eta} vs {prev}");
            prev = eta;
        }
    }

    #[test]
    fn twenty_percent_efficiency_roughly_doubles_channels() {
        // Fig. 7: at 20 % efficiency, SoCs support ~2x channels on
        // average; at 100 %, ~4x. Check the fleet average lands in a
        // sensible band around those anchors.
        let link = LinkBudget::paper_nominal();
        let designs = standard_split_designs();
        let mut at20 = Vec::new();
        let mut at100 = Vec::new();
        for d in &designs {
            if let Some(n) =
                max_channels_at_efficiency(d, SHORT_TERM_QAM_EFFICIENCY, &link, 64, 1 << 17)
                    .unwrap()
            {
                at20.push(n as f64 / 1024.0);
            }
            if let Some(n) = max_channels_at_efficiency(d, 1.0, &link, 64, 1 << 17).unwrap() {
                at100.push(n as f64 / 1024.0);
            }
        }
        assert!(!at20.is_empty() && !at100.is_empty());
        let avg20 = at20.iter().sum::<f64>() / at20.len() as f64;
        let avg100 = at100.iter().sum::<f64>() / at100.len() as f64;
        assert!(avg20 >= 1.0, "20% average {avg20}");
        assert!(
            avg100 > avg20,
            "ideal efficiency must allow more channels ({avg100} vs {avg20})"
        );
        assert!(
            (1.2..=4.0).contains(&avg20),
            "20% efficiency supports ~2x channels, got {avg20:.2}x"
        );
        assert!(
            (2.0..=8.0).contains(&avg100),
            "100% efficiency supports ~4x channels, got {avg100:.2}x"
        );
    }

    #[test]
    fn below_reference_is_rejected() {
        let design = bisc();
        let link = LinkBudget::paper_nominal();
        assert!(matches!(
            qam_operating_point(&design, 512, &link),
            Err(RfError::Core(_))
        ));
    }

    #[test]
    fn search_parameters_are_validated() {
        let design = bisc();
        let link = LinkBudget::paper_nominal();
        assert!(max_channels_at_efficiency(&design, 0.0, &link, 64, 4096).is_err());
        assert!(max_channels_at_efficiency(&design, 1.5, &link, 64, 4096).is_err());
        assert!(max_channels_at_efficiency(&design, 0.5, &link, 0, 4096).is_err());
    }

    #[test]
    fn display_reports_percent() {
        let design = bisc();
        let link = LinkBudget::paper_nominal();
        let p = qam_operating_point(&design, 2048, &link).unwrap();
        let text = p.to_string();
        assert!(text.contains("2048 ch"));
        assert!(text.contains('%'));
    }

    #[test]
    fn efficiency_outpaces_headroom_growth() {
        // Headroom grows linearly with n (budget slope exceeds the
        // sensing-power slope for BISC), but the required transmit power
        // grows super-linearly, so the minimum efficiency still rises.
        let design = bisc();
        let link = LinkBudget::paper_nominal();
        let a = qam_operating_point(&design, 2048, &link).unwrap();
        let b = qam_operating_point(&design, 4096, &link).unwrap();
        let ha = a.power_budget() - a.sensing_power();
        let hb = b.power_budget() - b.sensing_power();
        assert!(hb > ha, "headroom grows linearly for BISC");
        assert!(b.min_efficiency() > a.min_efficiency());
    }
}
