//! Fleet serving: multiplexing many implant sessions over the shared
//! scheduler.
//!
//! [`crate::StreamSet`] serves a *fixed* set of homogeneous streams by
//! driving every pipeline the same number of steps. A deployed host
//! serves a *fleet*: sessions (one per patient-device link) come and
//! go, differ in channel count, decoder, fault plan, and security
//! state, and demand arrives unevenly — so the serving layer needs
//! admission, eviction, fair scheduling, per-session backpressure, and
//! a disciplined answer to oversubscription. This module provides it:
//!
//! * A [`Fleet`] admits independent [`SessionSpec`]s — each an owned
//!   [`Pipeline`] with its own ARQ/auth state, fault plan, precision,
//!   and (when a registry is attached) its own per-session metric
//!   prefix — and evicts them with a full end-of-stream drain
//!   ([`Pipeline::finish`]).
//! * Demand is queued per session through [`Fleet::request`], capped
//!   by the per-session backlog bound ([`FleetConfig::max_backlog`]) —
//!   the backpressure contract: excess demand is *rejected at the
//!   edge*, visibly, rather than ballooning memory.
//! * Every session carries a [`PriorityClass`] — the paper's
//!   application-level urgency ladder: a motor-decode stream at the
//!   ~500 µs per-sample deadline is [`PriorityClass::Realtime`], a
//!   telemetry-only stream is [`PriorityClass::BestEffort`] — plus an
//!   optional per-session quantum (the *weight* inside its class) and
//!   an optional per-step deadline budget in nanoseconds.
//! * [`Fleet::drive_epoch`] runs one scheduling epoch as a client of a
//!   shared [`Scheduler`] ([`Scheduler::dispatch_phased`] — one phase
//!   per priority class, served strictly high-to-low with
//!   work-stealing inside each class): every ready session is granted
//!   up to its quantum ([`SessionSpec::with_quantum`], defaulting to
//!   [`FleetConfig::quantum`]) out of the epoch's step capacity
//!   ([`FleetConfig::epoch_capacity`]). Grants are computed serially
//!   before any worker runs — classes high to low, slot order within a
//!   class — so when capacity runs out it is always the *lowest*
//!   classes that go unserved, and the outcome is identical for every
//!   worker count.
//! * Demand beyond a session's grant is **load-shed into degraded
//!   mode** rather than stalled: a session admitted with a
//!   [`ShedPoint`] has the excess pushed as in-band gap markers (an
//!   empty typed frame) directly at its [`crate::ConcealStage`] via
//!   [`Pipeline::push_at`] — skipping the whole upstream chain (the
//!   actual cost saving) and landing in the concealer's existing
//!   degradation policies, where every shed step is accounted
//!   field-exactly as [`crate::FaultTelemetry::degraded`]. Shed work
//!   is itself bounded per epoch ([`FleetConfig::shed_quantum`]) so a
//!   pathological backlog cannot monopolize a worker; the remainder —
//!   and everything queued by sessions without a shed point — stays
//!   backlogged, keeping the conservation ledger (accepted = stepped +
//!   shed + backlog) exact.
//! * A session with a deadline budget ([`SessionSpec::with_deadline_ns`])
//!   has every real step's wall time checked against it — the same
//!   measurement that feeds the `step_ns` histograms — and misses are
//!   accounted per class in [`EpochReport::by_class`], per session in
//!   [`SessionReport::deadline_misses`], and in the registry.
//!
//! The warm per-step path — ready-list scan, dispatch on one worker,
//! [`Pipeline::step`]/[`Pipeline::push_at`] on warm buffers, metric
//! recording — performs no heap allocation (proven by the crate's
//! counting-allocator test). With a multi-worker scheduler, epochs fan
//! out over scoped threads exactly like every other scheduler client.
//!
//! ## Observability
//!
//! [`Fleet::observed`] registers a fleet-level metric family under a
//! prefix (default contract used by the soak and bench: `serve`):
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `sessions` | gauge | live sessions (high water = peak) |
//! | `admitted` / `evicted` | counter | session lifecycle totals |
//! | `epochs` | counter | scheduling epochs driven |
//! | `steps` | counter | real pipeline steps run |
//! | `emitted` | counter | frames that cleared a whole chain |
//! | `shed` | counter | oversubscribed steps shed into concealment |
//! | `rejected` | counter | demand rejected by backpressure |
//! | `deadline_misses` | counter | steps that ran past their session's budget |
//! | `step_ns` | histogram | per-step wall time (p99 = the bench's latency row) |
//! | `epoch_ns` | histogram | per-epoch wall time |
//!
//! plus a per-class family under `{prefix}.{class}.{metric}` (classes
//! are `realtime` / `interactive` / `best_effort`): `steps`, `shed`,
//! `deadline_misses` counters and a `step_ns` histogram each, so one
//! scrape answers "did the realtime class ever miss its budget" and
//! "which class absorbed the shedding" directly.
//!
//! Each admitted session is additionally instrumented as
//! `{prefix}.s{id}.{stage-index}.{stage}.{metric}` via
//! [`Pipeline::instrument`], so one registry scrape sees the whole
//! fleet at both granularities. Without the crate's `obs` feature all
//! recording compiles out, exactly like the per-stage instrumentation.
//! When observability is off (an unobserved fleet, or the feature
//! compiled out) and a session has no deadline budget, the per-step
//! hot path makes **no clock syscalls** at all.

#![cfg_attr(
    not(feature = "obs"),
    allow(unused_variables, unused_imports, dead_code, clippy::unused_self)
)]

use std::collections::HashMap;
use std::num::{NonZeroU32, NonZeroU64, NonZeroUsize};
use std::time::Instant;

use mindful_core::obs::Registry;
#[cfg(feature = "obs")]
use mindful_core::obs::{Counter, Gauge, Histogram};
use mindful_core::pool::{Scheduler, TaskSlot};

use crate::error::{PipelineError, Result};
use crate::frame::{Frame, FrameKind};
use crate::stage::{Pipeline, StageTelemetry};

/// Identifier of an admitted session, unique over the fleet's lifetime
/// (monotonic — ids are never reused, so a stale id fails loudly as
/// [`PipelineError::UnknownSession`] instead of touching a successor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl SessionId {
    /// The raw id (what per-session metric prefixes embed as `s{id}`).
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl core::fmt::Display for SessionId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A session's scheduling urgency: the application-level workload
/// classes of the paper's serving story, ordered most-urgent first.
///
/// [`Fleet::drive_epoch`] serves classes *strictly* high-to-low (one
/// dispatch phase per class), grants epoch capacity high-to-low, and
/// therefore sheds oversubscribed demand from the lowest class first.
/// The discriminant order is the serving order: `Realtime` before
/// `Interactive` before `BestEffort`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PriorityClass {
    /// Hard-deadline decode (e.g. motor decode at the ~500 µs
    /// per-sample application deadline): served first, never behind
    /// lower-class work.
    Realtime,
    /// Latency-sensitive but not deadline-bound (e.g. live monitoring
    /// dashboards).
    Interactive,
    /// Throughput-only traffic (e.g. bulk telemetry upload): first to
    /// be shed under oversubscription. The default for sessions that
    /// do not declare a class.
    #[default]
    BestEffort,
}

impl PriorityClass {
    /// Number of classes (sizes the per-class accounting arrays).
    pub const COUNT: usize = 3;

    /// Every class, in serving order (most urgent first).
    pub const ALL: [Self; Self::COUNT] = [Self::Realtime, Self::Interactive, Self::BestEffort];

    /// The class's index into per-class arrays ([`EpochReport::by_class`]),
    /// 0 = most urgent.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The snake-case label used in per-class metric names
    /// (`{prefix}.{label}.{metric}`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Realtime => "realtime",
            Self::Interactive => "interactive",
            Self::BestEffort => "best_effort",
        }
    }
}

impl core::fmt::Display for PriorityClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Where an oversubscribed session sheds load: the chain index of its
/// concealment stage and the frame kind that stage consumes.
///
/// The fleet pushes an *empty* frame of `kind` — the pipeline's
/// in-band gap marker — directly at stage `stage` via
/// [`Pipeline::push_at`], so the upstream stages are skipped entirely
/// and the concealer degrades the step under its configured policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedPoint {
    /// Chain index of the concealment stage.
    pub stage: usize,
    /// The data kind that stage consumes (`Codes`, `Counts`, `Values`,
    /// or `Activations`).
    pub kind: FrameKind,
}

impl ShedPoint {
    /// The gap marker this shed point injects.
    fn marker(self) -> Frame<'static> {
        match self.kind {
            FrameKind::Codes => Frame::Codes(&[]),
            FrameKind::Counts => Frame::Counts(&[]),
            FrameKind::Values => Frame::Values(&[]),
            FrameKind::Activations => Frame::Activations(&[]),
            // Rejected at admission.
            _ => Frame::Empty,
        }
    }

    fn is_data_kind(self) -> bool {
        matches!(
            self.kind,
            FrameKind::Codes | FrameKind::Counts | FrameKind::Values | FrameKind::Activations
        )
    }
}

/// A session offered to [`Fleet::admit`]: an owned pipeline plus the
/// session's scheduling and degradation contract.
pub struct SessionSpec {
    pipeline: Pipeline,
    shed: Option<ShedPoint>,
    class: PriorityClass,
    quantum: Option<NonZeroU32>,
    deadline_ns: Option<u64>,
}

impl SessionSpec {
    /// A session around `pipeline` with no shed point (oversubscribed
    /// demand stays backlogged instead of degrading), best-effort
    /// class, the fleet's default quantum, and no deadline budget.
    #[must_use]
    pub fn new(pipeline: Pipeline) -> Self {
        Self {
            pipeline,
            shed: None,
            class: PriorityClass::default(),
            quantum: None,
            deadline_ns: None,
        }
    }

    /// Declares the session's shed point (builder style): demand beyond
    /// the per-epoch quantum is pushed as gap markers at chain index
    /// `stage`, which must be the session's [`crate::ConcealStage`]
    /// consuming `kind` frames.
    #[must_use]
    pub fn with_shed(mut self, stage: usize, kind: FrameKind) -> Self {
        self.shed = Some(ShedPoint { stage, kind });
        self
    }

    /// Declares the session's [`PriorityClass`] (builder style).
    #[must_use]
    pub fn with_class(mut self, class: PriorityClass) -> Self {
        self.class = class;
        self
    }

    /// Declares a per-session quantum — the session's scheduling
    /// *weight* within its class, overriding [`FleetConfig::quantum`]:
    /// each epoch grants the session up to this many real steps.
    #[must_use]
    pub fn with_quantum(mut self, quantum: NonZeroU32) -> Self {
        self.quantum = Some(quantum);
        self
    }

    /// Declares a per-step deadline budget in nanoseconds: every real
    /// step whose wall time exceeds it is accounted as a deadline miss
    /// (per class, per session, and in the registry). The measurement
    /// is the same one that feeds the `step_ns` histograms; declaring a
    /// budget forces step timing on even for unobserved fleets.
    #[must_use]
    pub fn with_deadline_ns(mut self, budget: u64) -> Self {
        self.deadline_ns = Some(budget);
        self
    }
}

/// Fleet sizing and fairness knobs.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Maximum concurrent live sessions; [`Fleet::admit`] beyond it
    /// fails with [`PipelineError::FleetSaturated`].
    pub capacity: NonZeroUsize,
    /// Default per-session step budget per epoch, used by sessions
    /// that declare no quantum of their own
    /// ([`SessionSpec::with_quantum`]). With unlimited
    /// [`FleetConfig::epoch_capacity`] this is also the starvation
    /// bound — a backlogged session always advances at least
    /// `min(backlog, quantum)` steps per epoch.
    pub quantum: NonZeroU32,
    /// Per-session backlog bound: [`Fleet::request`] accepts demand
    /// only up to this many queued steps and rejects (counts and
    /// returns) the rest — the backpressure contract.
    pub max_backlog: u32,
    /// Per-session bound on shed work per epoch: at most this many
    /// backlogged steps are converted to gap markers each
    /// [`Fleet::drive_epoch`], so one pathological backlog cannot
    /// monopolize a worker inside the shed loop. The remainder stays
    /// backlogged (the conservation ledger is unaffected).
    pub shed_quantum: NonZeroU32,
    /// Total real-step budget per epoch — the host's compute capacity
    /// per scheduling tick. Grants are taken from it classes
    /// high-to-low (slot order within a class), so when demand exceeds
    /// capacity it is the lowest classes that go unserved and shed.
    /// `None` (the default) grants every ready session its full
    /// quantum.
    pub epoch_capacity: Option<NonZeroU64>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            capacity: NonZeroUsize::new(4096).expect("nonzero"),
            quantum: NonZeroU32::new(32).expect("nonzero"),
            max_backlog: 256,
            shed_quantum: NonZeroU32::new(256).expect("nonzero"),
            epoch_capacity: None,
        }
    }
}

/// One priority class's slice of an [`EpochReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassReport {
    /// Sessions of this class that had demand this epoch.
    pub sessions: usize,
    /// Real pipeline steps run for this class.
    pub steps: u64,
    /// Oversubscribed steps shed into concealment for this class.
    pub shed: u64,
    /// Real steps that ran past their session's deadline budget.
    pub deadline_misses: u64,
    /// Sessions of this class that had demand but neither stepped nor
    /// shed (frozen-by-error sessions are *not* counted — an error is
    /// not starvation).
    pub starved: usize,
}

/// What one [`Fleet::drive_epoch`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochReport {
    /// Sessions that had demand this epoch.
    pub sessions: usize,
    /// Real pipeline steps run.
    pub steps: u64,
    /// Frames that cleared a whole chain.
    pub emitted: u64,
    /// Oversubscribed steps shed into concealment.
    pub shed: u64,
    /// Real steps that ran past their session's deadline budget.
    pub deadline_misses: u64,
    /// Sessions that had demand but advanced zero steps and shed
    /// nothing. Sessions frozen by a stage error this epoch are
    /// excluded — frozen-by-error is not starvation — so with
    /// unlimited capacity this is always zero; with a bounded
    /// [`FleetConfig::epoch_capacity`] it counts the (lowest-class,
    /// shed-point-less) sessions priority left unserved.
    pub starved: usize,
    /// The per-class breakdown, indexed by [`PriorityClass::index`].
    pub by_class: [ClassReport; PriorityClass::COUNT],
}

/// A per-session accounting snapshot ([`Fleet::peek`]) or final report
/// ([`Fleet::evict`]).
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// The session.
    pub id: SessionId,
    /// The session's priority class.
    pub class: PriorityClass,
    /// Real steps the fleet ran for this session.
    pub steps: u64,
    /// Frames that cleared the session's whole chain.
    pub emitted: u64,
    /// Steps shed into the session's concealment stage.
    pub shed: u64,
    /// Demand rejected by the session's backlog bound.
    pub rejected: u64,
    /// Real steps that ran past the session's deadline budget (always
    /// zero for sessions without one).
    pub deadline_misses: u64,
    /// Demand still queued.
    pub backlog: u32,
    /// Frames flushed out of the chain by the eviction drain (always 0
    /// in a [`Fleet::peek`] snapshot).
    pub flushed: u64,
    /// Per-stage counters, in chain order.
    pub telemetry: Vec<StageTelemetry>,
}

/// One live session's state inside its [`TaskSlot`].
struct SessionState {
    id: u64,
    pipeline: Pipeline,
    shed: Option<ShedPoint>,
    class: PriorityClass,
    /// Per-session quantum override (the weight inside the class).
    quantum: Option<NonZeroU32>,
    /// Per-step deadline budget in nanoseconds.
    deadline_ns: Option<u64>,
    backlog: u32,
    steps: u64,
    emitted: u64,
    shed_steps: u64,
    rejected: u64,
    deadline_misses: u64,
    /// This-epoch counters, reset by the ready scan. `epoch_grant` and
    /// `epoch_shed_grant` are the serially-precomputed allocations the
    /// worker closure executes — workers never make scheduling
    /// decisions, which is what keeps accounting worker-count
    /// invariant.
    epoch_grant: u32,
    epoch_shed_grant: u32,
    epoch_steps: u32,
    epoch_emitted: u32,
    epoch_shed: u32,
    epoch_misses: u32,
    /// A stage error freezes the session until it is evicted. The
    /// error itself is handed back through [`Fleet::drive_epoch`];
    /// `failed` keeps the freeze in force afterwards.
    error: Option<PipelineError>,
    failed: bool,
}

impl SessionState {
    fn report(&self, flushed: u64) -> SessionReport {
        SessionReport {
            id: SessionId(self.id),
            class: self.class,
            steps: self.steps,
            emitted: self.emitted,
            shed: self.shed_steps,
            rejected: self.rejected,
            deadline_misses: self.deadline_misses,
            backlog: self.backlog,
            flushed,
            telemetry: self.pipeline.telemetry(),
        }
    }
}

/// Fleet-level registry handles (the `{prefix}.{metric}` family).
#[derive(Debug)]
struct FleetObs {
    #[cfg(feature = "obs")]
    sessions: Gauge,
    #[cfg(feature = "obs")]
    admitted: Counter,
    #[cfg(feature = "obs")]
    evicted: Counter,
    #[cfg(feature = "obs")]
    epochs: Counter,
    #[cfg(feature = "obs")]
    steps: Counter,
    #[cfg(feature = "obs")]
    emitted: Counter,
    #[cfg(feature = "obs")]
    shed: Counter,
    #[cfg(feature = "obs")]
    rejected: Counter,
    #[cfg(feature = "obs")]
    deadline_misses: Counter,
    #[cfg(feature = "obs")]
    step_ns: Histogram,
    #[cfg(feature = "obs")]
    epoch_ns: Histogram,
    /// Per-class families, indexed by [`PriorityClass::index`].
    #[cfg(feature = "obs")]
    class_steps: [Counter; PriorityClass::COUNT],
    #[cfg(feature = "obs")]
    class_shed: [Counter; PriorityClass::COUNT],
    #[cfg(feature = "obs")]
    class_deadline_misses: [Counter; PriorityClass::COUNT],
    #[cfg(feature = "obs")]
    class_step_ns: [Histogram; PriorityClass::COUNT],
}

impl FleetObs {
    fn register(registry: &Registry, prefix: &str) -> Self {
        #[cfg(feature = "obs")]
        {
            Self {
                sessions: registry.gauge(&format!("{prefix}.sessions")),
                admitted: registry.counter(&format!("{prefix}.admitted")),
                evicted: registry.counter(&format!("{prefix}.evicted")),
                epochs: registry.counter(&format!("{prefix}.epochs")),
                steps: registry.counter(&format!("{prefix}.steps")),
                emitted: registry.counter(&format!("{prefix}.emitted")),
                shed: registry.counter(&format!("{prefix}.shed")),
                rejected: registry.counter(&format!("{prefix}.rejected")),
                deadline_misses: registry.counter(&format!("{prefix}.deadline_misses")),
                step_ns: registry.histogram(&format!("{prefix}.step_ns")),
                epoch_ns: registry.histogram(&format!("{prefix}.epoch_ns")),
                class_steps: PriorityClass::ALL
                    .map(|c| registry.counter(&format!("{prefix}.{c}.steps"))),
                class_shed: PriorityClass::ALL
                    .map(|c| registry.counter(&format!("{prefix}.{c}.shed"))),
                class_deadline_misses: PriorityClass::ALL
                    .map(|c| registry.counter(&format!("{prefix}.{c}.deadline_misses"))),
                class_step_ns: PriorityClass::ALL
                    .map(|c| registry.histogram(&format!("{prefix}.{c}.step_ns"))),
            }
        }
        #[cfg(not(feature = "obs"))]
        {
            Self {}
        }
    }

    #[inline]
    fn record_step(&self, class: PriorityClass, nanos: u64) {
        #[cfg(feature = "obs")]
        {
            self.step_ns.record(nanos);
            self.class_step_ns[class.index()].record(nanos);
        }
    }
}

/// A dynamic multi-session serving fleet: a client of a shared
/// [`Scheduler`], owner of nothing but sessions.
///
/// See the module docs for the scheduling, backpressure, and
/// load-shedding contracts.
pub struct Fleet<'a> {
    scheduler: &'a Scheduler,
    config: FleetConfig,
    slots: Vec<TaskSlot<Option<SessionState>>>,
    /// Vacant slot indices (eviction leaves holes; admission refills).
    free: Vec<usize>,
    /// Slot index per live session id.
    index: HashMap<u64, usize>,
    /// Reused per-class ready lists (slot order within each class) —
    /// the warm path never reallocates them. Indexed by
    /// [`PriorityClass::index`]; each list is one dispatch phase.
    ready: [Vec<usize>; PriorityClass::COUNT],
    next_id: u64,
    epochs: u64,
    /// Accounting from the most recent epoch — kept even when the
    /// epoch's `Result` carried a stage error instead of the report.
    last_epoch: EpochReport,
    observe: Option<(&'a Registry, String)>,
    obs: Option<FleetObs>,
}

impl<'a> Fleet<'a> {
    /// An unobserved fleet scheduling onto `scheduler`.
    #[must_use]
    pub fn new(scheduler: &'a Scheduler, config: FleetConfig) -> Self {
        Self {
            scheduler,
            config,
            slots: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            ready: std::array::from_fn(|_| Vec::new()),
            next_id: 0,
            epochs: 0,
            last_epoch: EpochReport::default(),
            observe: None,
            obs: None,
        }
    }

    /// A fleet recording into `registry` under `prefix` (fleet metrics
    /// as `{prefix}.{metric}`, each admitted session instrumented under
    /// `{prefix}.s{id}`).
    #[must_use]
    pub fn observed(
        scheduler: &'a Scheduler,
        config: FleetConfig,
        registry: &'a Registry,
        prefix: &str,
    ) -> Self {
        let mut fleet = Self::new(scheduler, config);
        fleet.obs = Some(FleetObs::register(registry, prefix));
        fleet.observe = Some((registry, prefix.to_string()));
        fleet
    }

    /// Live session count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no sessions are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Scheduling epochs driven so far.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Accounting from the most recent [`Fleet::drive_epoch`] call.
    ///
    /// Unlike the epoch's return value, this survives the error path:
    /// when an epoch surfaces a stage error, the work that *did* run
    /// (and the per-class breakdown) is still recorded here.
    #[must_use]
    pub fn last_epoch(&self) -> &EpochReport {
        &self.last_epoch
    }

    /// The scheduler this fleet enqueues on.
    #[must_use]
    pub fn scheduler(&self) -> &'a Scheduler {
        self.scheduler
    }

    /// Admits a session and returns its id.
    ///
    /// When the fleet is observed, the session's pipeline is
    /// instrumented under `{prefix}.s{id}` before its first step.
    ///
    /// # Panics
    ///
    /// Panics when the spec's shed point names a stage index outside
    /// the pipeline — like [`Pipeline::push_at`], shedding into a
    /// stage that does not exist is a caller bug.
    ///
    /// # Errors
    ///
    /// * [`PipelineError::FleetSaturated`] at
    ///   [`FleetConfig::capacity`] live sessions.
    /// * [`PipelineError::Empty`] for a stage-less pipeline.
    /// * [`PipelineError::UnexpectedFrame`] when the shed point's kind
    ///   is not a concealable data kind.
    pub fn admit(&mut self, spec: SessionSpec) -> Result<SessionId> {
        if self.index.len() >= self.config.capacity.get() {
            return Err(PipelineError::FleetSaturated {
                capacity: self.config.capacity.get(),
            });
        }
        if spec.pipeline.is_empty() {
            return Err(PipelineError::Empty);
        }
        if let Some(shed) = spec.shed {
            if !shed.is_data_kind() {
                return Err(PipelineError::UnexpectedFrame {
                    stage: "fleet-shed",
                    actual: shed.kind,
                });
            }
            assert!(
                shed.stage < spec.pipeline.len(),
                "shed point {} out of bounds for {} stages",
                shed.stage,
                spec.pipeline.len()
            );
        }
        let id = self.next_id;
        self.next_id += 1;
        let mut pipeline = spec.pipeline;
        if let Some((registry, prefix)) = &self.observe {
            pipeline.instrument(registry, &format!("{prefix}.s{id}"));
        }
        let state = SessionState {
            id,
            pipeline,
            shed: spec.shed,
            class: spec.class,
            quantum: spec.quantum,
            deadline_ns: spec.deadline_ns,
            backlog: 0,
            steps: 0,
            emitted: 0,
            shed_steps: 0,
            rejected: 0,
            deadline_misses: 0,
            epoch_grant: 0,
            epoch_shed_grant: 0,
            epoch_steps: 0,
            epoch_emitted: 0,
            epoch_shed: 0,
            epoch_misses: 0,
            error: None,
            failed: false,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                *self.slots[slot].get_mut() = Some(state);
                slot
            }
            None => {
                self.slots.push(TaskSlot::new(Some(state)));
                self.slots.len() - 1
            }
        };
        self.index.insert(id, slot);
        #[cfg(feature = "obs")]
        if let Some(obs) = &self.obs {
            obs.admitted.increment();
            obs.sessions.set(self.index.len() as u64);
        }
        Ok(SessionId(id))
    }

    /// Queues `steps` of demand for a session, returning how many were
    /// accepted.
    ///
    /// Acceptance is capped so the session's backlog never exceeds
    /// [`FleetConfig::max_backlog`]; the remainder is rejected,
    /// counted (per session and in the `rejected` fleet counter), and
    /// reported back — the caller's backpressure signal.
    ///
    /// # Errors
    ///
    /// [`PipelineError::UnknownSession`] for an unknown or evicted id.
    pub fn request(&mut self, id: SessionId, steps: u32) -> Result<u32> {
        let slot = self.slot_of(id)?;
        let state = self.slots[slot]
            .get_mut()
            .as_mut()
            .expect("indexed slots hold a session");
        let room = self.config.max_backlog.saturating_sub(state.backlog);
        let accepted = steps.min(room);
        state.backlog += accepted;
        let rejected = u64::from(steps - accepted);
        state.rejected += rejected;
        #[cfg(feature = "obs")]
        if let Some(obs) = &self.obs {
            if rejected > 0 {
                obs.rejected.add(rejected);
            }
        }
        Ok(accepted)
    }

    /// Runs one scheduling epoch over every session with demand.
    ///
    /// The epoch has three strictly ordered parts:
    ///
    /// 1. **Grant** (serial): ready sessions are granted real steps —
    ///    classes high-to-low, slot order within a class — up to each
    ///    session's quantum ([`SessionSpec::with_quantum`], default
    ///    [`FleetConfig::quantum`]) and the remaining
    ///    [`FleetConfig::epoch_capacity`]. Backlog beyond the grant is
    ///    allotted shed work (bounded by [`FleetConfig::shed_quantum`])
    ///    for sessions with a [`ShedPoint`].
    /// 2. **Serve** (parallel): one dispatch phase per class, highest
    ///    first ([`Scheduler::dispatch_phased`]) — lower-class work
    ///    never runs while a higher class has granted work pending,
    ///    and workers steal freely inside a class. Each step of a
    ///    session with a deadline budget is timed against it; the same
    ///    measurement feeds the `step_ns` histograms, and when neither
    ///    is needed (unobserved fleet, no budget) the hot path makes
    ///    no clock syscalls.
    /// 3. **Account** (serial): per-session, per-class, and fleet
    ///    totals — including deadline misses — land in the
    ///    [`EpochReport`] and the registry.
    ///
    /// Because grants are fixed before any worker runs, the epoch's
    /// accounting is identical for every worker count.
    ///
    /// # Errors
    ///
    /// Returns the first stage error in class-then-slot order. The
    /// erroring session is frozen (it runs no further steps and keeps
    /// its backlog) until [`Fleet::evict`] removes it; other sessions
    /// are unaffected, and the epoch's accounting still covers the
    /// steps that ran.
    pub fn drive_epoch(&mut self) -> Result<EpochReport> {
        // Ready scan: reset epoch counters, bucket ready sessions by
        // class (push order = slot order inside each class).
        for class_ready in &mut self.ready {
            class_ready.clear();
        }
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if let Some(state) = slot.get_mut() {
                state.epoch_grant = 0;
                state.epoch_shed_grant = 0;
                state.epoch_steps = 0;
                state.epoch_emitted = 0;
                state.epoch_shed = 0;
                state.epoch_misses = 0;
                if state.backlog > 0 && !state.failed {
                    self.ready[state.class.index()].push(i);
                }
            }
        }

        // Grant pass: classes high-to-low, slot order within a class.
        // Serial and deterministic — workers only ever execute the
        // grants computed here.
        let default_quantum = self.config.quantum;
        let shed_quantum = self.config.shed_quantum.get();
        let mut capacity = self.config.epoch_capacity.map(NonZeroU64::get);
        {
            let (slots, ready) = (&mut self.slots, &self.ready);
            for class_ready in ready {
                for &i in class_ready {
                    let state = slots[i]
                        .get_mut()
                        .as_mut()
                        .expect("ready slots hold a session");
                    let quantum = state.quantum.unwrap_or(default_quantum).get();
                    let want = state.backlog.min(quantum);
                    let grant = match capacity.as_mut() {
                        Some(cap) => {
                            let grant = want.min(u32::try_from(*cap).unwrap_or(u32::MAX));
                            *cap -= u64::from(grant);
                            grant
                        }
                        None => want,
                    };
                    state.epoch_grant = grant;
                    state.epoch_shed_grant = if state.shed.is_some() {
                        (state.backlog - grant).min(shed_quantum)
                    } else {
                        0
                    };
                }
            }
        }

        // Clock discipline: the epoch stopwatch runs only for observed
        // fleets; per-step stopwatches additionally run for sessions
        // with a deadline budget. The unobserved, budget-less hot path
        // makes no clock syscalls at all.
        #[cfg(feature = "obs")]
        let obs_on = self.obs.is_some();
        #[cfg(not(feature = "obs"))]
        let obs_on = false;
        let obs = &self.obs;
        let epoch_start = obs_on.then(Instant::now);
        let phases: [&[usize]; PriorityClass::COUNT] =
            std::array::from_fn(|c| self.ready[c].as_slice());
        self.scheduler
            .dispatch_phased(&self.slots, &phases, |_, entry| {
                let Some(state) = entry.as_mut() else {
                    return;
                };
                let timed = obs_on || state.deadline_ns.is_some();
                let budget = state.deadline_ns.unwrap_or(u64::MAX);
                for _ in 0..state.epoch_grant {
                    let t = if timed { Some(Instant::now()) } else { None };
                    match state.pipeline.step() {
                        Ok(out) => {
                            if out.is_some() {
                                state.epoch_emitted += 1;
                            }
                        }
                        Err(e) => {
                            state.error = Some(e);
                            state.failed = true;
                            break;
                        }
                    }
                    if let Some(t) = t {
                        let nanos = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        if let Some(obs) = obs {
                            obs.record_step(state.class, nanos);
                        }
                        if nanos > budget {
                            state.epoch_misses += 1;
                        }
                    }
                    state.epoch_steps += 1;
                    state.backlog -= 1;
                }
                if !state.failed && state.epoch_shed_grant > 0 {
                    let shed = state.shed.expect("shed grants require a shed point");
                    for _ in 0..state.epoch_shed_grant {
                        match state.pipeline.push_at(shed.stage, shed.marker()) {
                            Ok(out) => {
                                if out.is_some() {
                                    state.epoch_emitted += 1;
                                }
                            }
                            Err(e) => {
                                state.error = Some(e);
                                state.failed = true;
                                break;
                            }
                        }
                        state.epoch_shed += 1;
                        state.backlog -= 1;
                    }
                }
            });
        let epoch_nanos =
            epoch_start.map(|t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
        self.epochs += 1;

        let mut report = EpochReport::default();
        let mut error = None;
        // Split the borrow: the ready lists are read-only here.
        let (slots, ready) = (&mut self.slots, &self.ready);
        for (ci, class_ready) in ready.iter().enumerate() {
            let class = &mut report.by_class[ci];
            class.sessions = class_ready.len();
            report.sessions += class_ready.len();
            for &i in class_ready {
                let state = slots[i]
                    .get_mut()
                    .as_mut()
                    .expect("ready slots hold a session");
                state.steps += u64::from(state.epoch_steps);
                state.emitted += u64::from(state.epoch_emitted);
                state.shed_steps += u64::from(state.epoch_shed);
                state.deadline_misses += u64::from(state.epoch_misses);
                class.steps += u64::from(state.epoch_steps);
                class.shed += u64::from(state.epoch_shed);
                class.deadline_misses += u64::from(state.epoch_misses);
                report.steps += u64::from(state.epoch_steps);
                report.emitted += u64::from(state.epoch_emitted);
                report.shed += u64::from(state.epoch_shed);
                report.deadline_misses += u64::from(state.epoch_misses);
                // A session frozen by a stage error this epoch is not
                // starved — it was served and failed.
                if state.epoch_steps == 0 && state.epoch_shed == 0 && !state.failed {
                    class.starved += 1;
                    report.starved += 1;
                }
                if error.is_none() && state.error.is_some() {
                    error = state.error.take();
                }
            }
        }
        #[cfg(feature = "obs")]
        if let Some(obs) = &self.obs {
            obs.epochs.increment();
            obs.steps.add(report.steps);
            obs.emitted.add(report.emitted);
            obs.shed.add(report.shed);
            obs.deadline_misses.add(report.deadline_misses);
            for (ci, class) in report.by_class.iter().enumerate() {
                obs.class_steps[ci].add(class.steps);
                obs.class_shed[ci].add(class.shed);
                obs.class_deadline_misses[ci].add(class.deadline_misses);
            }
            if let Some(nanos) = epoch_nanos {
                obs.epoch_ns.record(nanos);
            }
        }
        #[cfg(not(feature = "obs"))]
        let _ = epoch_nanos;
        self.last_epoch = report;
        match error {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    /// A point-in-time accounting snapshot of a live session
    /// (`flushed` is always 0 — nothing is drained).
    ///
    /// # Errors
    ///
    /// [`PipelineError::UnknownSession`] for an unknown or evicted id.
    pub fn peek(&mut self, id: SessionId) -> Result<SessionReport> {
        let slot = self.slot_of(id)?;
        let state = self.slots[slot]
            .get_mut()
            .as_ref()
            .expect("indexed slots hold a session");
        Ok(state.report(0))
    }

    /// Evicts a session: removes it from scheduling, drains its
    /// pipeline end-of-stream ([`Pipeline::finish`] — windows mid-fill
    /// flush their partial contents), and returns the final report
    /// with the drain's flushed-frame count.
    ///
    /// The session is removed even when the drain fails; a queued
    /// backlog is simply dropped (it was never run, and the `backlog`
    /// field of the report records how much).
    ///
    /// # Errors
    ///
    /// * [`PipelineError::UnknownSession`] for an unknown or evicted
    ///   id.
    /// * The first stage error raised by the drain (the session is
    ///   still removed).
    pub fn evict(&mut self, id: SessionId) -> Result<SessionReport> {
        let slot = self.slot_of(id)?;
        let mut state = self.slots[slot]
            .get_mut()
            .take()
            .expect("indexed slots hold a session");
        self.index.remove(&id.raw());
        self.free.push(slot);
        #[cfg(feature = "obs")]
        if let Some(obs) = &self.obs {
            obs.evicted.increment();
            obs.sessions.set(self.index.len() as u64);
        }
        let flushed = state.pipeline.finish()?;
        Ok(state.report(flushed))
    }

    fn slot_of(&self, id: SessionId) -> Result<usize> {
        self.index
            .get(&id.raw())
            .copied()
            .ok_or(PipelineError::UnknownSession { id: id.raw() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{ConcealStage, DegradePolicy};
    use crate::stages::{BinStage, IntentSchedule, PacketizeStage, SenseStage};
    use crate::stream::StreamSet;

    fn scheduler(workers: usize) -> Scheduler {
        Scheduler::new(NonZeroUsize::new(workers).unwrap())
    }

    fn sense_chain(seed: u64) -> Pipeline {
        Pipeline::new()
            .with_stage(SenseStage::new(2, 16, 10, seed, IntentSchedule::FigureEight).unwrap())
            .with_stage(PacketizeStage::new(10).unwrap())
    }

    /// sense → conceal chain whose conceal stage (index 1) is the shed
    /// point. A 2×2 grid senses 4 channels.
    fn sheddable_chain(seed: u64) -> SessionSpec {
        let pipeline = Pipeline::new()
            .with_stage(SenseStage::new(2, 16, 10, seed, IntentSchedule::FigureEight).unwrap())
            .with_stage(ConcealStage::new(4, DegradePolicy::HoldLast).unwrap());
        SessionSpec::new(pipeline).with_shed(1, FrameKind::Codes)
    }

    /// Source stage emitting a fixed-width events frame every step
    /// (what a [`BinStage`] consumes).
    struct EventSource(usize);

    impl crate::Stage for EventSource {
        fn name(&self) -> &'static str {
            "events"
        }

        fn process(
            &mut self,
            _input: &Frame<'_>,
            out: &mut crate::FrameBuf,
        ) -> Result<crate::StageOutput> {
            let events = out.begin_events();
            events.extend((0..self.0).map(|c| c.is_multiple_of(2)));
            Ok(crate::StageOutput::Emitted)
        }
    }

    fn config(quantum: u32, backlog: u32) -> FleetConfig {
        FleetConfig {
            quantum: NonZeroU32::new(quantum).unwrap(),
            max_backlog: backlog,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn single_session_fleet_matches_a_standalone_stream_set() {
        let sched = scheduler(1);
        let mut fleet = Fleet::new(&sched, config(8, 64));
        let id = fleet.admit(SessionSpec::new(sense_chain(7))).unwrap();
        assert_eq!(fleet.request(id, 24).unwrap(), 24);
        while fleet.peek(id).unwrap().backlog > 0 {
            fleet.drive_epoch().unwrap();
        }
        let report = fleet.evict(id).unwrap();

        let mut set = StreamSet::build(1, |_| Ok(sense_chain(7))).unwrap();
        let baseline = &set.drive(24, NonZeroUsize::MIN).unwrap()[0];

        assert_eq!(report.steps, baseline.steps);
        assert_eq!(report.emitted, baseline.emitted);
        assert_eq!(report.telemetry.len(), baseline.telemetry.len());
        for (a, b) in report.telemetry.iter().zip(&baseline.telemetry) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.frames_in, b.frames_in);
            assert_eq!(a.frames_out, b.frames_out);
            assert_eq!(a.bytes_out, b.bytes_out, "byte-identical wire output");
        }
    }

    #[test]
    fn admission_is_bounded_and_ids_are_never_reused() {
        let sched = scheduler(1);
        let mut fleet = Fleet::new(
            &sched,
            FleetConfig {
                capacity: NonZeroUsize::new(2).unwrap(),
                ..FleetConfig::default()
            },
        );
        let a = fleet.admit(SessionSpec::new(sense_chain(1))).unwrap();
        let b = fleet.admit(SessionSpec::new(sense_chain(2))).unwrap();
        assert_ne!(a, b);
        assert!(matches!(
            fleet.admit(SessionSpec::new(sense_chain(3))),
            Err(PipelineError::FleetSaturated { capacity: 2 })
        ));
        fleet.evict(a).unwrap();
        let c = fleet.admit(SessionSpec::new(sense_chain(3))).unwrap();
        assert_ne!(c, a, "slot is reused, id is not");
        assert!(matches!(
            fleet.peek(a),
            Err(PipelineError::UnknownSession { .. })
        ));
        assert_eq!(fleet.len(), 2);
    }

    #[test]
    fn admission_validates_the_spec() {
        let sched = scheduler(1);
        let mut fleet = Fleet::new(&sched, FleetConfig::default());
        assert!(matches!(
            fleet.admit(SessionSpec::new(Pipeline::new())),
            Err(PipelineError::Empty)
        ));
        assert!(matches!(
            fleet.admit(SessionSpec::new(sense_chain(1)).with_shed(1, FrameKind::Bytes)),
            Err(PipelineError::UnexpectedFrame {
                stage: "fleet-shed",
                ..
            })
        ));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = fleet.admit(SessionSpec::new(sense_chain(1)).with_shed(9, FrameKind::Codes));
        }));
        assert!(result.is_err(), "out-of-bounds shed point is a caller bug");
    }

    #[test]
    fn backpressure_caps_the_backlog_and_counts_rejections() {
        let sched = scheduler(1);
        let mut fleet = Fleet::new(&sched, config(4, 10));
        let id = fleet.admit(SessionSpec::new(sense_chain(5))).unwrap();
        assert_eq!(fleet.request(id, 6).unwrap(), 6);
        assert_eq!(fleet.request(id, 6).unwrap(), 4, "only room for 4 more");
        assert_eq!(fleet.request(id, 6).unwrap(), 0, "backlog full");
        let report = fleet.peek(id).unwrap();
        assert_eq!(report.backlog, 10);
        assert_eq!(report.rejected, 8);
        // Draining restores room.
        fleet.drive_epoch().unwrap();
        assert_eq!(fleet.peek(id).unwrap().backlog, 6);
        assert_eq!(fleet.request(id, 100).unwrap(), 4);
    }

    #[test]
    fn every_backlogged_session_advances_each_epoch() {
        for workers in [1, 4] {
            let sched = scheduler(workers);
            let mut fleet = Fleet::new(&sched, config(2, 64));
            let ids: Vec<SessionId> = (0..17)
                .map(|s| fleet.admit(SessionSpec::new(sense_chain(s))).unwrap())
                .collect();
            for &id in &ids {
                fleet.request(id, 10).unwrap();
            }
            let before: Vec<u64> = ids
                .iter()
                .map(|&id| fleet.peek(id).unwrap().steps)
                .collect();
            let report = fleet.drive_epoch().unwrap();
            assert_eq!(report.sessions, 17);
            assert_eq!(report.starved, 0, "{workers} workers");
            assert_eq!(report.steps, 17 * 2, "quantum steps each");
            for (&id, &b) in ids.iter().zip(&before) {
                let after = fleet.peek(id).unwrap().steps;
                assert_eq!(after, b + 2, "fair quantum for {id}");
            }
        }
    }

    #[test]
    fn oversubscription_sheds_into_concealment_with_exact_accounting() {
        let sched = scheduler(2);
        // Quantum 3 but backlog up to 10: the remainder must shed.
        let mut fleet = Fleet::new(&sched, config(3, 10));
        let id = fleet.admit(sheddable_chain(11)).unwrap();
        let plain = fleet.admit(SessionSpec::new(sense_chain(12))).unwrap();
        fleet.request(id, 10).unwrap();
        fleet.request(plain, 10).unwrap();
        let report = fleet.drive_epoch().unwrap();
        assert_eq!(report.steps, 6, "3 real steps each");
        assert_eq!(report.shed, 7, "sheddable session degrades its rest");

        let shed_report = fleet.peek(id).unwrap();
        assert_eq!(shed_report.steps, 3);
        assert_eq!(shed_report.shed, 7);
        assert_eq!(shed_report.backlog, 0, "shedding clears the backlog");
        // Field-exact: every shed step is a concealed (degraded) frame
        // in the conceal stage's own telemetry — no other fault field
        // moves.
        let conceal = shed_report.telemetry.last().unwrap();
        let faults = conceal.faults.expect("conceal stage is fault-aware");
        assert_eq!(faults.degraded, 7);
        assert_eq!(faults.quarantined, 0);
        assert_eq!(faults.lost, 0);
        // The sense stage never ran the shed steps: real steps only.
        assert_eq!(shed_report.telemetry[0].frames_in, 3);
        assert_eq!(conceal.frames_in, 10, "3 real + 7 shed");

        // The plain session keeps its remainder backlogged instead.
        let plain_report = fleet.peek(plain).unwrap();
        assert_eq!(plain_report.steps, 3);
        assert_eq!(plain_report.shed, 0);
        assert_eq!(plain_report.backlog, 7);
    }

    #[test]
    fn eviction_mid_drain_flushes_partial_windows() {
        let sched = scheduler(1);
        let mut fleet = Fleet::new(&sched, config(8, 64));
        // events → bin(4): 6 steps leave 2 frames mid-window.
        let pipeline = Pipeline::new()
            .with_stage(EventSource(16))
            .with_stage(BinStage::new(16, 4).unwrap());
        let id = fleet.admit(SessionSpec::new(pipeline)).unwrap();
        fleet.request(id, 6).unwrap();
        fleet.drive_epoch().unwrap();
        let report = fleet.evict(id).unwrap();
        assert_eq!(report.steps, 6);
        assert_eq!(report.emitted, 1, "one full window emitted live");
        assert_eq!(report.flushed, 1, "the mid-fill window drains on evict");
        let bin = report.telemetry.last().unwrap();
        assert_eq!(bin.frames_out, 2, "live window + flushed partial");
    }

    #[test]
    fn a_failing_session_freezes_without_stalling_the_fleet() {
        let sched = scheduler(1);
        let mut fleet = Fleet::new(&sched, config(4, 64));
        // Conceal alone consumes its own gap predictions... but a
        // width-mismatched conceal fails on the first sensed frame.
        let bad = Pipeline::new()
            .with_stage(SenseStage::new(2, 16, 10, 1, IntentSchedule::FigureEight).unwrap())
            .with_stage(ConcealStage::new(8, DegradePolicy::ZeroFill).unwrap());
        let bad_id = fleet.admit(SessionSpec::new(bad)).unwrap();
        let good_id = fleet.admit(SessionSpec::new(sense_chain(2))).unwrap();
        fleet.request(bad_id, 4).unwrap();
        fleet.request(good_id, 4).unwrap();
        assert!(
            fleet.drive_epoch().is_err(),
            "first epoch surfaces the error"
        );
        assert_eq!(
            fleet.peek(good_id).unwrap().steps,
            4,
            "healthy session still ran its quantum"
        );
        // The frozen session no longer schedules; the fleet stays live.
        fleet.request(good_id, 4).unwrap();
        let report = fleet.drive_epoch().unwrap();
        assert_eq!(report.sessions, 1);
        assert_eq!(fleet.peek(bad_id).unwrap().steps, 0);
        // Eviction drains what it can and removes the session either way.
        let _ = fleet.evict(bad_id);
        assert_eq!(fleet.len(), 1);
    }

    #[test]
    fn fleet_metrics_land_under_the_prefix() {
        let sched = scheduler(1);
        let registry = Registry::new();
        let mut fleet = Fleet::observed(&sched, config(2, 8), &registry, "serve");
        let id = fleet.admit(sheddable_chain(9)).unwrap();
        fleet.request(id, 8).unwrap();
        fleet.request(id, 8).unwrap(); // 8 rejected
        fleet.drive_epoch().unwrap();
        fleet.evict(id).unwrap();

        #[cfg(feature = "obs")]
        {
            let snap = registry.snapshot();
            assert_eq!(snap.counter("serve.admitted"), Some(1));
            assert_eq!(snap.counter("serve.evicted"), Some(1));
            assert_eq!(snap.counter("serve.epochs"), Some(1));
            assert_eq!(snap.counter("serve.steps"), Some(2));
            assert_eq!(snap.counter("serve.shed"), Some(6));
            assert_eq!(snap.counter("serve.rejected"), Some(8));
            let (live, peak) = snap.gauge("serve.sessions").unwrap();
            assert_eq!(live, 0);
            assert_eq!(peak, 1);
            let steps = snap.histogram("serve.step_ns").unwrap();
            assert_eq!(steps.count, 2, "one sample per real step");
            assert_eq!(snap.counter("serve.deadline_misses"), Some(0));
            // Per-class rows: the session declared no class, so all of
            // its work lands under the best-effort default and the
            // other classes stay at zero.
            assert_eq!(snap.counter("serve.best_effort.steps"), Some(2));
            assert_eq!(snap.counter("serve.best_effort.shed"), Some(6));
            assert_eq!(snap.counter("serve.best_effort.deadline_misses"), Some(0));
            let be_steps = snap.histogram("serve.best_effort.step_ns").unwrap();
            assert_eq!(be_steps.count, 2);
            assert_eq!(snap.counter("serve.realtime.steps"), Some(0));
            assert_eq!(snap.counter("serve.realtime.shed"), Some(0));
            assert_eq!(snap.histogram("serve.realtime.step_ns").unwrap().count, 0);
            assert_eq!(snap.counter("serve.interactive.steps"), Some(0));
            // Per-session prefix: the sense stage of session 0.
            assert_eq!(snap.counter("serve.s0.0.sense.frames_in"), Some(2));
            // Shed steps surface field-exactly on the session's conceal
            // gauges.
            let (degraded, _) = snap.gauge("serve.s0.1.conceal.faults.degraded").unwrap();
            assert_eq!(degraded, 6);
        }
    }

    #[test]
    fn multi_worker_epochs_match_serial_accounting() {
        let run = |workers: usize| {
            let sched = scheduler(workers);
            let mut fleet = Fleet::new(&sched, config(4, 64));
            let ids: Vec<SessionId> = (0..13)
                .map(|s| fleet.admit(sheddable_chain(100 + s)).unwrap())
                .collect();
            for &id in &ids {
                fleet.request(id, 7).unwrap();
            }
            fleet.drive_epoch().unwrap();
            fleet.drive_epoch().unwrap();
            ids.iter()
                .map(|&id| {
                    let r = fleet.peek(id).unwrap();
                    (
                        r.steps,
                        r.emitted,
                        r.shed,
                        r.telemetry.last().unwrap().faults.unwrap().degraded,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(4), "scheduling never changes the outputs");
    }

    #[test]
    fn higher_classes_are_served_strictly_first_under_epoch_capacity() {
        let sched = scheduler(2);
        let mut fleet = Fleet::new(
            &sched,
            FleetConfig {
                quantum: NonZeroU32::new(4).unwrap(),
                max_backlog: 64,
                epoch_capacity: NonZeroU64::new(4),
                ..FleetConfig::default()
            },
        );
        let rt = fleet
            .admit(SessionSpec::new(sense_chain(1)).with_class(PriorityClass::Realtime))
            .unwrap();
        let be_shed = fleet.admit(sheddable_chain(2)).unwrap();
        let be_plain = fleet.admit(SessionSpec::new(sense_chain(3))).unwrap();
        fleet.request(rt, 8).unwrap();
        fleet.request(be_shed, 8).unwrap();
        fleet.request(be_plain, 8).unwrap();

        // Epoch 1: the whole capacity goes to realtime; best-effort
        // runs zero real steps — the sheddable one degrades, the plain
        // one starves.
        let report = fleet.drive_epoch().unwrap();
        assert_eq!(report.sessions, 3);
        assert_eq!(report.by_class[PriorityClass::Realtime.index()].steps, 4);
        let be = report.by_class[PriorityClass::BestEffort.index()];
        assert_eq!(be.sessions, 2);
        assert_eq!(
            be.steps, 0,
            "no lower-class step while realtime is backlogged"
        );
        assert_eq!(be.shed, 8, "shed falls entirely on the lowest class");
        assert_eq!(be.starved, 1, "the unsheddable best-effort session starves");
        assert_eq!(report.steps, 4);
        assert_eq!(report.shed, 8);

        // Epoch 2: realtime still holds the capacity.
        let report = fleet.drive_epoch().unwrap();
        assert_eq!(report.by_class[PriorityClass::Realtime.index()].steps, 4);
        assert_eq!(report.by_class[PriorityClass::BestEffort.index()].steps, 0);
        assert_eq!(fleet.peek(rt).unwrap().backlog, 0);

        // Epoch 3: realtime is drained, so capacity flows down.
        let report = fleet.drive_epoch().unwrap();
        assert_eq!(report.by_class[PriorityClass::Realtime.index()].sessions, 0);
        assert_eq!(report.by_class[PriorityClass::BestEffort.index()].steps, 4);
        assert_eq!(fleet.peek(be_plain).unwrap().backlog, 4);
    }

    #[test]
    fn per_session_quanta_weight_service_within_a_class() {
        let sched = scheduler(2);
        let mut fleet = Fleet::new(&sched, config(3, 64));
        let light = fleet
            .admit(
                SessionSpec::new(sense_chain(1))
                    .with_class(PriorityClass::Interactive)
                    .with_quantum(NonZeroU32::new(1).unwrap()),
            )
            .unwrap();
        let heavy = fleet
            .admit(
                SessionSpec::new(sense_chain(2))
                    .with_class(PriorityClass::Interactive)
                    .with_quantum(NonZeroU32::new(5).unwrap()),
            )
            .unwrap();
        let default = fleet
            .admit(SessionSpec::new(sense_chain(3)).with_class(PriorityClass::Interactive))
            .unwrap();
        for id in [light, heavy, default] {
            fleet.request(id, 10).unwrap();
        }
        let report = fleet.drive_epoch().unwrap();
        assert_eq!(fleet.peek(light).unwrap().steps, 1, "declared weight 1");
        assert_eq!(fleet.peek(heavy).unwrap().steps, 5, "declared weight 5");
        assert_eq!(fleet.peek(default).unwrap().steps, 3, "fleet default");
        assert_eq!(report.by_class[PriorityClass::Interactive.index()].steps, 9);
        assert_eq!(report.starved, 0);
    }

    #[test]
    fn deadline_budgets_count_misses_per_class_without_obs() {
        // An unobserved fleet: only deadline budgets force step timing.
        let sched = scheduler(1);
        let mut fleet = Fleet::new(&sched, config(8, 64));
        let strict = fleet
            .admit(
                SessionSpec::new(sense_chain(1))
                    .with_class(PriorityClass::Realtime)
                    .with_deadline_ns(0),
            )
            .unwrap();
        let lax = fleet
            .admit(
                SessionSpec::new(sense_chain(2))
                    .with_class(PriorityClass::Interactive)
                    .with_deadline_ns(u64::MAX),
            )
            .unwrap();
        let unbudgeted = fleet.admit(SessionSpec::new(sense_chain(3))).unwrap();
        for id in [strict, lax, unbudgeted] {
            fleet.request(id, 5).unwrap();
        }
        let report = fleet.drive_epoch().unwrap();
        assert_eq!(report.steps, 15);
        assert_eq!(report.deadline_misses, 5, "a zero budget misses every step");
        assert_eq!(
            report.by_class[PriorityClass::Realtime.index()].deadline_misses,
            5
        );
        assert_eq!(
            report.by_class[PriorityClass::Interactive.index()].deadline_misses,
            0
        );
        assert_eq!(
            report.by_class[PriorityClass::BestEffort.index()].deadline_misses,
            0
        );
        assert_eq!(fleet.peek(strict).unwrap().deadline_misses, 5);
        assert_eq!(fleet.peek(lax).unwrap().deadline_misses, 0);
        let evicted = fleet.evict(strict).unwrap();
        assert_eq!(evicted.deadline_misses, 5);
        assert_eq!(evicted.class, PriorityClass::Realtime);
    }

    #[test]
    fn a_session_frozen_by_a_first_step_error_is_not_starved() {
        let sched = scheduler(1);
        let mut fleet = Fleet::new(&sched, config(4, 64));
        // Width-mismatched conceal: fails on the very first step, so
        // the session ends the epoch with zero steps and zero shed.
        let bad = Pipeline::new()
            .with_stage(SenseStage::new(2, 16, 10, 1, IntentSchedule::FigureEight).unwrap())
            .with_stage(ConcealStage::new(8, DegradePolicy::ZeroFill).unwrap());
        let bad_id = fleet.admit(SessionSpec::new(bad)).unwrap();
        let good_id = fleet.admit(SessionSpec::new(sense_chain(2))).unwrap();
        fleet.request(bad_id, 4).unwrap();
        fleet.request(good_id, 4).unwrap();
        assert!(fleet.drive_epoch().is_err());
        // The error epoch's accounting survives on the fleet: the
        // frozen session is served-and-failed, not starved.
        let report = fleet.last_epoch();
        assert_eq!(report.sessions, 2);
        assert_eq!(report.steps, 4, "the healthy session still ran");
        assert_eq!(report.starved, 0, "frozen-by-error is not starvation");
        assert_eq!(
            report.by_class[PriorityClass::BestEffort.index()].starved,
            0
        );
    }

    #[test]
    fn shed_work_is_bounded_per_epoch_with_an_exact_ledger() {
        let sched = scheduler(1);
        let mut fleet = Fleet::new(
            &sched,
            FleetConfig {
                quantum: NonZeroU32::new(2).unwrap(),
                max_backlog: 64,
                shed_quantum: NonZeroU32::new(3).unwrap(),
                ..FleetConfig::default()
            },
        );
        let id = fleet.admit(sheddable_chain(7)).unwrap();
        let accepted = fleet.request(id, 20).unwrap();
        assert_eq!(accepted, 20);
        let mut total_steps = 0;
        let mut total_shed = 0;
        let mut epochs = 0;
        while fleet.peek(id).unwrap().backlog > 0 {
            let report = fleet.drive_epoch().unwrap();
            assert!(report.shed <= 3, "shed quantum bounds each epoch");
            total_steps += report.steps;
            total_shed += report.shed;
            epochs += 1;
            // Conservation holds at every epoch boundary.
            let peek = fleet.peek(id).unwrap();
            assert_eq!(
                total_steps + total_shed + u64::from(peek.backlog),
                u64::from(accepted)
            );
            assert!(epochs <= 20, "the backlog must drain");
        }
        assert_eq!(epochs, 4, "draining 5 per epoch (2 real + 3 shed)");
        assert_eq!(total_steps, 8);
        assert_eq!(total_shed, 12);
        let report = fleet.evict(id).unwrap();
        assert_eq!(report.steps, 8);
        assert_eq!(report.shed, 12);
        let faults = report.telemetry.last().unwrap().faults.unwrap();
        assert_eq!(faults.degraded, 12, "every shed step concealed, none lost");
    }
}
