//! Minimal CSV writing (RFC 4180-style quoting) for experiment series.

use core::fmt;

/// An in-memory CSV document with a fixed header.
#[derive(Debug, Clone, PartialEq)]
pub struct Csv {
    columns: usize,
    buffer: String,
    rows: usize,
}

impl Csv {
    /// Creates a document with the given header row.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty — a CSV without columns is a logic
    /// error at the call site.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        assert!(!headers.is_empty(), "CSV needs at least one column");
        let mut doc = Self {
            columns: headers.len(),
            buffer: String::new(),
            rows: 0,
        };
        doc.write_row(headers.iter().map(|h| field(h)));
        doc
    }

    /// Appends a row of display-able cells.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header width.
    pub fn push<T: fmt::Display>(&mut self, cells: &[T]) {
        assert_eq!(
            cells.len(),
            self.columns,
            "row width {} != header width {}",
            cells.len(),
            self.columns
        );
        self.write_row(cells.iter().map(|c| field(&c.to_string())));
        self.rows += 1;
    }

    /// Appends a row of raw numeric cells with full precision.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header width.
    pub fn push_numbers(&mut self, cells: &[f64]) {
        assert_eq!(cells.len(), self.columns);
        self.write_row(cells.iter().map(|c| format!("{c}")));
        self.rows += 1;
    }

    fn write_row(&mut self, cells: impl Iterator<Item = String>) {
        let mut first = true;
        for cell in cells {
            if !first {
                self.buffer.push(',');
            }
            first = false;
            self.buffer.push_str(&cell);
        }
        self.buffer.push('\n');
    }

    /// Number of data rows (excluding the header).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The document text.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.buffer
    }
}

impl fmt::Display for Csv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.buffer)
    }
}

/// Quotes a field when needed.
fn field(raw: &str) -> String {
    if raw.contains(',') || raw.contains('"') || raw.contains('\n') {
        format!("\"{}\"", raw.replace('"', "\"\""))
    } else {
        raw.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_rows() {
        let mut csv = Csv::new(&["n", "power_mw"]);
        csv.push(&["1024", "38.9"]);
        csv.push_numbers(&[2048.0, 77.8]);
        assert_eq!(csv.rows(), 2);
        let text = csv.to_string();
        assert!(text.starts_with("n,power_mw\n"));
        assert!(text.contains("1024,38.9\n"));
        assert!(text.contains("2048,77.8\n"));
    }

    #[test]
    fn fields_with_commas_are_quoted() {
        let mut csv = Csv::new(&["name", "value"]);
        csv.push(&["Muller et al., scaled", "1"]);
        assert!(csv.as_str().contains("\"Muller et al., scaled\",1"));
    }

    #[test]
    fn quotes_are_escaped() {
        let mut csv = Csv::new(&["a"]);
        csv.push(&["say \"hi\""]);
        assert!(csv.as_str().contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut csv = Csv::new(&["a", "b"]);
        csv.push(&["only one"]);
    }
}
