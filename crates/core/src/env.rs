//! Shared environment-knob parsing.
//!
//! Every boolean `MINDFUL_*` knob (`MINDFUL_SOAK_QUICK`,
//! `MINDFUL_BENCH_QUICK`, `MINDFUL_OBS`, …) goes through one parser so
//! they all accept the same spellings and — crucially — all *reject*
//! garbage the same way: an unparsable value defers to the knob's
//! built-in default instead of being silently (mis)interpreted. This
//! extends the `MINDFUL_SWEEP_THREADS` fix pattern
//! ([`crate::pool::thread_override`]): pure parser split from the
//! environment read, so the garbage paths are testable without racing
//! on the process environment. The full knob table lives in
//! EXPERIMENTS.md.

/// Parses a boolean knob value.
///
/// Accepted (case-insensitive, surrounding whitespace ignored):
/// `1` / `true` / `on` / `yes` → `Some(true)`;
/// `0` / `false` / `off` / `no` → `Some(false)`.
/// Everything else — empty strings included — returns `None`.
#[must_use]
pub fn parse_flag(raw: &str) -> Option<bool> {
    let trimmed = raw.trim();
    if trimmed.eq_ignore_ascii_case("1")
        || trimmed.eq_ignore_ascii_case("true")
        || trimmed.eq_ignore_ascii_case("on")
        || trimmed.eq_ignore_ascii_case("yes")
    {
        Some(true)
    } else if trimmed.eq_ignore_ascii_case("0")
        || trimmed.eq_ignore_ascii_case("false")
        || trimmed.eq_ignore_ascii_case("off")
        || trimmed.eq_ignore_ascii_case("no")
    {
        Some(false)
    } else {
        None
    }
}

/// Reads the boolean knob `name` from the environment, falling back to
/// `default` when the variable is unset or fails [`parse_flag`].
#[must_use]
pub fn flag(name: &str, default: bool) -> bool {
    std::env::var(name)
        .ok()
        .as_deref()
        .and_then(parse_flag)
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flag_accepts_the_documented_spellings() {
        for on in ["1", "true", "TRUE", "on", "On", "yes", " 1 ", "\ttrue\n"] {
            assert_eq!(parse_flag(on), Some(true), "{on:?}");
        }
        for off in ["0", "false", "FALSE", "off", "Off", "no", " 0 "] {
            assert_eq!(parse_flag(off), Some(false), "{off:?}");
        }
    }

    /// The audit contract: garbage never flips a knob — it defers to
    /// the default.
    #[test]
    fn parse_flag_rejects_garbage() {
        for garbage in [
            "", "   ", "\t", "2", "-1", "10", "yep", "enable", "quick", "0.0", "true!", "on off",
        ] {
            assert_eq!(parse_flag(garbage), None, "{garbage:?}");
        }
    }

    #[test]
    fn flag_falls_back_to_the_default_when_unset() {
        // A name no test environment sets; both defaults pass through.
        assert!(flag("MINDFUL_TEST_KNOB_THAT_IS_NEVER_SET", true));
        assert!(!flag("MINDFUL_TEST_KNOB_THAT_IS_NEVER_SET", false));
    }
}
