//! The paper's five headline insights (Section 1), checked against the
//! reproduced pipeline. Each test cites the claim it verifies.

use mindful_core::prelude::*;
use mindful_dnn::prelude::*;
use mindful_rf::prelude::*;

fn anchors() -> Vec<SplitDesign> {
    mindful_core::regimes::standard_split_designs()
}

/// Claim 1: "To stream raw neural data at higher rates, scaling
/// communication components with channel count would either exceed
/// safety limits or reduce sensing capacity."
#[test]
fn claim1_raw_streaming_does_not_scale() {
    for anchor in anchors() {
        // High-margin (power-scaled comm): eventually exceeds the budget.
        let exceeds = anchor
            .project(ScalingRegime::HighMargin, 1 << 17)
            .unwrap()
            .budget_utilization()
            > 1.0;
        assert!(exceeds, "{}", anchor.scaled().name());
        // Naive (area-scaled comm): sensing area fraction never improves,
        // i.e., sensing capacity per unit area is sacrificed.
        let f0 = anchor
            .project(ScalingRegime::Naive, 1024)
            .unwrap()
            .sensing_area_fraction();
        let f1 = anchor
            .project(ScalingRegime::Naive, 1 << 17)
            .unwrap()
            .sensing_area_fraction();
        assert!((f0 - f1).abs() < 1e-9, "{}", anchor.scaled().name());
    }
}

/// Claim 2: "Advanced modulation schemes can help support higher
/// transmission data rates, but achieving this in practice faces
/// significant design challenges" — at realistic efficiency the channel
/// gain is ~2x; even ideal QAM cannot stream at unbounded scale.
#[test]
fn claim2_qam_helps_but_is_bounded() {
    let link = LinkBudget::paper_nominal();
    for anchor in anchors() {
        let at_current =
            max_channels_at_efficiency(&anchor, CURRENT_QAM_EFFICIENCY, &link, 128, 1 << 17)
                .unwrap();
        let at_ideal = max_channels_at_efficiency(&anchor, 1.0, &link, 128, 1 << 17).unwrap();
        if let (Some(current), Some(ideal)) = (at_current, at_ideal) {
            assert!(ideal >= current);
            // Even ideal QAM hits a wall well below brain scale.
            assert!(
                ideal < 100_000,
                "{}: ideal QAM must not stream at brain scale ({ideal})",
                anchor.scaled().name()
            );
        }
    }
}

/// Claim 3: "Modern computation with DNNs is unlikely to be integrated
/// into current implanted SoCs without major optimizations" — at twice
/// the current standard (2048 channels) almost every SoC × model pair
/// fails, and at four times none survive.
#[test]
fn claim3_dnns_do_not_scale_to_4096_unoptimized() {
    let config = IntegrationConfig::paper_45nm();
    let mut any_feasible_at_1024 = false;
    let mut feasible_at_2048 = 0_u32;
    for anchor in anchors() {
        for family in ModelFamily::ALL {
            match evaluate_full(&anchor, family, 2048, &config) {
                Ok(point) if point.is_feasible() => feasible_at_2048 += 1,
                Ok(_) | Err(DnnError::Accel(_)) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
            match evaluate_full(&anchor, family, 4096, &config) {
                Ok(point) => assert!(
                    !point.is_feasible(),
                    "{} fits {family} at 4096 — contradicts the paper",
                    anchor.scaled().name()
                ),
                Err(DnnError::Accel(_)) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
            if let Ok(p) = evaluate_full(&anchor, family, 1024, &config) {
                any_feasible_at_1024 |= p.is_feasible();
            }
        }
    }
    assert!(
        feasible_at_2048 <= 2,
        "at most a couple of the 16 SoC x model pairs survive 2048 channels:          {feasible_at_2048}"
    );
    assert!(
        any_feasible_at_1024,
        "some SoC must host a DNN at 1024 channels (SoCs 1-2 in the paper)"
    );
}

/// Claim 4: "Partitioning DNNs can help integrate more channels in the
/// short term", with benefits that vary by computation type.
#[test]
fn claim4_partitioning_gives_short_term_gains() {
    let config = IntegrationConfig::paper_45nm();
    let mut mlp_gains = Vec::new();
    let mut cnn_gains = Vec::new();
    for anchor in anchors() {
        if let Some(g) = partition_gain(&anchor, ModelFamily::Mlp, &config, 128, 1 << 14).unwrap() {
            mlp_gains.push(g);
        }
        if let Some(g) = partition_gain(&anchor, ModelFamily::DnCnn, &config, 128, 1 << 14).unwrap()
        {
            cnn_gains.push(g);
        }
    }
    let mlp_avg = mlp_gains.iter().sum::<f64>() / mlp_gains.len() as f64;
    let cnn_avg = cnn_gains.iter().sum::<f64>() / cnn_gains.len() as f64;
    assert!(
        mlp_avg > 1.05,
        "MLP partitioning helps on average: {mlp_avg:.2}"
    );
    assert!(
        mlp_avg < 2.0,
        "but the benefit is short-term, not a fix: {mlp_avg:.2}"
    );
    assert!(cnn_avg < mlp_avg, "benefits vary by computation type");
}

/// Claim 5: "Bridging the gap requires tailoring BCI systems to
/// application needs" — the combined Section 6.2 optimizations recover
/// far more feasible model capacity than any single step.
#[test]
fn claim5_combined_optimizations_compound() {
    let anchor = &anchors()[0]; // BISC
    let channels = 4096;
    let step = 32;
    let base = mindful_dnn::integration::max_active_channels(
        anchor,
        ModelFamily::Mlp,
        channels,
        &IntegrationConfig::paper_45nm(),
        step,
    )
    .unwrap()
    .unwrap_or(0);
    let optimized = mindful_dnn::partition::max_active_channels_partitioned(
        anchor,
        ModelFamily::Mlp,
        channels,
        &IntegrationConfig::paper_12nm(),
        step,
    )
    .unwrap()
    .unwrap_or(0);
    assert!(
        optimized as f64 >= base as f64 * 1.5,
        "La+Tech on top of ChDr must compound: {base} -> {optimized}"
    );
}

/// The scaling context of Section 2.3: DNN compute grows faster than the
/// data rate it processes (the curse of dimensionality), which is why
/// computation-centric designs eventually lose to their own models.
#[test]
fn dnn_compute_outpaces_data_rate() {
    for family in ModelFamily::ALL {
        let macs_1x = family.architecture(1024).unwrap().macs() as f64;
        let macs_4x = family.architecture(4096).unwrap().macs() as f64;
        let data_growth = 4.0;
        assert!(
            macs_4x / macs_1x > 2.0 * data_growth,
            "{family}: compute grows {}x for 4x data",
            macs_4x / macs_1x
        );
    }
}
