//! # MINDFUL thermal — bio-heat safety substrate
//!
//! The 40 mW/cm² power-density limit of Section 3.2 comes from thermal
//! physiology: perfused brain tissue must not warm more than 1–2 °C.
//! This crate makes that connection explicit with a steady-state Pennes
//! bio-heat model of a flat subdural implant dissipating a uniform heat
//! flux into perfused cortex:
//!
//! ```text
//! k·T''(x) − ρ_b·c_b·ω·(T − T_a) + q = 0
//! ```
//!
//! Both the closed-form half-space solution and a finite-difference
//! solver are provided; they cross-validate each other in the tests, and
//! the paper's 40 mW/cm² limit lands in the 1–2 °C band once the flux
//! split between cortex and the CSF above the implant is accounted for.
//!
//! ## Quick start
//!
//! ```
//! use mindful_thermal::prelude::*;
//! use mindful_core::budget::SAFE_POWER_DENSITY;
//!
//! let tissue = TissueProperties::gray_matter();
//! let model = ImplantThermalModel::new(tissue, FluxSplit::DualSided)?;
//! let dt = model.surface_temperature_rise(SAFE_POWER_DENSITY);
//! assert!(dt > 0.5 && dt < 2.5, "40 mW/cm^2 sits in the 1-2 C band: {dt}");
//! # Ok::<(), mindful_thermal::ThermalError>(())
//! ```

use core::fmt;

use mindful_core::units::PowerDensity;

/// Errors produced by the thermal model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ThermalError {
    /// A physical parameter failed validation.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The finite-difference grid was too small.
    GridTooSmall {
        /// Nodes requested.
        nodes: usize,
    },
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter { name, value } => {
                write!(f, "parameter `{name}` is invalid: {value}")
            }
            Self::GridTooSmall { nodes } => {
                write!(
                    f,
                    "finite-difference grid needs at least 8 nodes, got {nodes}"
                )
            }
        }
    }
}

impl std::error::Error for ThermalError {}

/// Convenience alias for results in this crate.
pub type Result<T, E = ThermalError> = core::result::Result<T, E>;

/// Thermophysical properties of perfused tissue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TissueProperties {
    /// Thermal conductivity in W/(m·K).
    pub conductivity: f64,
    /// Blood density in kg/m³.
    pub blood_density: f64,
    /// Blood specific heat in J/(kg·K).
    pub blood_specific_heat: f64,
    /// Volumetric perfusion rate in 1/s.
    pub perfusion: f64,
}

impl TissueProperties {
    /// Cortical gray matter with its characteristically high blood flow
    /// (~60 mL/100 g/min), per the bio-heat literature cited in
    /// Section 3.2.
    #[must_use]
    pub fn gray_matter() -> Self {
        Self {
            conductivity: 0.52,
            blood_density: 1050.0,
            blood_specific_heat: 3600.0,
            perfusion: 0.0104,
        }
    }

    /// White matter: lower perfusion (~20 mL/100 g/min).
    #[must_use]
    pub fn white_matter() -> Self {
        Self {
            perfusion: 0.0035,
            ..Self::gray_matter()
        }
    }

    /// Validates the properties.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for non-positive
    /// values.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("conductivity", self.conductivity),
            ("blood density", self.blood_density),
            ("blood specific heat", self.blood_specific_heat),
            ("perfusion", self.perfusion),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(ThermalError::InvalidParameter { name, value: v });
            }
        }
        Ok(())
    }

    /// The Pennes sink coefficient `ρ_b · c_b · ω` in W/(m³·K).
    #[must_use]
    pub fn sink_coefficient(&self) -> f64 {
        self.blood_density * self.blood_specific_heat * self.perfusion
    }

    /// The thermal penetration depth `L = √(k / (ρ_b c_b ω))` in metres.
    #[must_use]
    pub fn penetration_depth(&self) -> f64 {
        (self.conductivity / self.sink_coefficient()).sqrt()
    }
}

/// How the implant's dissipated heat divides between the cortex below
/// and the CSF/dura above.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FluxSplit {
    /// All heat enters the cortex (worst case).
    CortexOnly,
    /// Heat leaves both faces equally — the flat subdural form factor of
    /// Fig. 2, with CSF convection carrying the upper half away.
    DualSided,
}

impl FluxSplit {
    /// Fraction of the total flux entering the cortex.
    #[must_use]
    pub fn cortex_fraction(&self) -> f64 {
        match self {
            Self::CortexOnly => 1.0,
            Self::DualSided => 0.5,
        }
    }
}

/// Steady-state thermal model of a flat implant on perfused cortex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImplantThermalModel {
    tissue: TissueProperties,
    split: FluxSplit,
}

impl ImplantThermalModel {
    /// Creates a model.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for bad tissue
    /// properties.
    pub fn new(tissue: TissueProperties, split: FluxSplit) -> Result<Self> {
        tissue.validate()?;
        Ok(Self { tissue, split })
    }

    /// The tissue properties.
    #[must_use]
    pub fn tissue(&self) -> &TissueProperties {
        &self.tissue
    }

    /// Closed-form steady-state surface temperature rise (°C above
    /// arterial temperature) for a uniform implant power density:
    /// `ΔT = q'' · L / k` with the cortex-side flux `q''`.
    #[must_use]
    pub fn surface_temperature_rise(&self, density: PowerDensity) -> f64 {
        let flux = density.watts_per_square_meter() * self.split.cortex_fraction();
        flux * self.tissue.penetration_depth() / self.tissue.conductivity
    }

    /// Temperature rise at depth `x` metres below the implant:
    /// `ΔT(x) = ΔT(0) · e^{−x/L}`.
    #[must_use]
    pub fn temperature_rise_at_depth(&self, density: PowerDensity, depth_m: f64) -> f64 {
        self.surface_temperature_rise(density)
            * (-depth_m.max(0.0) / self.tissue.penetration_depth()).exp()
    }

    /// The maximum power density that keeps the surface rise at or below
    /// `max_rise_c` — the inverse safety question.
    #[must_use]
    pub fn safe_power_density(&self, max_rise_c: f64) -> PowerDensity {
        let per_unit =
            self.surface_temperature_rise(PowerDensity::from_watts_per_square_meter(1.0));
        PowerDensity::from_watts_per_square_meter(max_rise_c.max(0.0) / per_unit)
    }

    /// Finite-difference steady-state solve over a tissue slab of
    /// `depth_m` with `nodes` grid points: surface flux boundary at the
    /// implant, arterial temperature at the far end. Returns the
    /// temperature-rise profile from the surface down.
    ///
    /// Used by the tests to validate the closed form; exposed for
    /// callers who want profiles with finite domains.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::GridTooSmall`] for fewer than 8 nodes.
    /// * [`ThermalError::InvalidParameter`] for a non-positive depth.
    pub fn solve_profile(
        &self,
        density: PowerDensity,
        depth_m: f64,
        nodes: usize,
    ) -> Result<Vec<f64>> {
        if nodes < 8 {
            return Err(ThermalError::GridTooSmall { nodes });
        }
        if !(depth_m > 0.0 && depth_m.is_finite()) {
            return Err(ThermalError::InvalidParameter {
                name: "depth",
                value: depth_m,
            });
        }
        let flux = density.watts_per_square_meter() * self.split.cortex_fraction();
        let k = self.tissue.conductivity;
        let s = self.tissue.sink_coefficient();
        let h = depth_m / (nodes - 1) as f64;

        // Tridiagonal system for k·T'' − s·T = 0 with:
        //   node 0 (surface): flux boundary over a half control volume;
        //   node N−1: T = 0 (arterial far field).
        let mut lower = vec![0.0; nodes];
        let mut diag = vec![0.0; nodes];
        let mut upper = vec![0.0; nodes];
        let mut rhs = vec![0.0; nodes];
        diag[0] = k / h + s * h / 2.0;
        upper[0] = -k / h;
        rhs[0] = flux;
        for i in 1..nodes - 1 {
            lower[i] = -k / (h * h);
            diag[i] = 2.0 * k / (h * h) + s;
            upper[i] = -k / (h * h);
        }
        diag[nodes - 1] = 1.0;
        // Thomas algorithm.
        for i in 1..nodes {
            let w = lower[i] / diag[i - 1];
            diag[i] -= w * upper[i - 1];
            rhs[i] -= w * rhs[i - 1];
        }
        let mut t = vec![0.0; nodes];
        t[nodes - 1] = rhs[nodes - 1] / diag[nodes - 1];
        for i in (0..nodes - 1).rev() {
            t[i] = (rhs[i] - upper[i] * t[i + 1]) / diag[i];
        }
        Ok(t)
    }
}

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::{FluxSplit, ImplantThermalModel, Result, ThermalError, TissueProperties};
}

#[cfg(test)]
mod tests {
    use super::*;
    use mindful_core::budget::SAFE_POWER_DENSITY;

    fn model(split: FluxSplit) -> ImplantThermalModel {
        ImplantThermalModel::new(TissueProperties::gray_matter(), split).unwrap()
    }

    #[test]
    fn penetration_depth_is_a_few_millimetres() {
        let l = TissueProperties::gray_matter().penetration_depth();
        assert!((2e-3..6e-3).contains(&l), "L = {l} m");
    }

    #[test]
    fn paper_limit_sits_in_the_one_to_two_degree_band() {
        let dt = model(FluxSplit::DualSided).surface_temperature_rise(SAFE_POWER_DENSITY);
        assert!((0.8..=2.2).contains(&dt), "40 mW/cm^2 -> {dt} C");
    }

    #[test]
    fn cortex_only_doubles_the_dual_sided_rise() {
        let d = PowerDensity::from_milliwatts_per_square_centimeter(20.0);
        let dual = model(FluxSplit::DualSided).surface_temperature_rise(d);
        let single = model(FluxSplit::CortexOnly).surface_temperature_rise(d);
        assert!((single / dual - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rise_is_linear_in_power_density() {
        let m = model(FluxSplit::DualSided);
        let d1 =
            m.surface_temperature_rise(PowerDensity::from_milliwatts_per_square_centimeter(10.0));
        let d4 =
            m.surface_temperature_rise(PowerDensity::from_milliwatts_per_square_centimeter(40.0));
        assert!((d4 / d1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn rise_decays_with_depth() {
        let m = model(FluxSplit::CortexOnly);
        let d = SAFE_POWER_DENSITY;
        let surface = m.temperature_rise_at_depth(d, 0.0);
        let deep = m.temperature_rise_at_depth(d, 0.01);
        assert!((surface - m.surface_temperature_rise(d)).abs() < 1e-12);
        assert!(deep < surface * 0.1, "1 cm deep: {deep} vs {surface}");
    }

    #[test]
    fn safe_power_density_inverts_the_rise() {
        let m = model(FluxSplit::DualSided);
        let limit = m.safe_power_density(1.0);
        let back = m.surface_temperature_rise(limit);
        assert!((back - 1.0).abs() < 1e-9);
        // A 1 C cap permits a density in the tens of mW/cm².
        let mw = limit.milliwatts_per_square_centimeter();
        assert!((10.0..=80.0).contains(&mw), "{mw} mW/cm^2");
    }

    #[test]
    fn white_matter_runs_hotter_than_gray() {
        // Less perfusion → less heat removal → higher rise.
        let gray = model(FluxSplit::CortexOnly);
        let white =
            ImplantThermalModel::new(TissueProperties::white_matter(), FluxSplit::CortexOnly)
                .unwrap();
        let d = SAFE_POWER_DENSITY;
        assert!(white.surface_temperature_rise(d) > gray.surface_temperature_rise(d));
    }

    #[test]
    fn finite_difference_matches_closed_form() {
        let m = model(FluxSplit::CortexOnly);
        let d = SAFE_POWER_DENSITY;
        // Domain of 10 penetration depths ≈ semi-infinite.
        let depth = 10.0 * m.tissue().penetration_depth();
        let profile = m.solve_profile(d, depth, 4001).unwrap();
        let analytic = m.surface_temperature_rise(d);
        let rel = (profile[0] - analytic).abs() / analytic;
        assert!(rel < 0.01, "FD {} vs analytic {analytic}", profile[0]);
        // The profile decays monotonically.
        for pair in profile.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-12);
        }
        // And matches the exponential at one penetration depth.
        let idx = 400; // = depth L on this grid (4000 steps / 10 L)
        let expected = analytic * (-1.0_f64).exp();
        assert!((profile[idx] - expected).abs() / expected < 0.02);
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        let mut bad = TissueProperties::gray_matter();
        bad.conductivity = 0.0;
        assert!(ImplantThermalModel::new(bad, FluxSplit::CortexOnly).is_err());
        let m = model(FluxSplit::CortexOnly);
        assert!(m.solve_profile(SAFE_POWER_DENSITY, 0.01, 4).is_err());
        assert!(m.solve_profile(SAFE_POWER_DENSITY, -1.0, 100).is_err());
    }

    #[test]
    fn error_display_and_traits() {
        let e = ThermalError::GridTooSmall { nodes: 4 };
        assert!(e.to_string().contains('4'));
        fn check<T: std::error::Error + Send + Sync + 'static>() {}
        check::<ThermalError>();
    }
}
