//! MAC workload descriptions (Section 5.3, Fig. 8).
//!
//! A DNN layer decomposes into `#MACop` *independent* multiply-accumulate
//! sequences, each `MACseq` steps long. All sequences of one layer can
//! run in parallel; steps within a sequence are serial. A network is then
//! just an ordered list of per-layer workloads, plus the output size of
//! each layer (needed by the DNN-partitioning analysis of Section 6.1).

use core::fmt;

use crate::error::{AccelError, Result};

/// The MAC decomposition of one DNN layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacWorkload {
    ops: u64,
    seq: u64,
    outputs: u64,
}

impl MacWorkload {
    /// Creates a layer workload of `ops` independent sequences of length
    /// `seq`, producing `outputs` digitized output values.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::EmptyWorkload`] if any field is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use mindful_accel::workload::MacWorkload;
    ///
    /// // Fig. 8 (top): A(4×3) · B(3×4) per-row decomposition:
    /// // 4 independent MAC sequences of 3 steps each.
    /// let layer = MacWorkload::new(4, 3, 4)?;
    /// assert_eq!(layer.total_macs(), 12);
    /// # Ok::<(), mindful_accel::AccelError>(())
    /// ```
    pub fn new(ops: u64, seq: u64, outputs: u64) -> Result<Self> {
        if ops == 0 || seq == 0 || outputs == 0 {
            return Err(AccelError::EmptyWorkload);
        }
        Ok(Self { ops, seq, outputs })
    }

    /// The workload of a fully-connected layer mapping `inputs` values to
    /// `outputs` values: one sequence per output, each `inputs` steps.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::EmptyWorkload`] if either size is zero.
    pub fn dense(inputs: u64, outputs: u64) -> Result<Self> {
        Self::new(outputs, inputs, outputs)
    }

    /// The workload of a 1-D convolution with `in_channels × positions`
    /// input, `out_channels` filters of width `kernel`: every output
    /// element is an independent sequence of `kernel · in_channels`
    /// steps.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::EmptyWorkload`] if any dimension is zero.
    pub fn conv1d(
        in_channels: u64,
        out_channels: u64,
        kernel: u64,
        output_positions: u64,
    ) -> Result<Self> {
        let outputs = out_channels
            .checked_mul(output_positions)
            .ok_or(AccelError::EmptyWorkload)?;
        Self::new(outputs, kernel * in_channels, outputs)
    }

    /// Number of independent MAC sequences (`#MACop`).
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Steps per sequence (`MACseq`).
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Digitized output values this layer produces (`n_out` for the last
    /// layer; intermediate activation counts for partitioning).
    #[must_use]
    pub fn outputs(&self) -> u64 {
        self.outputs
    }

    /// Total multiply-accumulate steps: `#MACop × MACseq`.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.ops.saturating_mul(self.seq)
    }

    /// ROM words needed if every PE stores the weights of the sequences
    /// it executes: one word per MAC step it can be assigned.
    #[must_use]
    pub fn weights(&self) -> u64 {
        self.total_macs()
    }
}

impl fmt::Display for MacWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ops x {} steps ({} outputs)",
            self.ops, self.seq, self.outputs
        )
    }
}

/// An ordered multi-layer MAC workload (one entry per DNN layer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkWorkload {
    layers: Vec<MacWorkload>,
}

impl NetworkWorkload {
    /// Creates a network from per-layer workloads.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::EmptyWorkload`] for an empty layer list.
    pub fn new(layers: Vec<MacWorkload>) -> Result<Self> {
        if layers.is_empty() {
            return Err(AccelError::EmptyWorkload);
        }
        Ok(Self { layers })
    }

    /// The per-layer workloads in execution order.
    #[must_use]
    pub fn layers(&self) -> &[MacWorkload] {
        &self.layers
    }

    /// Number of layers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers (never true for a constructed
    /// value; present for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total MAC steps across all layers.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(MacWorkload::total_macs).sum()
    }

    /// Output size of the final layer (`n_out` of Eq. 8).
    #[must_use]
    pub fn final_outputs(&self) -> u64 {
        self.layers.last().map_or(0, MacWorkload::outputs)
    }

    /// The network truncated after `keep` layers (for DNN partitioning):
    /// the implant runs layers `0..keep`, the wearable runs the rest.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::EmptyWorkload`] when `keep` is zero or
    /// exceeds the layer count.
    pub fn prefix(&self, keep: usize) -> Result<Self> {
        if keep == 0 || keep > self.layers.len() {
            return Err(AccelError::EmptyWorkload);
        }
        Ok(Self {
            layers: self.layers[..keep].to_vec(),
        })
    }

    /// The largest `#MACop` across layers — the maximum useful number of
    /// shared MAC units for non-pipelined execution (Eq. 12).
    #[must_use]
    pub fn max_ops(&self) -> u64 {
        self.layers.iter().map(MacWorkload::ops).max().unwrap_or(0)
    }
}

impl fmt::Display for NetworkWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} layers, {} MACs total, {} outputs",
            self.len(),
            self.total_macs(),
            self.final_outputs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_matrix_example() {
        // A(4×3) · B(3×4): #MACop = 4, MACseq = 3.
        let w = MacWorkload::new(4, 3, 4).unwrap();
        assert_eq!(w.ops(), 4);
        assert_eq!(w.seq(), 3);
        assert_eq!(w.total_macs(), 12);
    }

    #[test]
    fn dense_layer_shape() {
        let w = MacWorkload::dense(256, 40).unwrap();
        assert_eq!(w.ops(), 40);
        assert_eq!(w.seq(), 256);
        assert_eq!(w.outputs(), 40);
        assert_eq!(w.total_macs(), 256 * 40);
    }

    #[test]
    fn conv1d_layer_shape() {
        // 2 in-channels, 1 out-channel, kernel 4, 4 output positions.
        let w = MacWorkload::conv1d(2, 1, 4, 4).unwrap();
        assert_eq!(w.ops(), 4);
        assert_eq!(w.seq(), 8);
        assert_eq!(w.outputs(), 4);
        assert_eq!(w.total_macs(), 32);
    }

    #[test]
    fn zero_dimensions_rejected() {
        assert!(MacWorkload::new(0, 1, 1).is_err());
        assert!(MacWorkload::new(1, 0, 1).is_err());
        assert!(MacWorkload::new(1, 1, 0).is_err());
        assert!(MacWorkload::dense(0, 10).is_err());
        assert!(MacWorkload::conv1d(1, 0, 3, 8).is_err());
    }

    #[test]
    fn network_aggregates() {
        let net = NetworkWorkload::new(vec![
            MacWorkload::dense(128, 64).unwrap(),
            MacWorkload::dense(64, 40).unwrap(),
        ])
        .unwrap();
        assert_eq!(net.len(), 2);
        assert!(!net.is_empty());
        assert_eq!(net.total_macs(), 128 * 64 + 64 * 40);
        assert_eq!(net.final_outputs(), 40);
        assert_eq!(net.max_ops(), 64);
    }

    #[test]
    fn prefix_truncates_for_partitioning() {
        let net = NetworkWorkload::new(vec![
            MacWorkload::dense(128, 64).unwrap(),
            MacWorkload::dense(64, 32).unwrap(),
            MacWorkload::dense(32, 40).unwrap(),
        ])
        .unwrap();
        let head = net.prefix(2).unwrap();
        assert_eq!(head.len(), 2);
        assert_eq!(head.final_outputs(), 32);
        assert!(net.prefix(0).is_err());
        assert!(net.prefix(4).is_err());
        assert_eq!(net.prefix(3).unwrap(), net);
    }

    #[test]
    fn empty_network_rejected() {
        assert!(NetworkWorkload::new(vec![]).is_err());
    }

    #[test]
    fn display_formats() {
        let w = MacWorkload::dense(8, 4).unwrap();
        assert_eq!(w.to_string(), "4 ops x 8 steps (4 outputs)");
        let net = NetworkWorkload::new(vec![w]).unwrap();
        assert!(net.to_string().contains("1 layers"));
    }
}
