//! Benchmarks for the zero-allocation inference engine: blocked vs.
//! naive kernels on a single sample, and batched forward over the
//! shared worker pool.
//!
//! `report_infer_acceptance` doubles as the acceptance gate: it asserts
//! the blocked single-sample path is at least 2x the naive oracle and
//! that the batched path scales with threads (when the machine has
//! them), and writes the measured medians to
//! `results/bench/BENCH_infer.json`. Set `MINDFUL_BENCH_QUICK=1` (as CI
//! does) to shrink iteration counts.

use std::hint::black_box;
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use mindful_core::pool::default_threads;
use mindful_dnn::infer::Network;
use mindful_dnn::kernels::{dense_into_at, transpose_dense};
use mindful_dnn::models::{ModelFamily, BASE_CHANNELS};
use mindful_dnn::quant::QuantizedNetwork;
use mindful_dnn::simd::{self, SimdLevel};

/// Channel count for the batch-scaling model (α = 2 MLP, ~2.6M MACs —
/// heavy enough that fan-out dominates thread spawn cost).
const BATCH_CHANNELS: u64 = 256;
const BATCH_SAMPLES: usize = 48;

fn quick() -> bool {
    mindful_core::env::bench_quick()
}

fn network(channels: u64) -> Network {
    let arch = ModelFamily::Mlp
        .architecture(channels)
        .expect("MLP builds at any supported channel count");
    Network::with_seeded_weights(arch, 7)
}

fn sample(width: usize, phase: usize) -> Vec<f32> {
    (0..width)
        .map(|i| (((i + phase) % 23) as f32 - 11.0) / 11.0)
        .collect()
}

fn batch(width: usize, count: usize) -> Vec<Vec<f32>> {
    (0..count).map(|s| sample(width, s)).collect()
}

/// Median wall time of `iters` runs of `f`, in nanoseconds per run.
fn median_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e9
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn bench_single_sample(c: &mut Criterion) {
    let net = network(BASE_CHANNELS);
    let input = sample(BASE_CHANNELS as usize, 0);
    let mut group = c.benchmark_group("infer");
    group.sample_size(if quick() { 10 } else { 40 });
    group.bench_function("naive_mlp128", |b| {
        b.iter(|| black_box(net.forward_naive(black_box(&input)).unwrap()))
    });
    group.bench_function("blocked_mlp128", |b| {
        let mut ws = net.workspace();
        b.iter(|| {
            black_box(net.forward_into(black_box(&input), &mut ws).unwrap());
        })
    });
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let net = network(BATCH_CHANNELS);
    let inputs = batch(BATCH_CHANNELS as usize, BATCH_SAMPLES);
    let mut group = c.benchmark_group("infer_batch");
    group.sample_size(10);
    group.bench_function("serial_mlp256x48", |b| {
        b.iter(|| {
            black_box(
                net.forward_batch(black_box(&inputs), NonZeroUsize::MIN)
                    .unwrap(),
            )
        })
    });
    group.bench_function("pooled_mlp256x48", |b| {
        b.iter(|| {
            black_box(
                net.forward_batch(black_box(&inputs), default_threads())
                    .unwrap(),
            )
        })
    });
    group.finish();
}

/// One-shot acceptance measurement. Asserts the performance contract
/// and records the medians as a machine-readable artifact.
fn report_infer_acceptance(_c: &mut Criterion) {
    let iters = if quick() { 60 } else { 300 };
    let net = network(BASE_CHANNELS);
    let input = sample(BASE_CHANNELS as usize, 0);

    // Warm up both paths (workspace arenas, page faults, frequency).
    let mut ws = net.workspace();
    for _ in 0..5 {
        black_box(net.forward_naive(&input).unwrap());
        black_box(net.forward_into(&input, &mut ws).unwrap());
    }
    let naive_ns = median_ns(iters, || {
        black_box(net.forward_naive(black_box(&input)).unwrap());
    });
    let blocked_ns = median_ns(iters, || {
        black_box(net.forward_into(black_box(&input), &mut ws).unwrap());
    });
    let single_speedup = naive_ns / blocked_ns;
    println!(
        "infer/single_mlp128   blocked {blocked_ns:.0} ns vs naive {naive_ns:.0} ns \
         ({single_speedup:.1}x)"
    );
    assert!(
        single_speedup >= 2.0,
        "blocked single-sample forward must be at least 2x the naive oracle, \
         got {single_speedup:.2}x ({blocked_ns:.0} ns vs {naive_ns:.0} ns)"
    );

    // SIMD kernel gate: `dense_into` on a deep narrow dense layer
    // (256 -> 16, L1-resident) under the detected level vs the blocked
    // scalar oracle — the shape where holding the output tile in
    // registers across every input row pays most, so the contract has
    // margin over run-to-run noise. Skipped with a notice when the
    // host resolves to scalar (no AVX2/NEON, or MINDFUL_SIMD=0).
    let level = simd::level();
    let (d_in, d_out) = (2 * BASE_CHANNELS as usize, 16);
    let weights_t = transpose_dense(&sample(d_in * d_out, 3), d_in, d_out);
    let dense_bias = sample(d_out, 5);
    let dense_x = sample(d_in, 9);
    let mut dense_out = vec![0.0_f32; d_out];
    const KERNEL_CALLS: usize = 32;
    let time_level = |lvl: SimdLevel, dense_out: &mut Vec<f32>| {
        for _ in 0..KERNEL_CALLS {
            dense_into_at(lvl, &dense_x, &weights_t, &dense_bias, dense_out);
        }
        median_ns(iters, || {
            for _ in 0..KERNEL_CALLS {
                dense_into_at(
                    black_box(lvl),
                    black_box(&dense_x),
                    &weights_t,
                    &dense_bias,
                    dense_out,
                );
            }
            black_box(&mut *dense_out);
        }) / KERNEL_CALLS as f64
    };
    let scalar_kernel_ns = time_level(SimdLevel::Scalar, &mut dense_out);
    let simd_kernel_ns = time_level(level, &mut dense_out);
    let simd_speedup = scalar_kernel_ns / simd_kernel_ns;
    println!(
        "infer/dense_{d_in}x{d_out}      {level} {simd_kernel_ns:.0} ns vs scalar \
         {scalar_kernel_ns:.0} ns ({simd_speedup:.1}x)"
    );
    if level == SimdLevel::Scalar {
        println!(
            "infer/dense_{d_in}x{d_out}      NOTICE: host resolved to scalar \
             (no AVX2/NEON or MINDFUL_SIMD=0); simd >= 2x gate skipped"
        );
    } else {
        assert!(
            simd_speedup >= 2.0,
            "simd dense_into must be at least 2x the blocked-scalar oracle on a \
             {level} host, got {simd_speedup:.2}x \
             ({simd_kernel_ns:.0} ns vs {scalar_kernel_ns:.0} ns)"
        );
    }

    // Int8 quantized end-to-end forward on the same model — a row, not
    // a gate: the win tracks the host's integer throughput.
    let quantized = QuantizedNetwork::from_network_default(&net).expect("the MLP is all-dense");
    let mut qws = quantized.workspace();
    for _ in 0..5 {
        black_box(quantized.forward_into(&input, &mut qws).unwrap());
    }
    let int8_ns = median_ns(iters, || {
        black_box(quantized.forward_into(black_box(&input), &mut qws).unwrap());
    });
    let int8_speedup = blocked_ns / int8_ns;
    println!(
        "infer/int8_mlp128     int8 {int8_ns:.0} ns vs f32 blocked {blocked_ns:.0} ns \
         ({int8_speedup:.1}x)"
    );

    let batch_iters = if quick() { 7 } else { 21 };
    let big = network(BATCH_CHANNELS);
    let inputs = batch(BATCH_CHANNELS as usize, BATCH_SAMPLES);
    let threads = default_threads();
    black_box(big.forward_batch(&inputs, threads).unwrap());
    let serial_ns = median_ns(batch_iters, || {
        black_box(
            big.forward_batch(black_box(&inputs), NonZeroUsize::MIN)
                .unwrap(),
        );
    });
    let pooled_ns = median_ns(batch_iters, || {
        black_box(big.forward_batch(black_box(&inputs), threads).unwrap());
    });
    let batch_speedup = serial_ns / pooled_ns;
    println!(
        "infer/batch_mlp256x48 pooled {:.2} ms vs serial {:.2} ms ({batch_speedup:.1}x on \
         {threads} threads)",
        pooled_ns / 1e6,
        serial_ns / 1e6,
    );
    if threads.get() >= 2 {
        assert!(
            batch_speedup >= 1.2,
            "batched forward must scale with threads ({threads} available), \
             got {batch_speedup:.2}x"
        );
    }

    write_artifact(&format!(
        "{{\n  \"bench\": \"infer\",\n  \"quick\": {},\n  \"single_sample\": {{\n    \
         \"model\": \"mlp\",\n    \"channels\": {BASE_CHANNELS},\n    \
         \"naive_ns_per_forward\": {naive_ns:.0},\n    \
         \"blocked_ns_per_forward\": {blocked_ns:.0},\n    \
         \"speedup\": {single_speedup:.3}\n  }},\n  \"simd\": {{\n    \
         \"kernel\": \"dense_into\",\n    \"level\": \"{level}\",\n    \
         \"inputs\": {d_in},\n    \"outputs\": {d_out},\n    \
         \"scalar_ns_per_call\": {scalar_kernel_ns:.0},\n    \
         \"simd_ns_per_call\": {simd_kernel_ns:.0},\n    \
         \"speedup\": {simd_speedup:.3}\n  }},\n  \"int8\": {{\n    \
         \"model\": \"mlp\",\n    \"channels\": {BASE_CHANNELS},\n    \
         \"f32_ns_per_forward\": {blocked_ns:.0},\n    \
         \"int8_ns_per_forward\": {int8_ns:.0},\n    \
         \"speedup\": {int8_speedup:.3}\n  }},\n  \"batch\": {{\n    \
         \"model\": \"mlp\",\n    \"channels\": {BATCH_CHANNELS},\n    \
         \"samples\": {BATCH_SAMPLES},\n    \"threads\": {},\n    \
         \"serial_ns_per_batch\": {serial_ns:.0},\n    \
         \"pooled_ns_per_batch\": {pooled_ns:.0},\n    \
         \"speedup\": {batch_speedup:.3}\n  }}\n}}\n",
        quick(),
        threads.get(),
    ));
}

/// Writes `BENCH_infer.json` under the repository's `results/bench/`.
fn write_artifact(json: &str) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results/bench");
    std::fs::create_dir_all(&dir).expect("results/bench is creatable");
    let path = dir.join("BENCH_infer.json");
    std::fs::write(&path, json).expect("BENCH_infer.json is writable");
    println!("wrote {}", path.display());
}

criterion_group!(
    benches,
    bench_single_sample,
    bench_batch,
    report_infer_acceptance
);
criterion_main!(benches);
