//! Canonical metric-name fragments shared across crates.
//!
//! The registry keys metrics by string name, so any name used from two
//! places (a recording site in `mindful-pipeline`, a scoreboard or CI
//! assertion reading a snapshot) must live in exactly one place. These
//! constants are the *leaf* names; recording sites compose them under
//! their own prefix (the pipeline uses
//! `{prefix}.{index}.{stage}.secure.{name}`).

/// Frames sealed by the authenticated sender.
pub const FRAMES_SEALED: &str = "frames_sealed";

/// Sealed frames that passed MAC + replay verification.
pub const FRAMES_ACCEPTED: &str = "frames_accepted";

/// Frames rejected by authentication (MAC mismatch, malformed
/// envelope, key mismatch) — forged traffic, never accepted.
pub const FRAMES_REJECTED_AUTH: &str = "frames_rejected_auth";

/// Authentic frames rejected because their nonce was already accepted.
pub const FRAMES_REPLAYED: &str = "frames_replayed";

/// Frames older than the replay window can vouch for.
pub const FRAMES_STALE: &str = "frames_stale";

/// Frames quarantined by the neural firewall's coherence screen.
pub const FRAMES_FIREWALLED: &str = "frames_firewalled";

/// Latest firewall coherence score, in parts-per-million of 1.0.
pub const COHERENCE_PPM: &str = "coherence_ppm";

/// Every secure leaf name, in registration order — lets a scraper or
/// test iterate the full secure gauge set without hard-coding it.
pub const SECURE_METRICS: [&str; 7] = [
    FRAMES_SEALED,
    FRAMES_ACCEPTED,
    FRAMES_REJECTED_AUTH,
    FRAMES_REPLAYED,
    FRAMES_STALE,
    FRAMES_FIREWALLED,
    COHERENCE_PPM,
];
