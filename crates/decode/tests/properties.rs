//! Property-based tests for the decoding substrate.

use mindful_decode::kalman::{correlation, KalmanDecoder};
use mindful_decode::linalg::{Mat2, Vec2};
use mindful_decode::spike::{select_active_channels, SpikeDetector};
use mindful_decode::wiener::WienerDecoder;
use proptest::prelude::*;

fn session(
    channels: usize,
    steps: usize,
    noise: f64,
    seed: u64,
) -> (Vec<Vec<f64>>, Vec<(f64, f64)>) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let gains: Vec<(f64, f64)> = (0..channels)
        .map(|_| {
            (
                rng.random::<f64>() * 2.0 - 1.0,
                rng.random::<f64>() * 2.0 - 1.0,
            )
        })
        .collect();
    let mut rows = Vec::with_capacity(steps);
    let mut intents = Vec::with_capacity(steps);
    for k in 0..steps {
        let t = k as f64 * 0.05;
        let (vx, vy) = (t.sin(), (1.3 * t).cos());
        intents.push((vx, vy));
        rows.push(
            gains
                .iter()
                .map(|&(gx, gy)| gx * vx + gy * vy + noise * (rng.random::<f64>() - 0.5))
                .collect(),
        );
    }
    (rows, intents)
}

proptest! {
    #[test]
    fn mat2_inverse_round_trips(a in -10.0_f64..10.0, b in -10.0_f64..10.0,
                                c in -10.0_f64..10.0, d in -10.0_f64..10.0) {
        let m = Mat2::new(a, b, c, d);
        prop_assume!(m.det().abs() > 1e-6);
        let inv = m.inverse().unwrap();
        let id = m.mul_mat(inv);
        prop_assert!((id.a - 1.0).abs() < 1e-6);
        prop_assert!((id.d - 1.0).abs() < 1e-6);
        prop_assert!(id.b.abs() < 1e-6 && id.c.abs() < 1e-6);
    }

    #[test]
    fn vec2_norm_triangle_inequality(
        ax in -100.0_f64..100.0, ay in -100.0_f64..100.0,
        bx in -100.0_f64..100.0, by in -100.0_f64..100.0,
    ) {
        let a = Vec2::new(ax, ay);
        let b = Vec2::new(bx, by);
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
    }

    #[test]
    fn correlation_is_bounded_and_scale_invariant(
        xs in prop::collection::vec(-100.0_f64..100.0, 4..64),
        scale in 0.1_f64..10.0,
        offset in -50.0_f64..50.0,
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| x * scale + offset).collect();
        let r = correlation(&xs, &ys);
        prop_assert!(r.abs() <= 1.0 + 1e-9);
        // Perfectly linear with positive scale → r ≈ 1 (unless degenerate).
        let spread = xs.iter().cloned().fold(f64::MIN, f64::max)
            - xs.iter().cloned().fold(f64::MAX, f64::min);
        if spread > 1e-6 {
            prop_assert!((r - 1.0).abs() < 1e-6, "r = {r}");
        }
    }

    #[test]
    fn active_channel_selection_is_sorted_and_top(
        counts in prop::collection::vec(0_u64..1000, 1..64),
        keep_frac in 0.01_f64..1.0,
    ) {
        let keep = ((counts.len() as f64 * keep_frac).ceil() as usize).clamp(1, counts.len());
        let chosen = select_active_channels(&counts, keep).unwrap();
        prop_assert_eq!(chosen.len(), keep);
        prop_assert!(chosen.windows(2).all(|w| w[0] < w[1]), "sorted unique");
        // No unchosen channel strictly beats a chosen one.
        let min_chosen = chosen.iter().map(|&i| counts[i]).min().unwrap();
        for (i, &c) in counts.iter().enumerate() {
            if !chosen.contains(&i) {
                prop_assert!(c <= min_chosen);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kalman_beats_chance_on_linear_sessions(seed in 0_u64..500, noise in 0.0_f64..0.5) {
        let (rows, intents) = session(12, 300, noise, seed);
        let mut decoder = KalmanDecoder::calibrate(&rows, &intents).unwrap();
        let decoded = decoder.decode(&rows).unwrap();
        let r = correlation(
            &decoded.iter().map(|v| v.x).collect::<Vec<_>>(),
            &intents.iter().map(|i| i.0).collect::<Vec<_>>(),
        );
        prop_assert!(r > 0.5, "correlation {r} at noise {noise}");
    }

    #[test]
    fn wiener_outputs_are_finite(seed in 0_u64..500, lambda in 0.0_f64..10.0) {
        let (rows, intents) = session(8, 200, 0.2, seed);
        let decoder = WienerDecoder::calibrate(&rows, &intents, lambda).unwrap();
        for v in decoder.decode(&rows).unwrap() {
            prop_assert!(v.x.is_finite() && v.y.is_finite());
        }
    }

    #[test]
    fn spike_detector_never_fires_during_its_own_calibration_floor(
        seed in 0_u64..200,
        k in 5.0_f64..8.0,
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let quiet: Vec<Vec<f64>> = (0..128)
            .map(|_| (0..4).map(|_| rng.random::<f64>() * 0.1).collect())
            .collect();
        let mut det = SpikeDetector::calibrate(&quiet, k, 2).unwrap();
        let counts = det.event_counts(&quiet).unwrap();
        // At >= 5 sigma on bounded uniform noise, detections are rare.
        prop_assert!(counts.iter().sum::<u64>() <= 2);
    }
}
