//! Design-space sweeping utilities.
//!
//! The paper's contribution is a framework for *exploring* the implant
//! design space; this module provides the generic machinery: sweeping a
//! design over channel counts, collecting candidate points, and
//! extracting the Pareto frontier over (channels ↑, power ↓, area ↓) —
//! the trade surface Figs. 5–7 and 10 are slices of.

use std::collections::BTreeMap;

use crate::error::{CoreError, Result};
use crate::units::{Area, Power};

/// One candidate operating point in the design space.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CandidatePoint {
    /// A caller-chosen label (e.g., "BISC @2048, QAM 20%").
    pub label: String,
    /// Channels sensed (maximize).
    pub channels: u64,
    /// Total implant power (minimize).
    pub power: Power,
    /// Brain-contact area (minimize).
    pub area: Area,
}

impl CandidatePoint {
    /// Creates a candidate.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroChannels`] for zero channels and
    /// [`CoreError::NonPositiveParameter`] for non-positive power or
    /// area.
    pub fn new(label: impl Into<String>, channels: u64, power: Power, area: Area) -> Result<Self> {
        if channels == 0 {
            return Err(CoreError::ZeroChannels);
        }
        if power.watts() <= 0.0 || !power.is_finite() {
            return Err(CoreError::NonPositiveParameter {
                name: "power",
                value: power.watts(),
            });
        }
        if area.square_meters() <= 0.0 || !area.is_finite() {
            return Err(CoreError::NonPositiveParameter {
                name: "area",
                value: area.square_meters(),
            });
        }
        Ok(Self {
            label: label.into(),
            channels,
            power,
            area,
        })
    }

    /// Whether this point dominates `other`: at least as good on every
    /// objective (more channels, less-or-equal power and area) and
    /// strictly better on at least one.
    #[must_use]
    pub fn dominates(&self, other: &CandidatePoint) -> bool {
        let ge_channels = self.channels >= other.channels;
        let le_power = self.power <= other.power;
        let le_area = self.area <= other.area;
        let strictly_better =
            self.channels > other.channels || self.power < other.power || self.area < other.area;
        ge_channels && le_power && le_area && strictly_better
    }

    /// Whether the point respects the safety power budget (Eq. 3).
    #[must_use]
    pub fn is_safe(&self) -> bool {
        crate::budget::check_safety(self.power, self.area).is_ok()
    }
}

/// Extracts the Pareto frontier (non-dominated points), preserving input
/// order among survivors.
///
/// Runs the `O(n log n)` sort-and-prune skyline below; its output is
/// exactly [`pareto_frontier_naive`]'s (same survivor set, same order),
/// which the property suite checks on random inputs.
#[must_use]
pub fn pareto_frontier(points: &[CandidatePoint]) -> Vec<CandidatePoint> {
    let mut survivors = skyline_indices(points);
    survivors.sort_unstable();
    survivors.into_iter().map(|i| points[i].clone()).collect()
}

/// The original `O(n²)` all-pairs frontier, kept as the oracle for
/// equivalence tests and benchmarks of the skyline implementation.
#[doc(hidden)]
#[must_use]
pub fn pareto_frontier_naive(points: &[CandidatePoint]) -> Vec<CandidatePoint> {
    points
        .iter()
        .filter(|p| !points.iter().any(|q| q.dominates(p)))
        .cloned()
        .collect()
}

/// `f64` ordered by `total_cmp` so it can key the skyline staircase.
/// Candidate objectives are validated finite, so the exotic orderings
/// (NaN, signed zero) never actually occur.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TotalF64(f64);

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

fn same_objectives(a: &CandidatePoint, b: &CandidatePoint) -> bool {
    a.channels == b.channels
        && a.power.watts().total_cmp(&b.power.watts()).is_eq()
        && a.area
            .square_meters()
            .total_cmp(&b.area.square_meters())
            .is_eq()
}

/// Indices of the non-dominated points, via an `O(n log n)` skyline.
///
/// Points are visited in (channels desc, power asc, area asc) order, so
/// every potential dominator of a point is visited before it. A
/// staircase maps power to the minimum area seen at or below that
/// power; a point is dominated iff the staircase already holds an entry
/// with power ≤ its power and area ≤ its area — except for points with
/// *identical* objectives, which never dominate each other and are
/// therefore processed as one group (queried together before the group
/// is inserted).
fn skyline_indices(points: &[CandidatePoint]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_unstable_by(|&a, &b| {
        let (pa, pb) = (&points[a], &points[b]);
        pb.channels
            .cmp(&pa.channels)
            .then_with(|| pa.power.watts().total_cmp(&pb.power.watts()))
            .then_with(|| pa.area.square_meters().total_cmp(&pb.area.square_meters()))
            .then_with(|| a.cmp(&b))
    });
    let mut staircase: BTreeMap<TotalF64, f64> = BTreeMap::new();
    let mut survivors = Vec::new();
    let mut i = 0;
    while i < order.len() {
        let p = &points[order[i]];
        let mut j = i + 1;
        while j < order.len() && same_objectives(p, &points[order[j]]) {
            j += 1;
        }
        let power = p.power.watts();
        let area = p.area.square_meters();
        let dominated = staircase
            .range(..=TotalF64(power))
            .next_back()
            .is_some_and(|(_, &best)| best <= area);
        if !dominated {
            survivors.extend_from_slice(&order[i..j]);
            // Entries at higher power whose area is no better are now
            // redundant; the staircase invariant (areas strictly
            // decrease as power increases) makes them a prefix.
            let stale: Vec<TotalF64> = staircase
                .range(TotalF64(power)..)
                .take_while(|&(_, &a)| a >= area)
                .map(|(&k, _)| k)
                .collect();
            for k in stale {
                staircase.remove(&k);
            }
            staircase.insert(TotalF64(power), area);
        }
        i = j;
    }
    survivors
}

/// Filters candidates to those inside the safety power budget, then
/// extracts the frontier — the feasible trade surface.
#[must_use]
pub fn safe_frontier(points: &[CandidatePoint]) -> Vec<CandidatePoint> {
    let safe: Vec<CandidatePoint> = points.iter().filter(|p| p.is_safe()).cloned().collect();
    pareto_frontier(&safe)
}

/// The candidate with the most channels among a set (ties broken by
/// lower power), or `None` for an empty set.
#[must_use]
pub fn best_by_channels(points: &[CandidatePoint]) -> Option<&CandidatePoint> {
    points.iter().max_by(|a, b| {
        a.channels.cmp(&b.channels).then_with(|| {
            b.power
                .partial_cmp(&a.power)
                .unwrap_or(core::cmp::Ordering::Equal)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(label: &str, channels: u64, mw: f64, mm2: f64) -> CandidatePoint {
        CandidatePoint::new(
            label,
            channels,
            Power::from_milliwatts(mw),
            Area::from_square_millimeters(mm2),
        )
        .unwrap()
    }

    #[test]
    fn dominance_semantics() {
        let a = point("a", 2048, 10.0, 50.0);
        let b = point("b", 1024, 20.0, 60.0);
        let c = point("c", 2048, 10.0, 50.0);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        // Equal points do not dominate each other.
        assert!(!a.dominates(&c));
        assert!(!c.dominates(&a));
        // Trade-offs in different directions: no dominance.
        let d = point("d", 4096, 30.0, 50.0);
        assert!(!a.dominates(&d));
        assert!(!d.dominates(&a));
    }

    #[test]
    fn frontier_removes_only_dominated_points() {
        let points = vec![
            point("best-channels", 4096, 40.0, 100.0),
            point("best-power", 1024, 5.0, 100.0),
            point("dominated", 1024, 50.0, 120.0),
            point("balanced", 2048, 20.0, 80.0),
        ];
        let frontier = pareto_frontier(&points);
        let labels: Vec<&str> = frontier.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["best-channels", "best-power", "balanced"]);
    }

    #[test]
    fn frontier_of_empty_or_single_sets() {
        assert!(pareto_frontier(&[]).is_empty());
        let single = vec![point("only", 128, 1.0, 2.0)];
        assert_eq!(pareto_frontier(&single), single);
    }

    #[test]
    fn safe_frontier_applies_the_budget() {
        let points = vec![
            // 100 mW on 100 mm² = 100 mW/cm²: unsafe.
            point("hot", 8192, 100.0, 100.0),
            // 30 mW on 100 mm² = 30 mW/cm²: safe.
            point("cool", 2048, 30.0, 100.0),
        ];
        let frontier = safe_frontier(&points);
        assert_eq!(frontier.len(), 1);
        assert_eq!(frontier[0].label, "cool");
    }

    #[test]
    fn best_by_channels_breaks_ties_by_power() {
        let points = vec![
            point("a", 2048, 30.0, 50.0),
            point("b", 2048, 10.0, 50.0),
            point("c", 1024, 1.0, 50.0),
        ];
        assert_eq!(best_by_channels(&points).unwrap().label, "b");
        assert!(best_by_channels(&[]).is_none());
    }

    #[test]
    fn validation() {
        assert!(CandidatePoint::new(
            "x",
            0,
            Power::from_milliwatts(1.0),
            Area::from_square_millimeters(1.0)
        )
        .is_err());
        assert!(
            CandidatePoint::new("x", 1, Power::ZERO, Area::from_square_millimeters(1.0)).is_err()
        );
        assert!(CandidatePoint::new("x", 1, Power::from_milliwatts(1.0), Area::ZERO).is_err());
    }

    #[test]
    fn skyline_matches_naive_on_tie_heavy_sets() {
        // Duplicates, equal-power ties, equal-area ties, and dominance
        // across equal channel counts — the cases where a skyline can
        // diverge from the all-pairs oracle if tie handling is wrong.
        let sets: Vec<Vec<CandidatePoint>> = vec![
            vec![],
            vec![
                point("dup-a", 1024, 10.0, 10.0),
                point("dup-b", 1024, 10.0, 10.0),
            ],
            vec![
                point("dup-a", 1024, 10.0, 10.0),
                point("beats-dups", 2048, 10.0, 10.0),
                point("dup-b", 1024, 10.0, 10.0),
            ],
            vec![
                point("same-power-small", 1024, 10.0, 10.0),
                point("same-power-large", 1024, 10.0, 11.0),
            ],
            vec![
                point("same-area-cheap", 1024, 9.0, 10.0),
                point("same-area-costly", 1024, 10.0, 10.0),
            ],
            vec![
                point("a", 4096, 40.0, 100.0),
                point("b", 2048, 20.0, 120.0),
                point("c", 2048, 25.0, 110.0),
                point("d", 1024, 20.0, 120.0),
                point("e", 1024, 5.0, 130.0),
                point("f", 4096, 40.0, 100.0),
            ],
        ];
        for set in sets {
            assert_eq!(
                pareto_frontier(&set),
                pareto_frontier_naive(&set),
                "set: {set:?}"
            );
        }
    }

    #[test]
    fn skyline_handles_large_dominated_chains() {
        // A staircase stress case: many points along a power/area curve
        // plus strictly dominated copies shifted up and to the right.
        let mut set = Vec::new();
        for k in 0..200_u64 {
            let kf = k as f64;
            set.push(point("front", 1024, 10.0 + kf, 300.0 - kf));
            set.push(point("dominated", 1024, 11.0 + kf, 301.0 - kf));
        }
        let fast = pareto_frontier(&set);
        let slow = pareto_frontier_naive(&set);
        assert_eq!(fast, slow);
        assert_eq!(fast.len(), 200);
    }

    #[test]
    fn frontier_is_idempotent() {
        let set = vec![
            point("a", 4096, 40.0, 100.0),
            point("b", 1024, 5.0, 100.0),
            point("c", 1024, 50.0, 120.0),
            point("d", 2048, 20.0, 80.0),
        ];
        let once = pareto_frontier(&set);
        let twice = pareto_frontier(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn real_design_points_form_a_frontier() {
        // The scaled Table 1 designs themselves trade channels constant
        // (all 1024) against power and area: the frontier keeps every
        // design not beaten on both power and area simultaneously.
        let candidates: Vec<CandidatePoint> = crate::scaling::standard_design_points()
            .into_iter()
            .map(|p| {
                CandidatePoint::new(p.name().to_owned(), p.channels(), p.power(), p.area()).unwrap()
            })
            .collect();
        let frontier = safe_frontier(&candidates);
        assert!(!frontier.is_empty());
        assert!(frontier.len() <= candidates.len());
        // Jang-style small designs are unbeatable on area; they survive.
        for survivor in &frontier {
            assert!(survivor.is_safe());
        }
    }
}
