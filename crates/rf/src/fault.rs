//! Deterministic fault injection for the implant uplink.
//!
//! The link budget of Section 5 sizes the wireless uplink for BER 1e-6
//! at a fixed 20 dB margin — an implant pinned under the 40 mW/cm²
//! safety ceiling cannot overprovision its radio, so real deployments
//! *will* see corrupted, truncated, and dropped frames. This module
//! provides the fault model the rest of the stack is tested against:
//! a seeded, deterministic [`FaultPlan`] that decides per packet (or
//! per frame) which fault to inject, and a [`WireFaultInjector`] that
//! applies wire-level faults — bit flips, truncations, drops,
//! duplicates, adjacent reorders — to a packet stream.
//!
//! Determinism is the point: the same `(config, seed)` pair always
//! produces the same fault sequence, so a soak test can compare the
//! receiver's detection/recovery telemetry against the injected plan
//! *exactly*, and any divergence is a bug, not noise.
//!
//! Channel-level faults (dead channels, saturated channels, NaN bursts
//! from the analog front end) are decided here too
//! ([`FaultPlan::next_frame_fault`]) and applied by the pipeline's
//! `FaultStage`, which wraps a plan as a composable `Stage`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::auth::{AuthConfig, AuthKey, AuthSender, AUTH_MAGIC, AUTH_TAG_BYTES, MIN_SEALED_BYTES};
use crate::error::{Result, RfError};
use crate::packet::packetize;

/// Per-packet / per-frame fault probabilities.
///
/// Each field is the probability that the corresponding fault is
/// injected into one packet (wire faults) or one frame (front-end
/// faults). At most one fault is applied per packet/frame, so the
/// rates must sum to at most 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Flip one random payload bit (detected by the CRC-16).
    pub bit_flip: f64,
    /// Truncate the packet at a random byte boundary.
    pub truncate: f64,
    /// Drop the packet (wire) or frame (front end) entirely.
    pub drop: f64,
    /// Deliver the packet twice.
    pub duplicate: f64,
    /// Swap the packet with its successor (adjacent reorder).
    pub reorder: f64,
    /// Zero a contiguous run of channels (dead electrodes).
    pub dead_channels: f64,
    /// Saturate a contiguous run of channels at full scale.
    pub saturated_channels: f64,
    /// Replace a contiguous run of channels with NaN (front-end burst;
    /// only meaningful for real-valued frames).
    pub nan_burst: f64,
}

impl FaultConfig {
    /// No faults at all — the identity plan used by equivalence tests.
    #[must_use]
    pub fn none() -> Self {
        Self {
            bit_flip: 0.0,
            truncate: 0.0,
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            dead_channels: 0.0,
            saturated_channels: 0.0,
            nan_burst: 0.0,
        }
    }

    /// A composite wire-fault mix: `rate` split evenly across the five
    /// wire fault kinds (bit flip, truncate, drop, duplicate, reorder).
    #[must_use]
    pub fn wire_composite(rate: f64) -> Self {
        let each = rate / 5.0;
        Self {
            bit_flip: each,
            truncate: each,
            drop: each,
            duplicate: each,
            reorder: each,
            ..Self::none()
        }
    }

    /// A composite front-end mix: `rate` split evenly across frame
    /// drops, dead channels, saturated channels, and NaN bursts.
    #[must_use]
    pub fn frame_composite(rate: f64) -> Self {
        let each = rate / 4.0;
        Self {
            drop: each,
            dead_channels: each,
            saturated_channels: each,
            nan_burst: each,
            ..Self::none()
        }
    }

    /// Sum of all per-event fault rates.
    #[must_use]
    pub fn total_rate(&self) -> f64 {
        self.bit_flip
            + self.truncate
            + self.drop
            + self.duplicate
            + self.reorder
            + self.dead_channels
            + self.saturated_channels
            + self.nan_burst
    }

    /// Validates every rate lies in `[0, 1]` and the total does not
    /// exceed 1 (at most one fault per event).
    ///
    /// # Errors
    ///
    /// Returns [`RfError::InvalidParameter`] on violation.
    pub fn validate(&self) -> Result<()> {
        for (name, value) in [
            ("bit flip rate", self.bit_flip),
            ("truncate rate", self.truncate),
            ("drop rate", self.drop),
            ("duplicate rate", self.duplicate),
            ("reorder rate", self.reorder),
            ("dead channel rate", self.dead_channels),
            ("saturated channel rate", self.saturated_channels),
            ("nan burst rate", self.nan_burst),
        ] {
            if !(0.0..=1.0).contains(&value) || value.is_nan() {
                return Err(RfError::InvalidParameter { name, value });
            }
        }
        let total = self.total_rate();
        if total > 1.0 {
            return Err(RfError::InvalidParameter {
                name: "total fault rate",
                value: total,
            });
        }
        Ok(())
    }
}

/// One wire-level fault decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Flip bit `bit` (absolute bit index into the packet).
    BitFlip {
        /// Absolute bit index to flip.
        bit: usize,
    },
    /// Keep only the first `keep` bytes.
    Truncate {
        /// Bytes to keep (strictly less than the packet length).
        keep: usize,
    },
    /// Drop the packet.
    Drop,
    /// Deliver the packet twice.
    Duplicate,
    /// Hold the packet and deliver it after its successor.
    Reorder,
}

/// One frame-level (front-end) fault decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFault {
    /// Drop the frame.
    Drop,
    /// Zero channels `start..start + len`.
    DeadChannels {
        /// First affected channel.
        start: usize,
        /// Number of affected channels.
        len: usize,
    },
    /// Saturate channels `start..start + len` at full scale.
    SaturatedChannels {
        /// First affected channel.
        start: usize,
        /// Number of affected channels.
        len: usize,
    },
    /// Replace channels `start..start + len` with NaN.
    NanBurst {
        /// First affected channel.
        start: usize,
        /// Number of affected channels.
        len: usize,
    },
}

/// Counts of faults actually injected, by kind.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultCounters {
    /// Packets with one bit flipped.
    pub bit_flips: u64,
    /// Packets truncated.
    pub truncations: u64,
    /// Packets or frames dropped.
    pub drops: u64,
    /// Packets duplicated.
    pub duplicates: u64,
    /// Packet pairs reordered.
    pub reorders: u64,
    /// Frames with a dead-channel run.
    pub dead_channels: u64,
    /// Frames with a saturated-channel run.
    pub saturated_channels: u64,
    /// Frames with a NaN burst.
    pub nan_bursts: u64,
}

impl FaultCounters {
    /// Total faults injected.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bit_flips
            + self.truncations
            + self.drops
            + self.duplicates
            + self.reorders
            + self.dead_channels
            + self.saturated_channels
            + self.nan_bursts
    }

    /// Faults that corrupt a packet in a CRC-detectable way (bit flips
    /// and truncations).
    #[must_use]
    pub fn corruptions(&self) -> u64 {
        self.bit_flips + self.truncations
    }
}

/// A deterministic, seeded fault schedule.
///
/// The plan owns an RNG seeded once at construction; every decision
/// consumes a fixed draw pattern, so the full fault sequence is a pure
/// function of `(config, seed)` and the sequence of event sizes.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    rng: StdRng,
    counters: FaultCounters,
}

impl FaultPlan {
    /// Creates a plan from a validated config and a seed.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultConfig::validate`] errors.
    pub fn new(config: FaultConfig, seed: u64) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            config,
            rng: StdRng::seed_from_u64(seed),
            counters: FaultCounters::default(),
        })
    }

    /// The plan's configuration.
    #[must_use]
    pub fn config(&self) -> FaultConfig {
        self.config
    }

    /// Counts of faults injected so far.
    #[must_use]
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// Decides the fault (if any) for the next wire packet of
    /// `wire_len` bytes. `allow_reorder` lets the injector veto a
    /// reorder while one packet is already held back; a vetoed reorder
    /// counts as no fault.
    pub fn next_wire_fault(&mut self, wire_len: usize, allow_reorder: bool) -> Option<WireFault> {
        let u: f64 = self.rng.random();
        let c = self.config;
        let mut edge = c.bit_flip;
        if u < edge {
            // Draw the bit index unconditionally so the decision stream
            // stays aligned regardless of packet sizes.
            let raw: u64 = self.rng.random();
            if wire_len == 0 {
                return None;
            }
            self.counters.bit_flips += 1;
            return Some(WireFault::BitFlip {
                bit: (raw as usize) % (wire_len * 8),
            });
        }
        edge += c.truncate;
        if u < edge {
            let raw: u64 = self.rng.random();
            if wire_len == 0 {
                return None;
            }
            self.counters.truncations += 1;
            return Some(WireFault::Truncate {
                keep: (raw as usize) % wire_len,
            });
        }
        edge += c.drop;
        if u < edge {
            self.counters.drops += 1;
            return Some(WireFault::Drop);
        }
        edge += c.duplicate;
        if u < edge {
            self.counters.duplicates += 1;
            return Some(WireFault::Duplicate);
        }
        edge += c.reorder;
        if u < edge {
            if !allow_reorder {
                return None;
            }
            self.counters.reorders += 1;
            return Some(WireFault::Reorder);
        }
        None
    }

    /// Decides the fault (if any) for the next frame of `channels`
    /// channels. NaN bursts are only drawn when `allow_nan` (the frame
    /// kind can represent NaN); a vetoed burst counts as no fault.
    pub fn next_frame_fault(&mut self, channels: usize, allow_nan: bool) -> Option<FrameFault> {
        let u: f64 = self.rng.random();
        let c = self.config;
        let mut edge = c.drop;
        if u < edge {
            self.counters.drops += 1;
            return Some(FrameFault::Drop);
        }
        edge += c.dead_channels;
        if u < edge {
            let (start, len) = self.burst(channels)?;
            self.counters.dead_channels += 1;
            return Some(FrameFault::DeadChannels { start, len });
        }
        edge += c.saturated_channels;
        if u < edge {
            let (start, len) = self.burst(channels)?;
            self.counters.saturated_channels += 1;
            return Some(FrameFault::SaturatedChannels { start, len });
        }
        edge += c.nan_burst;
        if u < edge {
            let (start, len) = self.burst(channels)?;
            if !allow_nan {
                return None;
            }
            self.counters.nan_bursts += 1;
            return Some(FrameFault::NanBurst { start, len });
        }
        None
    }

    /// A contiguous channel run: start anywhere, length 1 up to 1/8 of
    /// the frame (at least 1). Draws are unconditional to keep the
    /// decision stream size-independent.
    fn burst(&mut self, channels: usize) -> Option<(usize, usize)> {
        let a: u64 = self.rng.random();
        let b: u64 = self.rng.random();
        if channels == 0 {
            return None;
        }
        let max_len = (channels / 8).max(1);
        let len = 1 + (a as usize) % max_len;
        let start = (b as usize) % channels;
        Some((start, len.min(channels - start)))
    }
}

// ---------------------------------------------------------------------
// Active adversary
// ---------------------------------------------------------------------

/// Per-packet attack probabilities for the active adversary.
///
/// Unlike [`FaultConfig`], whose faults model an unreliable channel,
/// these model a *malicious* peer injecting crafted frames alongside
/// the legitimate stream. At most one attack is launched per pushed
/// packet, so the rates must sum to at most 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackConfig {
    /// Inject a frame forged under the attacker's own key (but the
    /// victim's key id).
    pub forge: f64,
    /// Re-inject a frame the receiver has already accepted.
    pub replay: f64,
    /// Splice the prefix of an old accepted frame onto the suffix of
    /// the current one (reorder-splice).
    pub splice: f64,
    /// Truncate the current frame and extend it back to full length
    /// with garbage.
    pub truncate_extend: f64,
    /// Deliver the current frame re-labelled with a foreign key id.
    pub key_mismatch: f64,
}

impl AttackConfig {
    /// No attacks — the passive-adversary baseline.
    #[must_use]
    pub fn none() -> Self {
        Self {
            forge: 0.0,
            replay: 0.0,
            splice: 0.0,
            truncate_extend: 0.0,
            key_mismatch: 0.0,
        }
    }

    /// A composite mix: `rate` split evenly across all five attacks.
    #[must_use]
    pub fn composite(rate: f64) -> Self {
        let each = rate / 5.0;
        Self {
            forge: each,
            replay: each,
            splice: each,
            truncate_extend: each,
            key_mismatch: each,
        }
    }

    /// Sum of all per-packet attack rates.
    #[must_use]
    pub fn total_rate(&self) -> f64 {
        self.forge + self.replay + self.splice + self.truncate_extend + self.key_mismatch
    }

    /// Validates every rate lies in `[0, 1]` and the total does not
    /// exceed 1.
    ///
    /// # Errors
    ///
    /// Returns [`RfError::InvalidParameter`] on violation.
    pub fn validate(&self) -> Result<()> {
        for (name, value) in [
            ("forge rate", self.forge),
            ("replay rate", self.replay),
            ("splice rate", self.splice),
            ("truncate-extend rate", self.truncate_extend),
            ("key mismatch rate", self.key_mismatch),
        ] {
            if !(0.0..=1.0).contains(&value) || value.is_nan() {
                return Err(RfError::InvalidParameter { name, value });
            }
        }
        let total = self.total_rate();
        if total > 1.0 {
            return Err(RfError::InvalidParameter {
                name: "total attack rate",
                value: total,
            });
        }
        Ok(())
    }
}

/// One attack decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// Forge a frame under the attacker's key.
    Forge,
    /// Replay a previously accepted frame.
    Replay,
    /// Splice two authentic frames together.
    Splice,
    /// Truncate and re-extend the current frame.
    TruncateExtend,
    /// Flip the key-id byte of the current frame.
    KeyMismatch,
}

/// Counts of attack frames actually injected, by kind.
///
/// Counted at *apply* time — a drawn attack that cannot be realised
/// (for example a replay before any frame was delivered intact) is
/// vetoed and never counted, so these numbers equate exactly with the
/// receiver's rejection ledger.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AttackCounters {
    /// Frames forged under the attacker's key (rejected: MAC).
    pub forged: u64,
    /// Accepted frames replayed verbatim (rejected: replay window).
    pub replayed: u64,
    /// Spliced frame pairs (rejected: MAC).
    pub spliced: u64,
    /// Truncate-then-extend mutations (rejected: MAC).
    pub truncated_extended: u64,
    /// Key-id relabelings (rejected: key mismatch).
    pub key_mismatched: u64,
}

impl AttackCounters {
    /// Total attack frames injected.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.forged + self.replayed + self.spliced + self.truncated_extended + self.key_mismatched
    }

    /// Attack frames the receiver must reject on MAC grounds.
    #[must_use]
    pub fn mac_rejected_expected(&self) -> u64 {
        self.forged + self.spliced + self.truncated_extended
    }
}

/// A deterministic, seeded attack schedule.
///
/// Mirrors [`FaultPlan`]: every decision consumes a fixed draw pattern
/// (one uniform + two raw words), so the attack sequence is a pure
/// function of `(config, seed)` regardless of which attacks are vetoed
/// downstream.
#[derive(Debug, Clone)]
pub struct AttackPlan {
    config: AttackConfig,
    rng: StdRng,
}

impl AttackPlan {
    /// Creates a plan from a validated config and a seed.
    ///
    /// # Errors
    ///
    /// Propagates [`AttackConfig::validate`] errors.
    pub fn new(config: AttackConfig, seed: u64) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            config,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// The plan's configuration.
    #[must_use]
    pub fn config(&self) -> AttackConfig {
        self.config
    }

    /// Decides the attack (if any) to launch alongside the next packet,
    /// together with two raw words of attack-specific entropy.
    pub fn next_attack(&mut self) -> Option<(AttackKind, u64, u64)> {
        let u: f64 = self.rng.random();
        let r1: u64 = self.rng.random();
        let r2: u64 = self.rng.random();
        let c = self.config;
        let mut edge = c.forge;
        if u < edge {
            return Some((AttackKind::Forge, r1, r2));
        }
        edge += c.replay;
        if u < edge {
            return Some((AttackKind::Replay, r1, r2));
        }
        edge += c.splice;
        if u < edge {
            return Some((AttackKind::Splice, r1, r2));
        }
        edge += c.truncate_extend;
        if u < edge {
            return Some((AttackKind::TruncateExtend, r1, r2));
        }
        edge += c.key_mismatch;
        if u < edge {
            return Some((AttackKind::KeyMismatch, r1, r2));
        }
        None
    }
}

/// How many recently accepted frames the adversary keeps for replay and
/// splice material. Small enough that every remembered frame is well
/// inside any sane replay window when re-injected.
const ADVERSARY_HISTORY: usize = 32;

/// An active adversary over a *sealed* (authenticated) packet stream.
///
/// The adversary watches the channel like a man-in-the-middle: every
/// frame delivered intact is remembered (up to `ADVERSARY_HISTORY`
/// frames), and per pushed packet it may inject one crafted frame. Each
/// attack is built so its rejection class is knowable in advance, which
/// is what lets the soak equate [`AttackCounters`] with the receiver's
/// [`crate::auth::AuthStats`] field-by-field:
///
/// * **forge** → MAC mismatch (attacker key ≠ link key);
/// * **replay** → replay window (the original was delivered intact
///   first, so it was accepted);
/// * **splice** → MAC mismatch (prefix nonce disagrees with suffix
///   tag);
/// * **truncate-extend** → MAC mismatch (tag bytes mangled, header
///   intact);
/// * **key mismatch** → key-id rejection before any MAC work.
#[derive(Debug, Clone)]
pub struct Adversary {
    plan: AttackPlan,
    forger: AuthKey,
    history: Vec<Vec<u8>>,
    counters: AttackCounters,
}

impl Adversary {
    /// An adversary attacking a link whose frames advertise
    /// `victim_key_id`. The attacker's own key material is derived from
    /// `seed` and is distinct from any [`AuthKey::from_seed`] victim key
    /// with overwhelming probability.
    ///
    /// # Errors
    ///
    /// Propagates [`AttackConfig::validate`] errors.
    pub fn new(config: AttackConfig, seed: u64, victim_key_id: u8) -> Result<Self> {
        Ok(Self {
            plan: AttackPlan::new(config, seed)?,
            forger: AuthKey::from_seed(seed ^ 0xADBE_EF00_0000_0000, victim_key_id),
            history: Vec::new(),
            counters: AttackCounters::default(),
        })
    }

    /// Counts of attacks launched so far.
    #[must_use]
    pub fn counters(&self) -> AttackCounters {
        self.counters
    }

    /// Records a frame that was delivered intact (and will therefore be
    /// accepted by the receiver) as replay/splice material. Non-sealed
    /// frames are ignored — the adversary only attacks the
    /// authenticated format.
    pub fn remember(&mut self, wire: &[u8]) {
        if wire.len() < MIN_SEALED_BYTES || wire[0..2] != AUTH_MAGIC.to_be_bytes() {
            return;
        }
        if self.history.len() == ADVERSARY_HISTORY {
            self.history.remove(0);
        }
        self.history.push(wire.to_vec());
    }

    /// Possibly injects one attack frame alongside the (pristine) wire
    /// image `wire`, appending it to `out` after the legitimate
    /// deliveries. Vetoed attacks (no history yet, degenerate sizes)
    /// draw from the plan but count nothing.
    pub fn raid(&mut self, wire: &[u8], out: &mut Vec<Vec<u8>>) {
        let Some((kind, r1, r2)) = self.plan.next_attack() else {
            return;
        };
        if wire.len() < MIN_SEALED_BYTES || wire[0..2] != AUTH_MAGIC.to_be_bytes() {
            return;
        }
        let crafted = match kind {
            AttackKind::Forge => self.forge(wire, r1),
            AttackKind::Replay => self.replay(r1),
            AttackKind::Splice => self.splice(wire, r1, r2),
            AttackKind::TruncateExtend => Self::truncate_extend(wire, r1),
            AttackKind::KeyMismatch => Self::key_mismatch(wire),
        };
        if let Some(frame) = crafted {
            match kind {
                AttackKind::Forge => self.counters.forged += 1,
                AttackKind::Replay => self.counters.replayed += 1,
                AttackKind::Splice => self.counters.spliced += 1,
                AttackKind::TruncateExtend => self.counters.truncated_extended += 1,
                AttackKind::KeyMismatch => self.counters.key_mismatched += 1,
            }
            out.push(frame);
        }
    }

    /// A frame sealed under the attacker's key, mimicking the current
    /// frame's sequence number (so the receiver reaches the MAC check
    /// rather than tripping a stale-nonce rejection).
    fn forge(&mut self, wire: &[u8], raw: u64) -> Option<Vec<u8>> {
        let seq = u16::from_be_bytes([wire[6], wire[7]]);
        let samples: Vec<u16> = (0..8_u32)
            .map(|i| ((raw >> (i * 8)) as u16) & 0x3FF)
            .collect();
        let inner = packetize(seq, &samples, 10).ok()?;
        let mut tx = AuthSender::new(&AuthConfig::new(self.forger));
        let mut sealed = Vec::new();
        tx.seal_into(&inner, &mut sealed).ok()?;
        Some(sealed)
    }

    /// A verbatim copy of a frame the receiver already accepted.
    fn replay(&mut self, raw: u64) -> Option<Vec<u8>> {
        if self.history.is_empty() {
            return None;
        }
        Some(self.history[(raw as usize) % self.history.len()].clone())
    }

    /// Prefix of an old accepted frame, suffix of the current one. The
    /// cut keeps the old frame's sequence bytes in the prefix and the
    /// current frame's MAC in the suffix, so the tag can never verify
    /// under the spliced nonce.
    fn splice(&mut self, wire: &[u8], r1: u64, r2: u64) -> Option<Vec<u8>> {
        if self.history.is_empty() || wire.len() < 18 {
            return None;
        }
        let old = &self.history[(r1 as usize) % self.history.len()];
        if old.len() != wire.len() || old.as_slice() == wire {
            return None;
        }
        let cut = 9 + (r2 as usize) % (wire.len() - 17);
        let mut spliced = old[..cut].to_vec();
        spliced.extend_from_slice(&wire[cut..]);
        if spliced.as_slice() == wire || spliced == *old {
            return None;
        }
        Some(spliced)
    }

    /// The current frame truncated by 1–8 bytes and re-extended to full
    /// length with inverted garbage (guaranteed different, same size).
    fn truncate_extend(wire: &[u8], raw: u64) -> Option<Vec<u8>> {
        let tail = 1 + (raw as usize) % AUTH_TAG_BYTES;
        let len = wire.len();
        let mut out = wire[..len - tail].to_vec();
        out.extend(wire[len - tail..].iter().map(|b| b ^ 0xA5));
        Some(out)
    }

    /// The current frame re-labelled with a foreign key id.
    fn key_mismatch(wire: &[u8]) -> Option<Vec<u8>> {
        let mut out = wire.to_vec();
        out[3] ^= 0x55;
        Some(out)
    }
}

/// Applies a [`FaultPlan`]'s wire faults to a packet stream.
///
/// Push each outgoing packet; the injector appends what the channel
/// actually delivers (zero, one, or more packets) to the caller's
/// delivery list. A reordered packet is held back and delivered right
/// after its successor; [`WireFaultInjector::flush`] releases a held
/// packet at end of stream.
///
/// With [`WireFaultInjector::with_adversary`], an active [`Adversary`]
/// rides on the same channel: it observes every intact delivery and may
/// append one crafted attack frame per pushed packet, after the
/// legitimate deliveries.
#[derive(Debug, Clone)]
pub struct WireFaultInjector {
    plan: FaultPlan,
    held: Option<Vec<u8>>,
    adversary: Option<Adversary>,
}

impl WireFaultInjector {
    /// Wraps a plan.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            held: None,
            adversary: None,
        }
    }

    /// Wraps a plan and an active adversary.
    #[must_use]
    pub fn with_adversary(plan: FaultPlan, adversary: Adversary) -> Self {
        Self {
            plan,
            held: None,
            adversary: Some(adversary),
        }
    }

    /// Counts of faults injected so far.
    #[must_use]
    pub fn counters(&self) -> FaultCounters {
        self.plan.counters()
    }

    /// Counts of adversary attacks launched so far, if an adversary is
    /// attached.
    #[must_use]
    pub fn attack_counters(&self) -> Option<AttackCounters> {
        self.adversary.as_ref().map(Adversary::counters)
    }

    /// Transmits one packet through the faulty channel, appending the
    /// delivered packet images to `out`.
    pub fn push(&mut self, wire: &[u8], out: &mut Vec<Vec<u8>>) {
        let fault = self.plan.next_wire_fault(wire.len(), self.held.is_none());
        let mut delivered = false;
        let mut intact = false;
        match fault {
            None => {
                out.push(wire.to_vec());
                delivered = true;
                intact = true;
            }
            Some(WireFault::BitFlip { bit }) => {
                let mut bad = wire.to_vec();
                bad[bit / 8] ^= 1 << (bit % 8);
                out.push(bad);
                delivered = true;
            }
            Some(WireFault::Truncate { keep }) => {
                out.push(wire[..keep].to_vec());
                delivered = true;
            }
            Some(WireFault::Drop) => {}
            Some(WireFault::Duplicate) => {
                out.push(wire.to_vec());
                out.push(wire.to_vec());
                delivered = true;
                intact = true;
            }
            Some(WireFault::Reorder) => {
                self.held = Some(wire.to_vec());
            }
        }
        // A held (reordered) packet rides out right after the next
        // delivery, i.e. exactly one packet late.
        if delivered {
            if let Some(held) = self.held.take() {
                if let Some(adv) = &mut self.adversary {
                    adv.remember(&held);
                }
                out.push(held);
            }
        }
        if let Some(adv) = &mut self.adversary {
            if intact {
                adv.remember(wire);
            }
            // The raid runs after the legitimate deliveries, so a
            // replay of this very frame arrives after the original was
            // accepted.
            adv.raid(wire, out);
        }
    }

    /// Delivers a held reordered packet at end of stream.
    pub fn flush(&mut self, out: &mut Vec<Vec<u8>>) {
        if let Some(held) = self.held.take() {
            out.push(held);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{depacketize, packetize};

    #[test]
    fn config_validation_rejects_bad_rates() {
        assert!(FaultConfig::none().validate().is_ok());
        assert!(FaultConfig::wire_composite(0.02).validate().is_ok());
        assert!(FaultConfig::frame_composite(1.0).validate().is_ok());
        let mut bad = FaultConfig::none();
        bad.drop = -0.1;
        assert!(bad.validate().is_err());
        bad.drop = f64::NAN;
        assert!(bad.validate().is_err());
        let mut over = FaultConfig::none();
        over.drop = 0.7;
        over.duplicate = 0.7;
        assert!(over.validate().is_err());
        assert!(FaultPlan::new(over, 1).is_err());
    }

    #[test]
    fn plans_are_deterministic() {
        let config = FaultConfig::wire_composite(0.5);
        let mut a = FaultPlan::new(config, 42).unwrap();
        let mut b = FaultPlan::new(config, 42).unwrap();
        for _ in 0..500 {
            assert_eq!(a.next_wire_fault(64, true), b.next_wire_fault(64, true));
        }
        assert_eq!(a.counters(), b.counters());
        assert!(a.counters().total() > 0, "50% composite must fire");
    }

    #[test]
    fn zero_rate_plan_never_faults() {
        let mut plan = FaultPlan::new(FaultConfig::none(), 7).unwrap();
        for _ in 0..1000 {
            assert_eq!(plan.next_wire_fault(32, true), None);
            assert_eq!(plan.next_frame_fault(128, true), None);
        }
        assert_eq!(plan.counters().total(), 0);
    }

    #[test]
    fn injected_counts_track_decisions() {
        let mut plan = FaultPlan::new(FaultConfig::wire_composite(0.9), 3).unwrap();
        let mut seen = 0;
        for _ in 0..2000 {
            if plan.next_wire_fault(100, true).is_some() {
                seen += 1;
            }
        }
        assert_eq!(plan.counters().total(), seen);
        // An even split should spread across every wire kind.
        let c = plan.counters();
        for (name, n) in [
            ("bit_flips", c.bit_flips),
            ("truncations", c.truncations),
            ("drops", c.drops),
            ("duplicates", c.duplicates),
            ("reorders", c.reorders),
        ] {
            assert!(n > 0, "{name} never fired in 2000 draws at 18% each");
        }
    }

    #[test]
    fn frame_faults_cover_every_kind_and_stay_in_bounds() {
        let mut plan = FaultPlan::new(FaultConfig::frame_composite(0.9), 11).unwrap();
        let channels = 96;
        for _ in 0..2000 {
            match plan.next_frame_fault(channels, true) {
                Some(
                    FrameFault::DeadChannels { start, len }
                    | FrameFault::SaturatedChannels { start, len }
                    | FrameFault::NanBurst { start, len },
                ) => {
                    assert!(len >= 1);
                    assert!(start + len <= channels);
                }
                Some(FrameFault::Drop) | None => {}
            }
        }
        let c = plan.counters();
        assert!(c.drops > 0 && c.dead_channels > 0);
        assert!(c.saturated_channels > 0 && c.nan_bursts > 0);
    }

    #[test]
    fn nan_bursts_are_vetoed_for_integer_frames() {
        let mut config = FaultConfig::none();
        config.nan_burst = 1.0;
        let mut plan = FaultPlan::new(config, 5).unwrap();
        for _ in 0..50 {
            assert_eq!(plan.next_frame_fault(16, false), None);
        }
        assert_eq!(plan.counters().nan_bursts, 0);
    }

    #[test]
    fn clean_injector_is_the_identity() {
        let mut injector = WireFaultInjector::new(FaultPlan::new(FaultConfig::none(), 9).unwrap());
        let mut out = Vec::new();
        for seq in 0..20_u16 {
            let wire = packetize(seq, &[seq, seq + 1], 12).unwrap();
            out.clear();
            injector.push(&wire, &mut out);
            assert_eq!(out.len(), 1);
            assert_eq!(out[0], wire);
        }
        injector.flush(&mut out);
        assert_eq!(out.len(), 1, "nothing held by a clean channel");
    }

    #[test]
    fn faulted_stream_accounts_for_every_packet() {
        // Conservation law: delivered = sent - drops - corrupt_truncated?
        // Every sent packet is delivered 0 (drop), 1, or 2 (duplicate)
        // times; reorders preserve count.
        let plan = FaultPlan::new(FaultConfig::wire_composite(0.4), 77).unwrap();
        let mut injector = WireFaultInjector::new(plan);
        let mut delivered = Vec::new();
        const SENT: usize = 1000;
        for seq in 0..SENT {
            let wire = packetize(seq as u16, &[1, 2, 3], 8).unwrap();
            injector.push(&wire, &mut delivered);
        }
        injector.flush(&mut delivered);
        let c = injector.counters();
        assert_eq!(
            delivered.len() as u64,
            SENT as u64 - c.drops + c.duplicates,
            "channel conserves packets modulo drops and duplicates"
        );
        // Corrupted deliveries are exactly the flips + truncations.
        let bad = delivered.iter().filter(|w| depacketize(w).is_err()).count() as u64;
        assert_eq!(
            bad,
            c.corruptions(),
            "CRC detects every injected corruption"
        );
    }

    #[test]
    fn attack_config_validation_rejects_bad_rates() {
        assert!(AttackConfig::none().validate().is_ok());
        assert!(AttackConfig::composite(0.5).validate().is_ok());
        let mut bad = AttackConfig::none();
        bad.replay = 1.5;
        assert!(bad.validate().is_err());
        bad.replay = f64::NAN;
        assert!(bad.validate().is_err());
        let mut over = AttackConfig::none();
        over.forge = 0.6;
        over.splice = 0.6;
        assert!(over.validate().is_err());
        assert!(AttackPlan::new(over, 1).is_err());
        assert!(Adversary::new(over, 1, 0).is_err());
    }

    #[test]
    fn attack_plans_are_deterministic() {
        let config = AttackConfig::composite(0.8);
        let mut a = AttackPlan::new(config, 99).unwrap();
        let mut b = AttackPlan::new(config, 99).unwrap();
        let mut fired = 0;
        for _ in 0..500 {
            let x = a.next_attack();
            assert_eq!(x, b.next_attack());
            fired += u32::from(x.is_some());
        }
        assert!(fired > 0, "80% composite must fire");
    }

    #[test]
    fn every_attack_kind_is_rejected_and_ledgered() {
        use crate::auth::{AuthConfig, AuthKey, AuthReceiver, AuthSender};
        // Drive a sealed stream through an adversary-only channel (no
        // channel faults) and check the receiver's ledger equates with
        // the attack counters field-by-field.
        let key = AuthKey::from_seed(0xD00D, 3);
        let auth = AuthConfig::new(key);
        let mut tx = AuthSender::new(&auth);
        let mut rx = AuthReceiver::new(&auth).unwrap();
        let adversary = Adversary::new(AttackConfig::composite(0.9), 0xA77AC4, 3).unwrap();
        let mut injector = WireFaultInjector::with_adversary(
            FaultPlan::new(FaultConfig::none(), 1).unwrap(),
            adversary,
        );
        let mut sealed = Vec::new();
        let mut delivered = Vec::new();
        const SENT: u64 = 2000;
        for seq in 0..SENT {
            let samples: Vec<u16> = (0..16).map(|c| (c + seq as u16) % 1024).collect();
            let inner = packetize(seq as u16, &samples, 10).unwrap();
            tx.seal_into(&inner, &mut sealed).unwrap();
            injector.push(&sealed, &mut delivered);
            for frame in delivered.drain(..) {
                let _ = rx.open(&frame);
            }
        }
        let attacks = injector.attack_counters().unwrap();
        let stats = rx.stats();
        // Every attack kind fired in 2000 rounds at 18% each.
        assert!(attacks.forged > 0, "no forgeries launched");
        assert!(attacks.replayed > 0, "no replays launched");
        assert!(attacks.spliced > 0, "no splices launched");
        assert!(attacks.truncated_extended > 0, "no truncate-extends");
        assert!(attacks.key_mismatched > 0, "no key mismatches");
        // Field-exact ledger: every legitimate frame accepted, every
        // attack rejected in its predicted class.
        assert_eq!(stats.accepted, SENT);
        assert_eq!(stats.rejected_mac, attacks.mac_rejected_expected());
        assert_eq!(stats.rejected_key, attacks.key_mismatched);
        assert_eq!(stats.replayed, attacks.replayed);
        assert_eq!(stats.rejected_malformed, 0);
        assert_eq!(stats.stale, 0);
        assert_eq!(stats.rejected_total(), attacks.total());
    }

    #[test]
    fn adversary_ignores_unsealed_streams() {
        let mut config = AttackConfig::none();
        config.replay = 1.0;
        let adversary = Adversary::new(config, 8, 0).unwrap();
        let mut injector = WireFaultInjector::with_adversary(
            FaultPlan::new(FaultConfig::none(), 1).unwrap(),
            adversary,
        );
        let mut out = Vec::new();
        for seq in 0..20_u16 {
            let wire = packetize(seq, &[1, 2], 8).unwrap();
            injector.push(&wire, &mut out);
        }
        assert_eq!(out.len(), 20, "no attack frames on a plain stream");
        assert_eq!(injector.attack_counters().unwrap().total(), 0);
    }

    #[test]
    fn reorder_swaps_adjacent_packets() {
        let mut config = FaultConfig::none();
        config.reorder = 1.0;
        let mut injector = WireFaultInjector::new(FaultPlan::new(config, 2).unwrap());
        let mut out = Vec::new();
        let a = packetize(0, &[1], 8).unwrap();
        let b = packetize(1, &[2], 8).unwrap();
        injector.push(&a, &mut out);
        assert!(out.is_empty(), "first packet is held");
        // While one packet is held further reorders are vetoed, so the
        // second packet is delivered, then the held one.
        injector.push(&b, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(depacketize(&out[0]).unwrap().sequence, 1);
        assert_eq!(depacketize(&out[1]).unwrap().sequence, 0);
        assert_eq!(injector.counters().reorders, 1);
    }
}
