//! End-to-end pipelines spanning the whole workspace: sensing →
//! digitization → (packetize | decode | infer) → wireless, under the
//! core power budget — composed through the unified streaming
//! `Stage` abstraction of `mindful_pipeline`.

use mindful_accel::prelude::*;
use mindful_core::prelude::*;
use mindful_decode::prelude::*;
use mindful_dnn::prelude::*;
use mindful_pipeline::prelude::*;
// Both the RF and pipeline preludes export a `Frame`; these tests
// pattern-match the pipeline's.
use mindful_pipeline::Frame;
use mindful_rf::prelude::*;
use mindful_signal::prelude::*;

/// The communication-centric pipeline of Fig. 3 (top), as a streaming
/// `Stage` chain: digitize every channel, packetize, transmit; the
/// wearable depacketizes losslessly, and the *measured* wire rate from
/// pipeline telemetry fits a BISC-class power budget.
#[test]
fn communication_centric_pipeline_is_lossless() {
    let ni = NeuralInterface::new(16, 400, 10, 11).unwrap(); // 256 ch
    let channels = ni.channels();
    let mut twin = ni.clone();
    let spec = soc_by_id(1).unwrap();

    let intent = Intent::new(0.3, -0.1);
    let mut pipeline = Pipeline::new()
        .with_stage(SenseStage::from_interface(
            ni,
            IntentSchedule::Constant(intent),
        ))
        .with_stage(PacketizeStage::new(10).unwrap());

    let mut wire_bits_per_frame = 0_u64;
    for sequence in 0..20_u16 {
        let out = pipeline.step().unwrap().expect("packetizer always emits");
        let Frame::Bytes(wire) = out.as_frame() else {
            panic!("the chain tail carries wire bytes");
        };
        wire_bits_per_frame = wire.len() as u64 * 8;
        let received = depacketize(wire).unwrap();
        // Lossless, in sequence, and equal to the pre-refactor direct
        // path on a twin interface.
        let frame = twin.sample(intent).unwrap();
        assert_eq!(received.samples, frame.samples);
        assert_eq!(received.sequence, sequence);
    }

    // Telemetry agrees with the wire format, and the link power for the
    // *actual* packetized rate (overhead included) fits the budget.
    let telemetry = pipeline.telemetry();
    assert_eq!(telemetry[1].frames_out, 20);
    assert_eq!(telemetry[1].bytes_out * 8, 20 * wire_bits_per_frame);
    let sampling = Frequency::from_kilohertz(8.0);
    let wire_rate = DataRate::from_bits_per_second(wire_bits_per_frame as f64 * sampling.hertz());
    assert!(
        wire_rate.bits_per_second()
            > sensing_throughput(channels as u64, 10, sampling).bits_per_second(),
        "packet framing adds overhead on top of the raw stream"
    );
    // A transmitter customized for the packetized stream (same pJ/bit
    // as the paper's worked example) still fits a BISC-class budget.
    let raw_tx = OokTransmitter::customized_for(channels as u64, 10, sampling).unwrap();
    let tx = OokTransmitter::new(raw_tx.energy_per_bit(), wire_rate).unwrap();
    let p_comm = tx.power_at(wire_rate).unwrap();
    let budget = power_budget(spec.area());
    assert!(p_comm < budget, "{p_comm:?} vs {budget:?}");
}

/// The computation-centric pipeline (Fig. 3 bottom): digitized frames
/// stream through the real MLP as a `Stage` chain; only 40 labels leave
/// the implant, the streamed outputs equal the batched pool path
/// bit-for-bit, and the MAC allocation that sustains it respects the
/// budget on BISC.
#[test]
fn computation_centric_pipeline_runs_real_inference() {
    let channels = 1024_u64;
    let ni = NeuralInterface::new(32, 600, 10, 5).unwrap();
    assert_eq!(ni.channels() as u64, channels);
    let mut twin = ni.clone();

    let arch = ModelFamily::Mlp.architecture(channels).unwrap();
    let network = Network::with_seeded_weights(arch.clone(), 3);
    let mut pipeline = Pipeline::new()
        .with_stage(SenseStage::from_interface(
            ni,
            IntentSchedule::Constant(Intent::new(0.5, 0.2)),
        ))
        .with_stage(DnnStage::new(network.clone(), 10).unwrap());

    // Stream three frames; rebuild the same inputs on a twin interface
    // for the batched pool path.
    let mut streamed: Vec<Vec<f32>> = Vec::new();
    let mut inputs: Vec<Vec<f32>> = Vec::new();
    for _ in 0..3 {
        let out = pipeline.step().unwrap().expect("dnn emits every frame");
        let Frame::Activations(labels) = out.as_frame() else {
            panic!("the chain tail carries activations");
        };
        streamed.push(labels.to_vec());
        let frame = twin.sample(Intent::new(0.5, 0.2)).unwrap();
        inputs.push(
            frame
                .samples
                .iter()
                .map(|&c| f32::from(c) / 512.0 - 1.0)
                .collect(),
        );
    }
    // Batched decoding over the shared pool equals the streamed chain
    // and per-frame forwards exactly.
    let batched = network.forward_batch_auto(&inputs).unwrap();
    assert_eq!(batched.len(), inputs.len());
    for ((x, labels), stream_labels) in inputs.iter().zip(&batched).zip(&streamed) {
        assert_eq!(labels.len() as u64, OUTPUT_LABELS);
        assert_eq!(labels, &network.forward(x).unwrap());
        assert_eq!(labels, stream_labels, "streamed ≡ batched");
    }

    // The analytic integration of the same model on BISC is feasible.
    let anchor = SplitDesign::from_scaled(
        mindful_core::scaling::scale_to_standard(&soc_by_id(1).unwrap()).unwrap(),
    );
    let point = evaluate_full(
        &anchor,
        ModelFamily::Mlp,
        channels,
        &IntegrationConfig::paper_45nm(),
    )
    .unwrap();
    assert!(point.is_feasible(), "{point}");

    // And the output stream is tiny compared to the raw stream.
    let raw = sensing_throughput(channels, 10, anchor.scaled().spec().sampling());
    assert!(
        point.communication_power()
            < OokTransmitter::customized_for(channels, 10, anchor.scaled().spec().sampling())
                .unwrap()
                .power_at(raw)
                .unwrap()
    );
}

/// The partitioned pipeline of Section 6.1: run the implant-side prefix
/// for real, check the transmitted activation count matches the
/// analytic partition plan.
#[test]
fn partitioned_pipeline_matches_analytic_plan() {
    let channels = 1024_u64;
    let anchor = SplitDesign::from_scaled(
        mindful_core::scaling::scale_to_standard(&soc_by_id(1).unwrap()).unwrap(),
    );
    let config = IntegrationConfig::paper_45nm();
    let plan = evaluate_partitioned(&anchor, ModelFamily::Mlp, channels, &config).unwrap();
    assert!(plan.keep_layers() < plan.total_layers());

    let arch = ModelFamily::Mlp.architecture(channels).unwrap();
    let network = Network::with_seeded_weights(arch, 9);
    let input = vec![0.25_f32; channels as usize];
    let intermediate = network.forward_prefix(&input, plan.keep_layers()).unwrap();

    // The analytic link rate corresponds to exactly this many values.
    let expected_rate = mindful_dnn::partition::activation_rate(intermediate.len() as u64, 10);
    assert!((plan.link_rate().bits_per_second() - expected_rate.bits_per_second()).abs() < 1e-6);
}

/// Decoding closes the loop: synthetic cortical data in, behavioural
/// intent out, with the Kalman baseline recovering real signal.
#[test]
fn kalman_decodes_synthetic_cortex_above_chance() {
    let mut ni = NeuralInterface::new(8, 400, 10, 77).unwrap();
    let frames = ni.record_trajectory(2500).unwrap();
    let rows: Vec<Vec<f64>> = frames
        .iter()
        .map(|f| f.samples.iter().map(|&c| f64::from(c)).collect())
        .collect();
    let intents: Vec<(f64, f64)> = frames.iter().map(|f| (f.intent.x, f.intent.y)).collect();
    let mut decoder = KalmanDecoder::calibrate(&rows, &intents).unwrap();
    let decoded = decoder.decode(&rows).unwrap();
    let corr = correlation(
        &decoded.iter().map(|v| v.x).collect::<Vec<_>>(),
        &intents.iter().map(|i| i.0).collect::<Vec<_>>(),
    );
    assert!(corr > 0.4, "Kalman x-correlation {corr}");
}

/// Channel dropout (ChDr) end to end: spike detection ranks channels,
/// the reduced channel set still supports decoding, and the DNN cost
/// analysis sees the smaller α.
#[test]
fn channel_dropout_reduces_both_data_and_compute() {
    let mut ni = NeuralInterface::new(16, 500, 10, 13).unwrap(); // 256 ch
    let frames = ni.record_trajectory(600).unwrap();
    let rows: Vec<Vec<f64>> = frames
        .iter()
        .map(|f| f.samples.iter().map(|&c| f64::from(c)).collect())
        .collect();
    let mut detector = SpikeDetector::calibrate(&rows[..64], 2.5, 3).unwrap();
    let counts = detector.event_counts(&rows).unwrap();
    let active = select_active_channels(&counts, 128).unwrap();
    assert_eq!(active.len(), 128);

    // Compute cost at 256 active vs 128 active channels.
    let full = ModelFamily::Mlp.architecture(256).unwrap().macs();
    let dropped = ModelFamily::Mlp.architecture(128).unwrap().macs();
    assert!(
        dropped * 2 < full,
        "dropout must shrink compute: {dropped} vs {full}"
    );
}

/// The accelerator's cycle-level simulation executes the first MLP layer
/// with the exact MAC count its allocation predicts.
#[test]
fn accelerator_simulation_agrees_with_allocation() {
    let arch = ModelFamily::Mlp.architecture(128).unwrap();
    let first = &arch.layers()[0];
    let (inputs, outputs) = match *first {
        mindful_dnn::arch::LayerSpec::Dense { inputs, outputs } => {
            (inputs as usize, outputs as usize)
        }
        _ => panic!("MLP starts with a dense layer"),
    };
    let weights: Vec<i8> = (0..inputs * outputs).map(|i| (i % 13) as i8 - 6).collect();
    let layer = DenseLayer::new(inputs, outputs, weights, vec![0; outputs], true).unwrap();
    let x: Vec<i8> = (0..inputs).map(|i| (i % 9) as i8 - 4).collect();

    let net = NetworkWorkload::new(vec![layer.workload().unwrap()]).unwrap();
    let node = TechnologyNode::NANGATE_45NM;
    let deadline = ModelFamily::Mlp.deadline();
    let alloc = best_allocation(&net, node, deadline).unwrap();
    let sim = simulate_dense(&layer, &x, alloc.total_mac_hw(), node).unwrap();
    assert_eq!(sim.outputs, layer.reference(&x).unwrap());
    let latency = node.mac_latency() * sim.cycles as f64;
    assert!(latency <= deadline, "simulated latency within the deadline");
}

/// Corrupt the wireless stream and confirm the wearable rejects exactly
/// the corrupted frames (failure injection), with the stream produced
/// by the composed sense → packetize chain.
#[test]
fn corrupted_frames_are_dropped_not_misdecoded() {
    let ni = NeuralInterface::new(8, 100, 10, 21).unwrap();
    let mut twin = ni.clone();
    let mut pipeline = Pipeline::new()
        .with_stage(SenseStage::from_interface(
            ni,
            IntentSchedule::Constant(Intent::default()),
        ))
        .with_stage(PacketizeStage::new(10).unwrap());
    let mut corrupted = 0;
    let mut delivered = 0;
    for k in 0..50_u16 {
        let out = pipeline.step().unwrap().expect("packetizer always emits");
        let Frame::Bytes(stream) = out.as_frame() else {
            panic!("the chain tail carries wire bytes");
        };
        let mut wire = stream.to_vec();
        let frame = twin.sample(Intent::default()).unwrap();
        if k % 5 == 0 {
            let idx = (usize::from(k) * 7) % wire.len();
            wire[idx] ^= 0x10;
            corrupted += 1;
            assert!(depacketize(&wire).is_err());
        } else {
            let parsed = depacketize(&wire).unwrap();
            assert_eq!(parsed.samples, frame.samples);
            delivered += 1;
        }
    }
    assert_eq!(corrupted, 10);
    assert_eq!(delivered, 40);
}
