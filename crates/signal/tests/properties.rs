//! Property-based tests for the neural-signal substrate.

use mindful_signal::adc::Adc;
use mindful_signal::interface::NeuralInterface;
use mindful_signal::neuron::{Intent, Neuron, Population};
use proptest::prelude::*;

proptest! {
    #[test]
    fn adc_codes_fit_bit_width(bits in 1_u8..=16, fs in 0.1_f64..100.0, v in -1e4_f64..1e4) {
        let adc = Adc::new(bits, fs).unwrap();
        let code = adc.quantize(v);
        prop_assert!(u32::from(code) < adc.codes());
    }

    #[test]
    fn adc_is_monotone(
        bits in 2_u8..=14,
        fs in 0.1_f64..10.0,
        a in -20.0_f64..20.0,
        delta in 0.0_f64..20.0,
    ) {
        let adc = Adc::new(bits, fs).unwrap();
        prop_assert!(adc.quantize(a + delta) >= adc.quantize(a));
    }

    #[test]
    fn adc_error_bounded_in_range(bits in 2_u8..=14, frac in -1.0_f64..1.0) {
        let adc = Adc::new(bits, 1.0).unwrap();
        let v = frac * 0.999;
        let back = adc.reconstruct(adc.quantize(v));
        prop_assert!((back - v).abs() <= adc.lsb() / 2.0 + 1e-12);
    }

    #[test]
    fn neuron_drive_respects_cosine_tuning(
        preferred in 0.0_f64..core::f64::consts::TAU,
        baseline in 0.0_f64..0.5,
        depth in 0.0_f64..0.5,
    ) {
        let n = Neuron::new(preferred, baseline, depth, 0.2).unwrap();
        // Drive along the preferred direction dominates every other angle.
        let best = n.drive(Intent::new(preferred.cos(), preferred.sin()));
        for k in 0..12 {
            let theta = k as f64 * core::f64::consts::TAU / 12.0;
            let d = n.drive(Intent::new(theta.cos(), theta.sin()));
            prop_assert!(d <= best + 1e-12);
            prop_assert!(d >= 0.0);
        }
    }

    #[test]
    fn population_step_is_reproducible(seed in 0_u64..10_000, count in 1_usize..100) {
        let mut a = Population::new(count, seed).unwrap();
        let mut b = Population::new(count, seed).unwrap();
        for _ in 0..5 {
            prop_assert_eq!(a.step(Intent::new(0.1, 0.2)), b.step(Intent::new(0.1, 0.2)));
        }
    }
}

proptest! {
    // Interface construction is comparatively heavy; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn interface_frames_are_well_formed(
        grid in 1_usize..12,
        neurons in 1_usize..200,
        bits in 4_u8..=12,
        seed in 0_u64..1000,
    ) {
        let mut ni = NeuralInterface::new(grid, neurons, bits, seed).unwrap();
        let frame = ni.sample(Intent::new(0.4, -0.4)).unwrap();
        prop_assert_eq!(frame.samples.len(), grid * grid);
        prop_assert_eq!(frame.spikes.len(), neurons);
        let limit = 1_u32 << bits;
        prop_assert!(frame.samples.iter().all(|&c| u32::from(c) < limit));
    }
}
