//! Concrete stages wrapping each substrate crate's streaming kernel.
//!
//! Every stage follows the same buffer discipline: borrow the input
//! frame, write through one of [`FrameBuf`]'s `begin_*` methods, and
//! keep any scratch space (type conversions, DNN workspaces) inside the
//! stage so a warm chain never allocates.

use std::sync::Arc;

use mindful_decode::binning::BinAccumulator;
use mindful_decode::kalman::KalmanDecoder;
use mindful_decode::spike::SpikeDetector;
use mindful_decode::wiener::WienerDecoder;
use mindful_dnn::infer::{Network, Workspace};
use mindful_dnn::quant::{Precision, QuantizedNetwork};
use mindful_rf::packet::packetize_into;
use mindful_signal::adc::Adc;
use mindful_signal::interface::NeuralInterface;
use mindful_signal::neuron::{trajectory_intent, Intent};

use crate::error::{PipelineError, Result};
use crate::frame::{Frame, FrameBuf, StageOutput};
use crate::stage::Stage;

/// What drives the synthetic cortex each step of a [`SenseStage`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IntentSchedule {
    /// A fixed intent every step.
    Constant(Intent),
    /// The canonical figure-eight cursor trajectory
    /// ([`mindful_signal::neuron::trajectory_intent`]).
    FigureEight,
}

impl IntentSchedule {
    /// The intent at step `k`.
    #[must_use]
    pub fn at(&self, k: usize) -> Intent {
        match self {
            Self::Constant(intent) => *intent,
            Self::FigureEight => trajectory_intent(k),
        }
    }
}

/// Source stage: the synthetic neural interface (population → electrode
/// array → ADC), emitting one digitized codes frame per step.
pub struct SenseStage {
    interface: NeuralInterface,
    schedule: IntentSchedule,
    step: usize,
    /// Ground-truth spike scratch (the pipeline transports codes only).
    spikes: Vec<bool>,
}

impl SenseStage {
    /// Builds the interface (see [`NeuralInterface::new`]) and wraps it.
    ///
    /// # Errors
    ///
    /// Propagates interface construction errors.
    pub fn new(
        grid: usize,
        neurons: usize,
        sample_bits: u8,
        seed: u64,
        schedule: IntentSchedule,
    ) -> Result<Self> {
        Ok(Self::from_interface(
            NeuralInterface::new(grid, neurons, sample_bits, seed)?,
            schedule,
        ))
    }

    /// Wraps an existing interface (e.g. one already used to record a
    /// calibration trajectory, so its RNG state carries over).
    #[must_use]
    pub fn from_interface(interface: NeuralInterface, schedule: IntentSchedule) -> Self {
        Self {
            interface,
            schedule,
            step: 0,
            spikes: Vec::new(),
        }
    }

    /// Channel count of the wrapped interface.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.interface.channels()
    }
}

impl Stage for SenseStage {
    fn name(&self) -> &'static str {
        "sense"
    }

    fn process(&mut self, _input: &Frame<'_>, out: &mut FrameBuf) -> Result<StageOutput> {
        let intent = self.schedule.at(self.step);
        self.step += 1;
        self.interface
            .sample_into(intent, out.begin_codes(), &mut self.spikes)?;
        Ok(StageOutput::Emitted)
    }
}

/// Replay source: cycles through pre-recorded activation frames — the
/// host-side serving shape where digitized data arrives from the radio.
pub struct ReplaySource {
    frames: Vec<Vec<f32>>,
    cursor: usize,
}

impl ReplaySource {
    /// Wraps a non-empty set of frames to replay cyclically.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Empty`] for an empty frame set.
    pub fn new(frames: Vec<Vec<f32>>) -> Result<Self> {
        if frames.is_empty() {
            return Err(PipelineError::Empty);
        }
        Ok(Self { frames, cursor: 0 })
    }
}

impl Stage for ReplaySource {
    fn name(&self) -> &'static str {
        "replay"
    }

    fn process(&mut self, _input: &Frame<'_>, out: &mut FrameBuf) -> Result<StageOutput> {
        out.begin_activations()
            .extend_from_slice(&self.frames[self.cursor]);
        self.cursor = (self.cursor + 1) % self.frames.len();
        Ok(StageOutput::Emitted)
    }
}

/// Threshold spike detection over digitized codes (or analog values).
pub struct SpikeStage {
    detector: SpikeDetector,
    /// Codes-to-f64 conversion scratch.
    scratch: Vec<f64>,
}

impl SpikeStage {
    /// Wraps a calibrated detector.
    #[must_use]
    pub fn new(detector: SpikeDetector) -> Self {
        Self {
            detector,
            scratch: Vec::new(),
        }
    }
}

impl Stage for SpikeStage {
    fn name(&self) -> &'static str {
        "spike"
    }

    fn process(&mut self, input: &Frame<'_>, out: &mut FrameBuf) -> Result<StageOutput> {
        let frame: &[f64] = match input {
            Frame::Codes(codes) => {
                self.scratch.clear();
                self.scratch.extend(codes.iter().map(|&c| f64::from(c)));
                &self.scratch
            }
            Frame::Values(values) => values,
            other => {
                return Err(PipelineError::UnexpectedFrame {
                    stage: "spike",
                    actual: other.kind(),
                })
            }
        };
        self.detector.step_into(frame, out.begin_events())?;
        Ok(StageOutput::Emitted)
    }
}

/// Windowed event binning; emits one counts frame per full window.
pub struct BinStage {
    accumulator: BinAccumulator,
}

impl BinStage {
    /// Creates the accumulator (see [`BinAccumulator::new`]).
    ///
    /// # Errors
    ///
    /// Propagates accumulator construction errors.
    pub fn new(channels: usize, window: usize) -> Result<Self> {
        Ok(Self {
            accumulator: BinAccumulator::new(channels, window)?,
        })
    }

    /// Window length in samples.
    #[must_use]
    pub fn window(&self) -> usize {
        self.accumulator.window()
    }
}

impl Stage for BinStage {
    fn name(&self) -> &'static str {
        "bin"
    }

    fn process(&mut self, input: &Frame<'_>, out: &mut FrameBuf) -> Result<StageOutput> {
        let Frame::Events(events) = input else {
            return Err(PipelineError::UnexpectedFrame {
                stage: "bin",
                actual: input.kind(),
            });
        };
        if self.accumulator.push_into(events, out.begin_counts())? {
            Ok(StageOutput::Emitted)
        } else {
            Ok(StageOutput::Pending)
        }
    }

    /// Flushes a partially filled trailing window, so end-of-stream
    /// does not silently drop up to `window - 1` samples.
    fn finish(&mut self, out: &mut FrameBuf) -> Result<StageOutput> {
        if self.accumulator.flush_into(out.begin_counts()) > 0 {
            Ok(StageOutput::Emitted)
        } else {
            Ok(StageOutput::Pending)
        }
    }
}

/// Streaming Kalman decoding of binned counts into a 2-D intent.
pub struct KalmanStage {
    decoder: KalmanDecoder,
    /// Counts-to-f64 conversion scratch.
    scratch: Vec<f64>,
}

impl KalmanStage {
    /// Wraps a calibrated decoder.
    #[must_use]
    pub fn new(decoder: KalmanDecoder) -> Self {
        Self {
            decoder,
            scratch: Vec::new(),
        }
    }
}

impl Stage for KalmanStage {
    fn name(&self) -> &'static str {
        "kalman"
    }

    fn process(&mut self, input: &Frame<'_>, out: &mut FrameBuf) -> Result<StageOutput> {
        let frame: &[f64] = match input {
            Frame::Counts(counts) => {
                self.scratch.clear();
                self.scratch.extend(counts.iter().map(|&c| f64::from(c)));
                &self.scratch
            }
            Frame::Values(values) => values,
            other => {
                return Err(PipelineError::UnexpectedFrame {
                    stage: "kalman",
                    actual: other.kind(),
                })
            }
        };
        let state = self.decoder.step(frame)?;
        let buf = out.begin_values();
        buf.push(state.x);
        buf.push(state.y);
        Ok(StageOutput::Emitted)
    }
}

/// Streaming Wiener decoding of binned counts into a 2-D intent.
pub struct WienerStage {
    decoder: WienerDecoder,
    /// Counts-to-f64 conversion scratch.
    scratch: Vec<f64>,
}

impl WienerStage {
    /// Wraps a calibrated decoder.
    #[must_use]
    pub fn new(decoder: WienerDecoder) -> Self {
        Self {
            decoder,
            scratch: Vec::new(),
        }
    }
}

impl Stage for WienerStage {
    fn name(&self) -> &'static str {
        "wiener"
    }

    fn process(&mut self, input: &Frame<'_>, out: &mut FrameBuf) -> Result<StageOutput> {
        let frame: &[f64] = match input {
            Frame::Counts(counts) => {
                self.scratch.clear();
                self.scratch.extend(counts.iter().map(|&c| f64::from(c)));
                &self.scratch
            }
            Frame::Values(values) => values,
            other => {
                return Err(PipelineError::UnexpectedFrame {
                    stage: "wiener",
                    actual: other.kind(),
                })
            }
        };
        let state = self.decoder.step(frame)?;
        let buf = out.begin_values();
        buf.push(state.x);
        buf.push(state.y);
        Ok(StageOutput::Emitted)
    }
}

/// On-implant DNN inference over the zero-allocation engine
/// ([`Network::forward_into`]); emits one activations frame per input.
///
/// The weights live behind an [`Arc`], so many concurrent streams can
/// share one read-only model ([`DnnStage::shared`]) while each stage
/// keeps its own mutable [`Workspace`].
pub struct DnnStage {
    network: Arc<Network>,
    /// Present when the stage runs at [`Precision::Int8`]; the f32
    /// network stays attached as the calibration source of truth.
    quantized: Option<Arc<QuantizedNetwork>>,
    workspace: Workspace,
    /// Codes-to-normalized-f32 conversion scratch.
    scratch: Vec<f32>,
    /// Half of the code range (`2^(bits-1)`), so a code maps to
    /// `code / half − 1 ∈ [−1, 1)` — the same normalization the batched
    /// glue sites use.
    half_scale: f32,
}

impl DnnStage {
    /// Wraps a network whose codes inputs are `sample_bits` wide.
    ///
    /// # Errors
    ///
    /// Returns an invalid-parameter error for a zero or over-16 bit
    /// width.
    pub fn new(network: Network, sample_bits: u8) -> Result<Self> {
        Self::shared(Arc::new(network), sample_bits)
    }

    /// Like [`DnnStage::new`], but shares an already-wrapped network —
    /// the serving shape, where every stream's stage reads the same
    /// weights without cloning them.
    ///
    /// # Errors
    ///
    /// Same as [`DnnStage::new`].
    pub fn shared(network: Arc<Network>, sample_bits: u8) -> Result<Self> {
        Self::with_precision(network, sample_bits, Precision::F32)
    }

    /// Like [`DnnStage::shared`], with an explicit numeric precision.
    /// [`Precision::Int8`] quantizes the network once at construction
    /// (default ±1 full-scale calibration — exactly the code domain the
    /// stage normalizes into) and runs every frame through the integer
    /// datapath.
    ///
    /// # Errors
    ///
    /// Same as [`DnnStage::new`], plus quantization errors (e.g. a
    /// non-dense architecture) at `Int8`.
    pub fn with_precision(
        network: Arc<Network>,
        sample_bits: u8,
        precision: Precision,
    ) -> Result<Self> {
        let quantized = match precision {
            Precision::F32 => None,
            Precision::Int8 => Some(Arc::new(QuantizedNetwork::from_network_default(&network)?)),
        };
        Self::build(network, quantized, sample_bits)
    }

    /// Shares one already-quantized model across streams — the int8
    /// twin of [`DnnStage::shared`], skipping per-stream recalibration.
    ///
    /// # Errors
    ///
    /// Same as [`DnnStage::new`].
    pub fn shared_quantized(
        network: Arc<Network>,
        quantized: Arc<QuantizedNetwork>,
        sample_bits: u8,
    ) -> Result<Self> {
        Self::build(network, Some(quantized), sample_bits)
    }

    fn build(
        network: Arc<Network>,
        quantized: Option<Arc<QuantizedNetwork>>,
        sample_bits: u8,
    ) -> Result<Self> {
        if sample_bits == 0 || sample_bits > 16 {
            return Err(mindful_rf::RfError::InvalidParameter {
                name: "sample bits",
                value: f64::from(sample_bits),
            }
            .into());
        }
        let workspace = match &quantized {
            Some(q) => q.workspace(),
            None => network.workspace(),
        };
        Ok(Self {
            network,
            quantized,
            workspace,
            scratch: Vec::new(),
            half_scale: f32::from(1u16 << (sample_bits - 1)),
        })
    }

    /// The numeric precision this stage runs at.
    #[must_use]
    pub fn precision(&self) -> Precision {
        if self.quantized.is_some() {
            Precision::Int8
        } else {
            Precision::F32
        }
    }
}

impl Stage for DnnStage {
    fn name(&self) -> &'static str {
        "dnn"
    }

    fn process(&mut self, input: &Frame<'_>, out: &mut FrameBuf) -> Result<StageOutput> {
        let frame: &[f32] = match input {
            Frame::Codes(codes) => {
                self.scratch.clear();
                self.scratch
                    .extend(codes.iter().map(|&c| f32::from(c) / self.half_scale - 1.0));
                &self.scratch
            }
            Frame::Activations(values) => values,
            other => {
                return Err(PipelineError::UnexpectedFrame {
                    stage: "dnn",
                    actual: other.kind(),
                })
            }
        };
        let labels = match &self.quantized {
            Some(q) => q.forward_into(frame, &mut self.workspace)?,
            None => self.network.forward_into(frame, &mut self.workspace)?,
        };
        out.begin_activations().extend_from_slice(labels);
        Ok(StageOutput::Emitted)
    }
}

/// Sink stage: bit-packs each frame into the Section 3.1 wire format
/// with a running sequence number — the only computation a
/// communication-centric implant performs.
pub struct PacketizeStage {
    sequence: u16,
    sample_bits: u8,
    /// Conversion scratch for counts/values frames.
    codes: Vec<u16>,
    /// Quantizer for values frames (decoded intents), over
    /// [`PacketizeStage::VALUE_FULL_SCALE`].
    adc: Adc,
}

impl PacketizeStage {
    /// Full scale used to quantize values frames: decoded intents live
    /// in roughly `[-1, 1]`, so ±2 leaves headroom without wasting
    /// codes.
    pub const VALUE_FULL_SCALE: f64 = 2.0;

    /// Creates a packetizer emitting `sample_bits`-wide samples.
    ///
    /// # Errors
    ///
    /// Returns an invalid-parameter error for a zero or over-16 width.
    pub fn new(sample_bits: u8) -> Result<Self> {
        if sample_bits == 0 || sample_bits > 16 {
            return Err(mindful_rf::RfError::InvalidParameter {
                name: "sample bits",
                value: f64::from(sample_bits),
            }
            .into());
        }
        Ok(Self {
            sequence: 0,
            sample_bits,
            codes: Vec::new(),
            adc: Adc::new(sample_bits, Self::VALUE_FULL_SCALE)?,
        })
    }

    /// The next sequence number to be stamped on the wire.
    #[must_use]
    pub fn sequence(&self) -> u16 {
        self.sequence
    }
}

impl Stage for PacketizeStage {
    fn name(&self) -> &'static str {
        "packetize"
    }

    fn process(&mut self, input: &Frame<'_>, out: &mut FrameBuf) -> Result<StageOutput> {
        let limit = if self.sample_bits == 16 {
            u16::MAX
        } else {
            (1_u16 << self.sample_bits) - 1
        };
        let codes: &[u16] = match input {
            Frame::Codes(codes) => codes,
            Frame::Values(values) => {
                self.adc.quantize_frame_into(values, &mut self.codes);
                &self.codes
            }
            Frame::Counts(counts) => {
                // Bin counts are bounded by the window length in
                // practice; saturate at the wire width to stay lossless
                // for any realistic window.
                self.codes.clear();
                self.codes.extend(
                    counts
                        .iter()
                        .map(|&c| u16::try_from(c).unwrap_or(u16::MAX).min(limit)),
                );
                &self.codes
            }
            other => {
                return Err(PipelineError::UnexpectedFrame {
                    stage: "packetize",
                    actual: other.kind(),
                })
            }
        };
        packetize_into(self.sequence, codes, self.sample_bits, out.begin_bytes())?;
        self.sequence = self.sequence.wrapping_add(1);
        Ok(StageOutput::Emitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::Pipeline;
    use mindful_rf::packet::depacketize;

    #[test]
    fn intent_schedule_constant_and_figure_eight() {
        let c = IntentSchedule::Constant(Intent::new(0.3, -0.1));
        assert_eq!(c.at(0), Intent::new(0.3, -0.1));
        assert_eq!(c.at(99), Intent::new(0.3, -0.1));
        let f = IntentSchedule::FigureEight;
        assert_eq!(f.at(17), trajectory_intent(17));
    }

    #[test]
    fn sense_emits_channel_width_codes() {
        let mut p = Pipeline::new()
            .with_stage(SenseStage::new(4, 64, 10, 5, IntentSchedule::FigureEight).unwrap());
        let out = p.step().unwrap().unwrap();
        let Frame::Codes(codes) = out.as_frame() else {
            panic!("sense must emit codes");
        };
        assert_eq!(codes.len(), 16);
        assert!(codes.iter().all(|&c| c < 1024));
    }

    #[test]
    fn replay_cycles_through_frames() {
        let frames = vec![vec![1.0_f32, 2.0], vec![3.0, 4.0]];
        let mut p = Pipeline::new().with_stage(ReplaySource::new(frames).unwrap());
        assert_eq!(
            p.step().unwrap().unwrap().as_frame(),
            Frame::Activations(&[1.0, 2.0])
        );
        assert_eq!(
            p.step().unwrap().unwrap().as_frame(),
            Frame::Activations(&[3.0, 4.0])
        );
        assert_eq!(
            p.step().unwrap().unwrap().as_frame(),
            Frame::Activations(&[1.0, 2.0])
        );
        assert!(ReplaySource::new(Vec::new()).is_err());
    }

    #[test]
    fn packetizer_round_trips_codes_and_advances_sequence() {
        let mut stage = PacketizeStage::new(10).unwrap();
        let mut out = FrameBuf::new();
        let codes = [1_u16, 1023, 512, 7];
        assert_eq!(
            stage.process(&Frame::Codes(&codes), &mut out).unwrap(),
            StageOutput::Emitted
        );
        let Frame::Bytes(wire) = out.as_frame() else {
            panic!("packetize must emit bytes");
        };
        let parsed = depacketize(wire).unwrap();
        assert_eq!(parsed.sequence, 0);
        assert_eq!(parsed.samples, codes);
        assert_eq!(stage.sequence(), 1);
    }

    #[test]
    fn packetizer_quantizes_values_like_its_adc() {
        let mut stage = PacketizeStage::new(10).unwrap();
        let adc = Adc::new(10, PacketizeStage::VALUE_FULL_SCALE).unwrap();
        let mut out = FrameBuf::new();
        let values = [0.0, -0.8, 0.8, 3.0];
        stage.process(&Frame::Values(&values), &mut out).unwrap();
        let Frame::Bytes(wire) = out.as_frame() else {
            panic!("packetize must emit bytes");
        };
        assert_eq!(
            depacketize(wire).unwrap().samples,
            adc.quantize_frame(&values)
        );
    }

    #[test]
    fn packetizer_saturates_counts_at_the_wire_width() {
        let mut stage = PacketizeStage::new(4).unwrap();
        let mut out = FrameBuf::new();
        stage
            .process(&Frame::Counts(&[3, 70_000, 9]), &mut out)
            .unwrap();
        let Frame::Bytes(wire) = out.as_frame() else {
            panic!("packetize must emit bytes");
        };
        assert_eq!(depacketize(wire).unwrap().samples, vec![3, 15, 9]);
    }

    #[test]
    fn stages_reject_wrong_frame_kinds() {
        let mut out = FrameBuf::new();
        assert!(PacketizeStage::new(0).is_err());
        assert!(PacketizeStage::new(17).is_err());
        let mut p = PacketizeStage::new(10).unwrap();
        assert!(p.process(&Frame::Events(&[true]), &mut out).is_err());
        let mut b = BinStage::new(2, 4).unwrap();
        assert_eq!(b.window(), 4);
        assert!(b.process(&Frame::Codes(&[1, 2]), &mut out).is_err());
    }

    #[test]
    fn dnn_stage_validates_bit_width() {
        let arch = mindful_dnn::models::ModelFamily::Mlp
            .architecture(128)
            .unwrap();
        let net = Network::with_seeded_weights(arch, 7);
        assert!(DnnStage::new(net, 0).is_err());
    }

    #[test]
    fn int8_dnn_stage_tracks_the_f32_stage() {
        let arch = mindful_dnn::models::ModelFamily::Mlp
            .architecture(128)
            .unwrap();
        let net = Arc::new(Network::with_seeded_weights(arch, 7));
        let mut f32_stage = DnnStage::shared(Arc::clone(&net), 10).unwrap();
        let mut int8_stage =
            DnnStage::with_precision(Arc::clone(&net), 10, Precision::Int8).unwrap();
        assert_eq!(f32_stage.precision(), Precision::F32);
        assert_eq!(int8_stage.precision(), Precision::Int8);

        let codes: Vec<u16> = (0..128).map(|i| 512 + ((i * 37) % 512) as u16).collect();
        let (mut out_f32, mut out_int8) = (FrameBuf::default(), FrameBuf::default());
        f32_stage
            .process(&Frame::Codes(&codes), &mut out_f32)
            .unwrap();
        int8_stage
            .process(&Frame::Codes(&codes), &mut out_int8)
            .unwrap();
        let (Frame::Activations(a), Frame::Activations(b)) =
            (out_f32.as_frame(), out_int8.as_frame())
        else {
            panic!("dnn stages emit activations");
        };
        assert_eq!(a.len(), b.len());
        let mag = a.iter().fold(0.0_f32, |m, v| m.max(v.abs()));
        for (x, y) in a.iter().zip(b) {
            assert!(
                (x - y).abs() <= 0.05 * mag.max(0.1),
                "int8 stage diverges: {x} vs {y}"
            );
        }
    }
}
