//! DNN partitioning between implant and wearable (Section 6.1, Fig. 11).
//!
//! The implant runs only the first layers of the decoder and transmits
//! the intermediate activations; the wearable finishes the network. This
//! trades computation power for communication power. The paper's rule:
//! *partition at the earliest layer whose output data rate does not
//! exceed the transmission rate of a 1024-channel communication-centric
//! design* (i.e., the SoC's own raw-streaming rate `d · 1024 · f`).

use core::fmt;

use mindful_accel::alloc::best_allocation;
use mindful_core::regimes::SplitDesign;
use mindful_core::throughput::sensing_throughput;
use mindful_core::units::{DataRate, Power};

use crate::arch::Architecture;
use crate::error::{DnnError, Result};
use crate::integration::{max_channels, project_platform, IntegrationConfig};
use crate::models::{ModelFamily, APPLICATION_RATE};

/// A chosen partition of a model at one channel count.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionedPoint {
    channels: u64,
    keep_layers: usize,
    total_layers: usize,
    link_rate: DataRate,
    sensing: Power,
    computation: Power,
    communication: Power,
    budget: Power,
}

impl PartitionedPoint {
    /// Total NI channels.
    #[must_use]
    pub fn channels(&self) -> u64 {
        self.channels
    }

    /// Layers kept on the implant.
    #[must_use]
    pub fn keep_layers(&self) -> usize {
        self.keep_layers
    }

    /// Total layers of the model at this scale.
    #[must_use]
    pub fn total_layers(&self) -> usize {
        self.total_layers
    }

    /// Whether the whole network stayed on the implant (no split found
    /// earlier than the final layer).
    #[must_use]
    pub fn is_unpartitioned(&self) -> bool {
        self.keep_layers == self.total_layers
    }

    /// Wireless rate of the transmitted (intermediate or final)
    /// activations.
    #[must_use]
    pub fn link_rate(&self) -> DataRate {
        self.link_rate
    }

    /// On-implant computation power for the kept prefix.
    #[must_use]
    pub fn computation_power(&self) -> Power {
        self.computation
    }

    /// Wireless transmit power.
    #[must_use]
    pub fn communication_power(&self) -> Power {
        self.communication
    }

    /// Total SoC power.
    #[must_use]
    pub fn total_power(&self) -> Power {
        self.sensing + self.computation + self.communication
    }

    /// The power budget at this channel count.
    #[must_use]
    pub fn power_budget(&self) -> Power {
        self.budget
    }

    /// `P_soc / P_budget`.
    #[must_use]
    pub fn budget_utilization(&self) -> f64 {
        self.total_power() / self.budget
    }

    /// Whether the point respects the power budget.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.budget_utilization() <= 1.0 + 1e-12
    }
}

impl fmt::Display for PartitionedPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ch, {}/{} layers on implant, {:.1} Mbps: {:.2} mW vs {:.2} mW budget",
            self.channels,
            self.keep_layers,
            self.total_layers,
            self.link_rate.megabits_per_second(),
            self.total_power().milliwatts(),
            self.budget.milliwatts()
        )
    }
}

/// The wireless rate needed to stream a layer's output activations at
/// the application rate with `sample_bits`-bit values.
#[must_use]
pub fn activation_rate(output_values: u64, sample_bits: u8) -> DataRate {
    mindful_core::throughput::computation_centric_rate(output_values, sample_bits, APPLICATION_RATE)
}

/// Finds the earliest layer (1-based prefix length) whose output
/// activations fit under `rate_cap`, or `None` if even the final layer's
/// output does not fit.
#[must_use]
pub fn earliest_split(arch: &Architecture, rate_cap: DataRate, sample_bits: u8) -> Option<usize> {
    arch.layers()
        .iter()
        .position(|layer| activation_rate(layer.output_values(), sample_bits) <= rate_cap)
        .map(|idx| idx + 1)
}

/// Evaluates a partitioned deployment of `family` on a scaled SoC anchor
/// at `channels`: the model is split by the earliest-layer rule against
/// the SoC's own 1024-channel raw-streaming rate.
///
/// # Errors
///
/// * [`DnnError::Core`] if `channels` is below the anchor's reference.
/// * [`DnnError::Infeasible`] if even the final output exceeds the rate
///   cap (cannot happen for the paper's 40-label models).
/// * [`DnnError::Accel`] if the kept prefix cannot meet the real-time
///   deadline.
pub fn evaluate_partitioned(
    design: &SplitDesign,
    family: ModelFamily,
    channels: u64,
    config: &IntegrationConfig,
) -> Result<PartitionedPoint> {
    evaluate_partitioned_active(design, family, channels, channels, config)
}

/// Evaluates a partitioned deployment where only `active ≤ channels`
/// channels feed the decoder (channel dropout + layer reduction, the
/// `La+ChDr` stack of Section 6.2). The platform scales with the full
/// `channels`; the model and the split point scale with `active`.
///
/// # Errors
///
/// Same as [`evaluate_partitioned`], plus
/// [`DnnError::BelowBaseChannels`] when `active > channels`.
pub fn evaluate_partitioned_active(
    design: &SplitDesign,
    family: ModelFamily,
    channels: u64,
    active: u64,
    config: &IntegrationConfig,
) -> Result<PartitionedPoint> {
    if active > channels {
        return Err(DnnError::BelowBaseChannels {
            requested: channels,
            base: active,
        });
    }
    let (sensing, area) = project_platform(design, channels, config)?;
    let spec = design.scaled().spec();
    let rate_cap = sensing_throughput(
        design.reference_channels(),
        spec.sample_bits(),
        spec.sampling(),
    );
    let arch = family.architecture(active)?;
    let keep = earliest_split(&arch, rate_cap, config.sample_bits).ok_or_else(|| {
        DnnError::Infeasible {
            reason: format!(
                "even the final output of {} exceeds the {:.1} Mbps link cap",
                arch.name(),
                rate_cap.megabits_per_second()
            ),
        }
    })?;
    let prefix = arch.prefix(keep)?;
    let workload = prefix.workload()?;
    let allocation = best_allocation(&workload, config.node, family.deadline())?;
    let link_rate = activation_rate(prefix.output_values(), config.sample_bits);
    Ok(PartitionedPoint {
        channels,
        keep_layers: keep,
        total_layers: arch.len(),
        link_rate,
        sensing,
        computation: allocation.power(),
        communication: link_rate * config.energy_per_bit,
        budget: mindful_core::budget::power_budget(area),
    })
}

/// The largest number of active channels `n' ≤ n` whose *partitioned*
/// deployment fits the budget at `n` total channels (the `La + ChDr`
/// combination), searched on multiples of `step`.
///
/// # Errors
///
/// Returns [`DnnError::EmptyDimension`] for a zero step.
pub fn max_active_channels_partitioned(
    design: &SplitDesign,
    family: ModelFamily,
    channels: u64,
    config: &IntegrationConfig,
    step: u64,
) -> Result<Option<u64>> {
    if step == 0 {
        return Err(DnnError::EmptyDimension { name: "step" });
    }
    project_platform(design, channels, config)?;
    let mut best = None;
    let mut active = crate::models::BASE_CHANNELS;
    while active <= channels {
        match evaluate_partitioned_active(design, family, channels, active, config) {
            Ok(point) if point.is_feasible() => best = Some(active),
            // The split point jumps around with `active`, so scan the
            // whole range rather than stopping at the first miss.
            Ok(_) | Err(DnnError::Accel(_)) => {}
            Err(e) => return Err(e),
        }
        active += step;
    }
    Ok(best)
}

/// The maximum channel count at which the *partitioned* deployment fits
/// the budget (stepped search like
/// [`max_channels`]).
///
/// # Errors
///
/// Returns [`DnnError::EmptyDimension`] for a zero step.
pub fn max_channels_partitioned(
    design: &SplitDesign,
    family: ModelFamily,
    config: &IntegrationConfig,
    step: u64,
    limit: u64,
) -> Result<Option<u64>> {
    if step == 0 {
        return Err(DnnError::EmptyDimension { name: "step" });
    }
    let mut best = None;
    let mut n = design.reference_channels();
    while n <= limit {
        match evaluate_partitioned(design, family, n, config) {
            Ok(point) if point.is_feasible() => {
                best = Some(n);
                n += step;
            }
            // Unlike the full-model sweep, utilization is not strictly
            // monotone here (the split layer jumps around), so keep
            // scanning to the limit.
            Ok(_) | Err(DnnError::Accel(_)) => {
                n += step;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(best)
}

/// The Fig. 11 metric: the increase in feasible channel count enabled by
/// layer reduction, relative to the full on-implant model. A gain of
/// 1.0 means partitioning does not help; 1.4 means 40 % more channels.
///
/// `None` when neither deployment fits at any channel count.
///
/// # Errors
///
/// Returns [`DnnError::EmptyDimension`] for a zero step.
pub fn partition_gain(
    design: &SplitDesign,
    family: ModelFamily,
    config: &IntegrationConfig,
    step: u64,
    limit: u64,
) -> Result<Option<f64>> {
    let full = max_channels(design, family, config, step, limit)?;
    let split = max_channels_partitioned(design, family, config, step, limit)?;
    Ok(match (full, split) {
        (Some(f), Some(s)) => Some(s.max(f) as f64 / f as f64),
        (None, Some(_)) | (Some(_), None) => Some(1.0),
        (None, None) => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mindful_core::scaling::scale_to_standard;
    use mindful_core::soc::soc_by_id;

    fn anchor(id: u8) -> SplitDesign {
        SplitDesign::from_scaled(scale_to_standard(&soc_by_id(id).unwrap()).unwrap())
    }

    #[test]
    fn earliest_split_respects_rate_cap() {
        let arch = ModelFamily::Mlp.architecture(2048).unwrap();
        // A huge cap allows splitting after layer 1.
        let huge = DataRate::from_megabits_per_second(1e6);
        assert_eq!(earliest_split(&arch, huge, 10), Some(1));
        // A tiny cap forbids even the 40-label output (0.8 Mbps).
        let tiny = DataRate::from_kilobits_per_second(1.0);
        assert_eq!(earliest_split(&arch, tiny, 10), None);
        // The final layer always fits any cap at or above 0.8 Mbps.
        let just = DataRate::from_megabits_per_second(0.9);
        assert_eq!(earliest_split(&arch, just, 10), Some(arch.len()));
    }

    #[test]
    fn split_point_moves_later_as_channels_grow() {
        // Larger α means larger intermediate activations, pushing the
        // feasible split deeper into the network.
        let design = anchor(1); // BISC: cap = 81.92 Mbps.
        let config = IntegrationConfig::paper_45nm();
        let small = evaluate_partitioned(&design, ModelFamily::Mlp, 1024, &config).unwrap();
        let large = evaluate_partitioned(&design, ModelFamily::Mlp, 4096, &config).unwrap();
        assert!(small.keep_layers() <= large.keep_layers());
    }

    #[test]
    fn partitioned_point_transmits_within_cap() {
        let design = anchor(6); // Yang: 20 kHz → 204.8 Mbps cap.
        let config = IntegrationConfig::paper_45nm();
        let point = evaluate_partitioned(&design, ModelFamily::Mlp, 2048, &config).unwrap();
        let cap = sensing_throughput(1024, 10, design.scaled().spec().sampling());
        assert!(point.link_rate() <= cap);
        assert!(point.keep_layers() < point.total_layers());
    }

    #[test]
    fn high_rate_socs_gain_channels_from_partitioning() {
        // Fig. 11: partitioning helps the MLP on some SoCs (the paper's
        // best case is +40 % on SoC 6) and never hurts.
        let config = IntegrationConfig::paper_45nm();
        let mut best_gain: f64 = 1.0;
        for id in 1..=8_u8 {
            let design = anchor(id);
            if let Some(gain) =
                partition_gain(&design, ModelFamily::Mlp, &config, 64, 1 << 14).unwrap()
            {
                assert!(gain >= 1.0 - 1e-12, "SoC {id}: gain {gain}");
                best_gain = best_gain.max(gain);
            }
        }
        assert!(
            best_gain > 1.15,
            "some SoC must gain noticeably from MLP partitioning, best {best_gain:.2}"
        );
    }

    #[test]
    fn dn_cnn_gains_little_from_partitioning() {
        // Fig. 11: the DN-CNN shows no benefit — its intermediate
        // activations are too large to transmit.
        let config = IntegrationConfig::paper_45nm();
        let mut gains = Vec::new();
        for id in 1..=8_u8 {
            if let Some(gain) =
                partition_gain(&anchor(id), ModelFamily::DnCnn, &config, 64, 1 << 14).unwrap()
            {
                gains.push(gain);
            }
        }
        assert!(!gains.is_empty());
        let avg = gains.iter().sum::<f64>() / gains.len() as f64;
        // The paper reports exactly no benefit; our 1-D DN-CNN has
        // somewhat smaller intermediate tensors than the original 3-D
        // CNN, so the highest-rate SoCs squeeze out a small gain.
        assert!(avg < 1.15, "DN-CNN average gain {avg:.2} should be ~1.0");
    }

    #[test]
    fn mlp_beats_dn_cnn_in_partition_gains() {
        let config = IntegrationConfig::paper_45nm();
        let mut mlp_avg = 0.0;
        let mut cnn_avg = 0.0;
        let mut count = 0.0;
        for id in 1..=8_u8 {
            let design = anchor(id);
            let mlp = partition_gain(&design, ModelFamily::Mlp, &config, 128, 1 << 14).unwrap();
            let cnn = partition_gain(&design, ModelFamily::DnCnn, &config, 128, 1 << 14).unwrap();
            if let (Some(m), Some(c)) = (mlp, cnn) {
                mlp_avg += m;
                cnn_avg += c;
                count += 1.0;
            }
        }
        assert!(count > 0.0);
        assert!(mlp_avg / count >= cnn_avg / count);
    }

    #[test]
    fn invalid_step_is_rejected() {
        let design = anchor(1);
        let config = IntegrationConfig::paper_45nm();
        assert!(max_channels_partitioned(&design, ModelFamily::Mlp, &config, 0, 4096).is_err());
        assert!(partition_gain(&design, ModelFamily::Mlp, &config, 0, 4096).is_err());
    }

    #[test]
    fn display_shows_split() {
        let design = anchor(1);
        let config = IntegrationConfig::paper_45nm();
        let point = evaluate_partitioned(&design, ModelFamily::Mlp, 1024, &config).unwrap();
        let text = point.to_string();
        assert!(text.contains("layers on implant"));
        assert!(text.contains("Mbps"));
    }
}
