//! Benchmarks for the design-space sweep engine: skyline vs. naive
//! Pareto extraction, and serial vs. parallel grid evaluation.

use std::num::NonZeroUsize;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use mindful_core::explore::{pareto_frontier, pareto_frontier_naive, CandidatePoint};
use mindful_core::soc::wireless_socs;
use mindful_core::sweep::{par_map, ProjectionCache, SweepGrid};
use mindful_core::units::{Area, Power};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Random candidates with anti-correlated objectives: more channels
/// cost more power and area, as in the real design space. This keeps a
/// large fraction of points mutually non-dominated — the regime where
/// an all-pairs filter actually has to do quadratic work.
fn random_candidates(n: usize, seed: u64) -> Vec<CandidatePoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let u = rng.random::<f64>();
            let v = rng.random::<f64>();
            let jitter = 0.9 + rng.random::<f64>() * 0.2;
            let channels = 1 + (8_192.0 * (u + v) / 2.0 * jitter) as u64;
            CandidatePoint::new(
                format!("c{i}"),
                channels,
                Power::from_milliwatts(0.1 + 100.0 * u),
                Area::from_square_millimeters(1.0 + 1_000.0 * v),
            )
            .expect("generated objectives are positive and finite")
        })
        .collect()
}

fn explore_grid() -> SweepGrid {
    SweepGrid::builder()
        .socs(wireless_socs())
        .channels((1024..=8192).step_by(256))
        .efficiencies([1.0, 0.5, 0.2])
        .build()
        .expect("static axes are valid")
}

fn bench_pareto(c: &mut Criterion) {
    let small = random_candidates(10_000, 42);
    let large = random_candidates(100_000, 42);
    let mut group = c.benchmark_group("pareto");
    group.sample_size(10);
    group.bench_function("skyline_10k", |b| {
        b.iter(|| black_box(pareto_frontier(black_box(&small))))
    });
    group.bench_function("skyline_100k", |b| {
        b.iter(|| black_box(pareto_frontier(black_box(&large))))
    });
    group.sample_size(2);
    group.bench_function("naive_10k", |b| {
        b.iter(|| black_box(pareto_frontier_naive(black_box(&small))))
    });
    group.finish();
}

/// One-shot acceptance measurement on 100k random candidates: the
/// skyline must agree with the oracle and beat it by at least 10x.
fn report_frontier_speedup(_c: &mut Criterion) {
    let large = random_candidates(100_000, 7);
    let start = Instant::now();
    let fast = pareto_frontier(black_box(&large));
    let skyline = start.elapsed();
    let start = Instant::now();
    let slow = pareto_frontier_naive(black_box(&large));
    let naive = start.elapsed();
    assert_eq!(fast, slow, "skyline must match the naive oracle");
    let speedup = naive.as_secs_f64() / skyline.as_secs_f64();
    println!("pareto/speedup_100k   skyline {skyline:?} vs naive {naive:?} ({speedup:.0}x)",);
    assert!(
        speedup >= 10.0,
        "skyline must be at least 10x faster on 100k candidates, got {speedup:.1}x"
    );
}

fn bench_sweep(c: &mut Criterion) {
    let grid = explore_grid();
    let mut group = c.benchmark_group("sweep");
    group.sample_size(20);
    group.bench_function("evaluate_serial", |b| {
        b.iter(|| black_box(grid.evaluate_with_threads(NonZeroUsize::MIN).unwrap()))
    });
    group.bench_function("evaluate_8_threads", |b| {
        b.iter(|| {
            black_box(
                grid.evaluate_with_threads(NonZeroUsize::new(8).unwrap())
                    .unwrap(),
            )
        })
    });
    group.bench_function("evaluate_warm_cache", |b| {
        let cache = ProjectionCache::new();
        grid.evaluate_cached(&cache, NonZeroUsize::MIN).unwrap();
        b.iter(|| black_box(grid.evaluate_cached(&cache, NonZeroUsize::MIN).unwrap()))
    });
    group.bench_function("feasible_frontier", |b| {
        let result = grid.evaluate_with_threads(NonZeroUsize::MIN).unwrap();
        b.iter(|| black_box(result.feasible_frontier().unwrap()))
    });
    group.finish();
}

fn bench_par_map(c: &mut Criterion) {
    let items: Vec<u64> = (0..4096).collect();
    let mut group = c.benchmark_group("par_map");
    group.bench_function("spin_serial", |b| {
        b.iter(|| {
            black_box(par_map(&items, NonZeroUsize::MIN, |_, &x| {
                (0..256).fold(x, |acc, k| acc.wrapping_mul(31).wrapping_add(k))
            }))
        })
    });
    group.bench_function("spin_8_threads", |b| {
        b.iter(|| {
            black_box(par_map(&items, NonZeroUsize::new(8).unwrap(), |_, &x| {
                (0..256).fold(x, |acc, k| acc.wrapping_mul(31).wrapping_add(k))
            }))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pareto,
    report_frontier_speedup,
    bench_sweep,
    bench_par_map
);
criterion_main!(benches);
