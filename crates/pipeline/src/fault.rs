//! Fault injection, link resilience, and graceful degradation stages.
//!
//! Three stages turn the happy-path pipeline of PR 3 into one that
//! survives the faults a safety-power-capped implant link actually
//! produces (Section 5 sizes the uplink at BER 1e-6 with no headroom
//! to spare):
//!
//! * [`FaultStage`] — deterministic front-end fault injection over
//!   typed frames (frame drops, dead/saturated channel runs, NaN
//!   bursts), driven by a seeded [`FaultPlan`].
//! * [`LinkStage`] — the packet path: transmits each wire frame
//!   through an (optionally faulty) channel into the selective-repeat
//!   [`ArqLink`] receiver, emitting in-order playouts after a fixed
//!   window delay. A lost frame comes out as an *empty* codes frame —
//!   the in-band gap marker the concealment stage consumes.
//! * [`ConcealStage`] — degradation policies for missing or
//!   quarantined data: hold-last-value, zero-fill, or linear
//!   extrapolation, plus the NaN-quarantine guard that keeps
//!   non-finite values out of the stateful decoders and the DNN.
//!
//! Each stage reports a [`FaultTelemetry`] snapshot through
//! [`Stage::fault_telemetry`], which the pipeline driver threads into
//! its per-stage [`crate::StageTelemetry`].

use mindful_decode::DecodeError;
use mindful_rf::arq::{ArqConfig, ArqLink, ArqStats};
use mindful_rf::auth::{AuthConfig, AuthStats};
use mindful_rf::fault::{AttackCounters, FaultPlan, FrameFault, WireFaultInjector};

use crate::error::{PipelineError, Result};
use crate::frame::{Frame, FrameBuf, StageOutput};
use crate::secure::SecureTelemetry;
use crate::stage::Stage;

/// Fault counters a stage exposes to the pipeline driver.
///
/// The same shape serves all three fault-handling stages; counters a
/// stage has no business with stay zero (an injector never recovers,
/// a concealer never NAKs).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultTelemetry {
    /// Faults injected upstream of (or by) this stage.
    pub injected: u64,
    /// Fault events detected (corrupt packets, sequence gaps,
    /// duplicates, out-of-window arrivals).
    pub detected: u64,
    /// Gaps filled by retransmission or late arrival.
    pub recovered: u64,
    /// Frames that reached their playout deadline unfilled.
    pub lost: u64,
    /// Frames synthesized by a degradation policy (gap concealment).
    pub degraded: u64,
    /// Frames with non-finite channels repaired by the quarantine
    /// guard.
    pub quarantined: u64,
    /// NAKs sent by the ARQ receiver.
    pub naks: u64,
    /// Longest burst of consecutive missing frames.
    pub max_gap: u64,
    /// Total gap-detection-to-recovery latency in steps (divide by
    /// `recovered` for the mean).
    pub recovery_steps: u64,
}

impl FaultTelemetry {
    /// Folds another snapshot into this one (counters add; `max_gap`
    /// takes the max) — used to aggregate a whole chain.
    #[must_use]
    pub fn merged(self, other: Self) -> Self {
        Self {
            injected: self.injected + other.injected,
            detected: self.detected + other.detected,
            recovered: self.recovered + other.recovered,
            lost: self.lost + other.lost,
            degraded: self.degraded + other.degraded,
            quarantined: self.quarantined + other.quarantined,
            naks: self.naks + other.naks,
            max_gap: self.max_gap.max(other.max_gap),
            recovery_steps: self.recovery_steps + other.recovery_steps,
        }
    }

    fn from_arq(stats: ArqStats, injected: u64) -> Self {
        Self {
            injected,
            detected: stats.corrupted
                + stats.gaps_detected
                + stats.duplicates
                + stats.out_of_window,
            recovered: stats.recovered,
            lost: stats.lost,
            degraded: 0,
            quarantined: 0,
            naks: stats.naks_sent,
            max_gap: stats.max_gap,
            recovery_steps: stats.recovery_steps,
        }
    }
}

/// Saturation level used for real-valued frames (activations live in
/// `[-1, 1)` and decoded intents in roughly the same range).
pub const VALUE_SATURATION: f64 = 1.0;

/// Deterministic front-end fault injection as a pipeline stage.
///
/// Consumes and re-emits codes, values, activations, or counts frames,
/// applying at most one [`FrameFault`] per frame as decided by its
/// seeded [`FaultPlan`]: a dropped frame becomes an *empty* frame of
/// the same kind (the in-band gap marker), dead channels read zero,
/// saturated channels read full scale, and NaN bursts overwrite a
/// channel run with NaN (real-valued frames only — integer frames
/// veto the burst). With [`mindful_rf::fault::FaultConfig::none`] the
/// stage is a bit-exact passthrough.
pub struct FaultStage {
    plan: FaultPlan,
    /// Full-scale code for saturated channels.
    code_limit: u16,
}

impl FaultStage {
    /// Wraps a plan; `sample_bits` sets the full-scale code that
    /// saturated channels are driven to.
    ///
    /// # Errors
    ///
    /// Returns an invalid-parameter error for a zero or over-16 bit
    /// width.
    pub fn new(plan: FaultPlan, sample_bits: u8) -> Result<Self> {
        if sample_bits == 0 || sample_bits > 16 {
            return Err(mindful_rf::RfError::InvalidParameter {
                name: "sample bits",
                value: f64::from(sample_bits),
            }
            .into());
        }
        let code_limit = if sample_bits == 16 {
            u16::MAX
        } else {
            (1_u16 << sample_bits) - 1
        };
        Ok(Self { plan, code_limit })
    }

    /// The plan's injected-fault counters.
    #[must_use]
    pub fn counters(&self) -> mindful_rf::fault::FaultCounters {
        self.plan.counters()
    }

    fn apply<T: Copy>(
        fault: Option<FrameFault>,
        input: &[T],
        out: &mut Vec<T>,
        zero: T,
        saturated: T,
        nan: Option<T>,
    ) {
        match fault {
            Some(FrameFault::Drop) => {}
            None => out.extend_from_slice(input),
            Some(FrameFault::DeadChannels { start, len }) => {
                out.extend_from_slice(input);
                out[start..start + len].fill(zero);
            }
            Some(FrameFault::SaturatedChannels { start, len }) => {
                out.extend_from_slice(input);
                out[start..start + len].fill(saturated);
            }
            Some(FrameFault::NanBurst { start, len }) => {
                out.extend_from_slice(input);
                // Vetoed at draw time for integer frames, so `nan` is
                // always present here.
                if let Some(nan) = nan {
                    out[start..start + len].fill(nan);
                }
            }
        }
    }
}

impl Stage for FaultStage {
    fn name(&self) -> &'static str {
        "fault"
    }

    fn process(&mut self, input: &Frame<'_>, out: &mut FrameBuf) -> Result<StageOutput> {
        match input {
            Frame::Codes(codes) => {
                let fault = self.plan.next_frame_fault(codes.len(), false);
                Self::apply(fault, codes, out.begin_codes(), 0, self.code_limit, None);
            }
            Frame::Counts(counts) => {
                let fault = self.plan.next_frame_fault(counts.len(), false);
                Self::apply(
                    fault,
                    counts,
                    out.begin_counts(),
                    0,
                    u32::from(self.code_limit),
                    None,
                );
            }
            Frame::Values(values) => {
                let fault = self.plan.next_frame_fault(values.len(), true);
                Self::apply(
                    fault,
                    values,
                    out.begin_values(),
                    0.0,
                    VALUE_SATURATION,
                    Some(f64::NAN),
                );
            }
            Frame::Activations(values) => {
                let fault = self.plan.next_frame_fault(values.len(), true);
                Self::apply(
                    fault,
                    values,
                    out.begin_activations(),
                    0.0,
                    VALUE_SATURATION as f32,
                    Some(f32::NAN),
                );
            }
            other => {
                return Err(PipelineError::UnexpectedFrame {
                    stage: "fault",
                    actual: other.kind(),
                })
            }
        }
        Ok(StageOutput::Emitted)
    }

    fn fault_telemetry(&self) -> Option<FaultTelemetry> {
        Some(FaultTelemetry {
            injected: self.plan.counters().total(),
            ..FaultTelemetry::default()
        })
    }
}

/// The packet path: wire transmission (optionally through a fault
/// injector) into the selective-repeat ARQ receiver.
///
/// Consumes bytes frames (from a [`crate::PacketizeStage`]); emits one
/// codes frame per step after a fixed `window`-step playout delay
/// ([`StageOutput::Pending`] during warmup). A frame the receiver had
/// to give up on comes out as an *empty* codes frame — downstream, a
/// [`ConcealStage`] turns that marker into a policy-degraded frame.
/// End of stream is handled by [`Stage::finish`]: each call drains one
/// buffered frame (servicing any outstanding retransmissions on the
/// way), so a driven [`crate::Pipeline::finish`] plays out every
/// transmitted frame exactly once.
pub struct LinkStage {
    link: ArqLink,
    samples: Vec<u16>,
}

impl LinkStage {
    /// Builds the link path. `plan` is the forward channel's wire
    /// fault model (`None` for a clean channel); `rtt` is the NAK
    /// round-trip in steps.
    ///
    /// # Errors
    ///
    /// Propagates ARQ config validation errors.
    pub fn new(config: ArqConfig, plan: Option<FaultPlan>, rtt: u64) -> Result<Self> {
        let injector = plan.map(WireFaultInjector::new);
        Self::with_channel(config, injector, rtt, None)
    }

    /// Builds the link path over an explicit channel model: an
    /// optional pre-built [`WireFaultInjector`] (which may carry an
    /// [`mindful_rf::fault::Adversary`]) and an optional [`AuthConfig`]
    /// that seals every frame and authenticates every delivery.
    ///
    /// # Errors
    ///
    /// Propagates ARQ and auth config validation errors.
    pub fn with_channel(
        config: ArqConfig,
        injector: Option<WireFaultInjector>,
        rtt: u64,
        auth: Option<&AuthConfig>,
    ) -> Result<Self> {
        let link = match auth {
            None => ArqLink::new(config, injector, rtt)?,
            Some(auth) => ArqLink::with_auth(config, injector, rtt, auth)?,
        };
        Ok(Self {
            link,
            samples: Vec::new(),
        })
    }

    /// Receiver-side ARQ counters.
    #[must_use]
    pub fn stats(&self) -> ArqStats {
        self.link.stats()
    }

    /// Forward-channel fault counters (`None` for a clean link).
    #[must_use]
    pub fn fault_counters(&self) -> Option<mindful_rf::fault::FaultCounters> {
        self.link.fault_counters()
    }

    /// The authentication ledger (`None` on an unauthenticated link).
    #[must_use]
    pub fn auth_stats(&self) -> Option<AuthStats> {
        self.link.auth_stats()
    }

    /// The channel adversary's attack ledger (`None` without one).
    #[must_use]
    pub fn attack_counters(&self) -> Option<AttackCounters> {
        self.link.attack_counters()
    }

    fn emit(&mut self, playout: mindful_rf::arq::Playout, out: &mut FrameBuf) {
        let codes = out.begin_codes();
        if playout.delivered {
            codes.extend_from_slice(&self.samples);
        }
        // A lost frame stays empty: the in-band gap marker.
    }
}

impl Stage for LinkStage {
    fn name(&self) -> &'static str {
        "link"
    }

    fn process(&mut self, input: &Frame<'_>, out: &mut FrameBuf) -> Result<StageOutput> {
        let Frame::Bytes(wire) = input else {
            return Err(PipelineError::UnexpectedFrame {
                stage: "link",
                actual: input.kind(),
            });
        };
        match self.link.step_into(wire, &mut self.samples)? {
            None => Ok(StageOutput::Pending),
            Some(playout) => {
                self.emit(playout, out);
                Ok(StageOutput::Emitted)
            }
        }
    }

    fn finish(&mut self, out: &mut FrameBuf) -> Result<StageOutput> {
        match self.link.finish_into(&mut self.samples) {
            None => Ok(StageOutput::Pending),
            Some(playout) => {
                self.emit(playout, out);
                Ok(StageOutput::Emitted)
            }
        }
    }

    fn fault_telemetry(&self) -> Option<FaultTelemetry> {
        let injected = self.link.fault_counters().map_or(0, |c| c.total());
        Some(FaultTelemetry::from_arq(self.link.stats(), injected))
    }

    fn secure_telemetry(&self) -> Option<SecureTelemetry> {
        self.link
            .auth_stats()
            .map(|stats| SecureTelemetry::from_auth(&stats))
    }
}

/// How a [`ConcealStage`] synthesizes a missing or quarantined value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradePolicy {
    /// Repeat the channel's last good value (zero before any).
    HoldLast,
    /// Emit zero.
    ZeroFill,
    /// First-order linear extrapolation from the last two good frames
    /// (`2·last − older`) — the causal-stream form of linear
    /// interpolation, since a real-time chain cannot wait for the next
    /// good frame. Falls back to hold-last (then zero) while history
    /// builds.
    Interpolate,
}

/// Graceful degradation for missing or quarantined frames, and the
/// NaN-quarantine guard in front of the stateful decoders / DNN.
///
/// Consumes codes, values, activations, or counts frames of a fixed
/// channel width. An *empty* frame (the gap marker a [`LinkStage`] or
/// [`FaultStage`] emits for a dropped frame) is replaced by a frame
/// synthesized under the configured [`DegradePolicy`]; a frame
/// carrying NaN or infinite channels has exactly those channels
/// repaired by the same policy. Every frame this stage emits is
/// finite, full-width, and of the input's kind.
pub struct ConcealStage {
    channels: usize,
    policy: DegradePolicy,
    /// Last emitted frame (history for hold-last / extrapolation).
    last: Vec<f64>,
    /// The frame before `last`.
    older: Vec<f64>,
    /// Frames seen so far, capped at 2 (history depth).
    seen: usize,
    degraded: u64,
    quarantined: u64,
    scratch: Vec<f64>,
}

impl ConcealStage {
    /// A concealer for `channels`-wide frames under `policy`. The
    /// width is fixed up front so a gap can be concealed even before
    /// the first good frame arrives.
    ///
    /// # Errors
    ///
    /// Returns an invalid-parameter error for zero channels.
    pub fn new(channels: usize, policy: DegradePolicy) -> Result<Self> {
        if channels == 0 {
            return Err(DecodeError::InvalidParameter {
                name: "channels",
                value: 0.0,
            }
            .into());
        }
        Ok(Self {
            channels,
            policy,
            last: vec![0.0; channels],
            older: vec![0.0; channels],
            seen: 0,
            degraded: 0,
            quarantined: 0,
            scratch: Vec::new(),
        })
    }

    /// Frames synthesized whole (gap markers concealed).
    #[must_use]
    pub fn degraded(&self) -> u64 {
        self.degraded
    }

    /// Frames with non-finite channels repaired.
    #[must_use]
    pub fn quarantined(&self) -> u64 {
        self.quarantined
    }

    /// The policy's prediction for channel `c` given current history.
    fn predict(&self, c: usize) -> f64 {
        match (self.policy, self.seen) {
            (DegradePolicy::ZeroFill, _) | (_, 0) => 0.0,
            (DegradePolicy::HoldLast, _) | (DegradePolicy::Interpolate, 1) => self.last[c],
            (DegradePolicy::Interpolate, _) => 2.0 * self.last[c] - self.older[c],
        }
    }

    /// Core concealment over the f64 scratch: `None` input means a
    /// gap; `Some` is repaired channel-wise. Leaves the result in
    /// `self.scratch` and rolls the history forward.
    fn conceal(&mut self, gap: bool) {
        if gap {
            self.degraded += 1;
            self.scratch.clear();
            for c in 0..self.channels {
                self.scratch.push(self.predict(c));
            }
        } else if self.scratch.iter().any(|v| !v.is_finite()) {
            self.quarantined += 1;
            for c in 0..self.channels {
                if !self.scratch[c].is_finite() {
                    self.scratch[c] = self.predict(c);
                }
            }
        }
        // Roll history: older ← last ← emitted frame. The concealed
        // frame itself enters the history so a run of consecutive
        // gaps continues the policy's trajectory.
        core::mem::swap(&mut self.older, &mut self.last);
        self.last.copy_from_slice(&self.scratch);
        self.seen = (self.seen + 1).min(2);
    }

    fn check_width(&self, len: usize) -> Result<()> {
        if len != self.channels {
            return Err(DecodeError::ShapeMismatch {
                expected: self.channels,
                actual: len,
            }
            .into());
        }
        Ok(())
    }
}

impl Stage for ConcealStage {
    fn name(&self) -> &'static str {
        "conceal"
    }

    fn process(&mut self, input: &Frame<'_>, out: &mut FrameBuf) -> Result<StageOutput> {
        let gap = input.is_empty();
        // Load the input into the f64 scratch (skipped for a gap —
        // conceal() synthesizes the frame instead).
        self.scratch.clear();
        match input {
            Frame::Codes(codes) => {
                if !gap {
                    self.check_width(codes.len())?;
                    self.scratch.extend(codes.iter().map(|&c| f64::from(c)));
                }
                self.conceal(gap);
                out.begin_codes().extend(
                    self.scratch
                        .iter()
                        .map(|&v| libm_round_clamp(v, f64::from(u16::MAX)) as u16),
                );
            }
            Frame::Counts(counts) => {
                if !gap {
                    self.check_width(counts.len())?;
                    self.scratch.extend(counts.iter().map(|&c| f64::from(c)));
                }
                self.conceal(gap);
                out.begin_counts().extend(
                    self.scratch
                        .iter()
                        .map(|&v| libm_round_clamp(v, f64::from(u32::MAX)) as u32),
                );
            }
            Frame::Values(values) => {
                if !gap {
                    self.check_width(values.len())?;
                    self.scratch.extend_from_slice(values);
                }
                self.conceal(gap);
                out.begin_values().extend_from_slice(&self.scratch);
            }
            Frame::Activations(values) => {
                if !gap {
                    self.check_width(values.len())?;
                    self.scratch.extend(values.iter().map(|&v| f64::from(v)));
                }
                self.conceal(gap);
                out.begin_activations()
                    .extend(self.scratch.iter().map(|&v| v as f32));
            }
            other => {
                return Err(PipelineError::UnexpectedFrame {
                    stage: "conceal",
                    actual: other.kind(),
                })
            }
        }
        Ok(StageOutput::Emitted)
    }

    fn fault_telemetry(&self) -> Option<FaultTelemetry> {
        Some(FaultTelemetry {
            degraded: self.degraded,
            quarantined: self.quarantined,
            ..FaultTelemetry::default()
        })
    }
}

/// Round to nearest and clamp into `[0, max]` — extrapolation can
/// briefly leave the integer kinds' representable range.
fn libm_round_clamp(v: f64, max: f64) -> f64 {
    v.round().clamp(0.0, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::Pipeline;
    use crate::stages::PacketizeStage;
    use mindful_rf::fault::FaultConfig;

    fn plan(config: FaultConfig, seed: u64) -> FaultPlan {
        FaultPlan::new(config, seed).unwrap()
    }

    #[test]
    fn zero_rate_fault_stage_is_a_bit_exact_passthrough() {
        let mut stage = FaultStage::new(plan(FaultConfig::none(), 1), 10).unwrap();
        let mut out = FrameBuf::new();
        let codes: Vec<u16> = (0..64).collect();
        for _ in 0..100 {
            stage.process(&Frame::Codes(&codes), &mut out).unwrap();
            assert_eq!(out.as_frame(), Frame::Codes(codes.as_slice()));
        }
        let values = [0.5_f64, -0.25, 1.0];
        stage.process(&Frame::Values(&values), &mut out).unwrap();
        let Frame::Values(v) = out.as_frame() else {
            panic!("kind preserved");
        };
        assert_eq!(
            v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            values.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        );
        assert_eq!(stage.fault_telemetry().unwrap().injected, 0);
    }

    #[test]
    fn fault_stage_injects_every_frame_fault_kind() {
        let mut stage = FaultStage::new(plan(FaultConfig::frame_composite(0.9), 3), 10).unwrap();
        let mut out = FrameBuf::new();
        let values: Vec<f64> = (0..64).map(|c| 0.01 * f64::from(c)).collect();
        let (mut gaps, mut dead, mut sat, mut nan) = (0_u64, 0_u64, 0_u64, 0_u64);
        for _ in 0..500 {
            stage.process(&Frame::Values(&values), &mut out).unwrap();
            let Frame::Values(v) = out.as_frame() else {
                panic!("kind preserved");
            };
            if v.is_empty() {
                gaps += 1;
            } else {
                assert_eq!(v.len(), values.len());
                if v.iter().any(|x| x.is_nan()) {
                    nan += 1;
                }
                if v.iter().zip(&values).any(|(&a, &b)| a == 0.0 && b != 0.0) {
                    dead += 1;
                }
                if v.contains(&VALUE_SATURATION) {
                    sat += 1;
                }
            }
        }
        let counters = stage.counters();
        assert_eq!(gaps, counters.drops);
        assert_eq!(nan, counters.nan_bursts);
        assert!(dead >= 1 && sat >= 1, "dead {dead}, saturated {sat}");
        assert_eq!(stage.fault_telemetry().unwrap().injected, counters.total());
    }

    #[test]
    fn fault_stage_never_nans_integer_frames() {
        let mut config = FaultConfig::none();
        config.nan_burst = 0.9;
        let mut stage = FaultStage::new(plan(config, 5), 10).unwrap();
        let mut out = FrameBuf::new();
        let codes: Vec<u16> = (0..32).collect();
        for _ in 0..200 {
            stage.process(&Frame::Codes(&codes), &mut out).unwrap();
            assert_eq!(out.as_frame(), Frame::Codes(codes.as_slice()));
        }
        assert_eq!(stage.counters().nan_bursts, 0);
    }

    #[test]
    fn link_stage_round_trips_a_clean_packet_stream() {
        let window = 4;
        let mut p = Pipeline::new()
            .with_stage(PacketizeStage::new(10).unwrap())
            .with_stage(LinkStage::new(ArqConfig::selective_repeat(window), None, 2).unwrap());
        let mut seen = Vec::new();
        for k in 0..20_u16 {
            let codes = [k, k + 1, k + 2];
            if let Some(out) = p.push(Frame::Codes(&codes)).unwrap() {
                let Frame::Codes(played) = out.as_frame() else {
                    panic!("link emits codes");
                };
                seen.push(played.to_vec());
            }
        }
        assert_eq!(seen.len(), 20 - window, "window-delayed playout");
        assert_eq!(seen[0], vec![0, 1, 2]);
        assert_eq!(seen[15], vec![15, 16, 17]);
        let flushed = p.finish().unwrap();
        assert_eq!(flushed, window as u64, "finish drains the buffered tail");
        let telemetry = p.telemetry();
        let faults = telemetry[1].faults.unwrap();
        assert_eq!(faults.lost + faults.detected + faults.naks, 0);
    }

    #[test]
    fn conceal_policies_fill_gaps_as_documented() {
        let mut out = FrameBuf::new();
        // Hold-last repeats; zero-fill zeroes; extrapolation continues
        // the linear trend 10, 20 -> 30.
        for (policy, expect) in [
            (DegradePolicy::HoldLast, vec![20_u16, 20]),
            (DegradePolicy::ZeroFill, vec![0, 0]),
            (DegradePolicy::Interpolate, vec![30, 30]),
        ] {
            let mut stage = ConcealStage::new(2, policy).unwrap();
            stage.process(&Frame::Codes(&[10, 10]), &mut out).unwrap();
            stage.process(&Frame::Codes(&[20, 20]), &mut out).unwrap();
            stage.process(&Frame::Codes(&[]), &mut out).unwrap();
            assert_eq!(
                out.as_frame(),
                Frame::Codes(expect.as_slice()),
                "{policy:?}"
            );
            assert_eq!(stage.degraded(), 1);
            assert_eq!(stage.fault_telemetry().unwrap().degraded, 1);
        }
    }

    #[test]
    fn conceal_before_any_history_and_under_consecutive_gaps() {
        let mut out = FrameBuf::new();
        let mut stage = ConcealStage::new(3, DegradePolicy::Interpolate).unwrap();
        // A gap before the first good frame still emits a full-width
        // frame (zeros — no history yet).
        stage.process(&Frame::Codes(&[]), &mut out).unwrap();
        assert_eq!(out.as_frame(), Frame::Codes(&[0, 0, 0]));
        stage.process(&Frame::Codes(&[4, 4, 4]), &mut out).unwrap();
        stage.process(&Frame::Codes(&[6, 6, 6]), &mut out).unwrap();
        // Consecutive gaps continue the trend: 8, then 10.
        stage.process(&Frame::Codes(&[]), &mut out).unwrap();
        assert_eq!(out.as_frame(), Frame::Codes(&[8, 8, 8]));
        stage.process(&Frame::Codes(&[]), &mut out).unwrap();
        assert_eq!(out.as_frame(), Frame::Codes(&[10, 10, 10]));
        assert_eq!(stage.degraded(), 3);
        // Extrapolated codes clamp at zero rather than wrapping.
        let mut stage = ConcealStage::new(1, DegradePolicy::Interpolate).unwrap();
        stage.process(&Frame::Codes(&[10]), &mut out).unwrap();
        stage.process(&Frame::Codes(&[2]), &mut out).unwrap();
        stage.process(&Frame::Codes(&[]), &mut out).unwrap();
        assert_eq!(out.as_frame(), Frame::Codes(&[0]), "2*2-10 clamps to 0");
    }

    #[test]
    fn conceal_quarantines_non_finite_channels() {
        let mut out = FrameBuf::new();
        let mut stage = ConcealStage::new(3, DegradePolicy::HoldLast).unwrap();
        stage
            .process(&Frame::Values(&[1.0, 2.0, 3.0]), &mut out)
            .unwrap();
        stage
            .process(&Frame::Values(&[4.0, f64::NAN, f64::INFINITY]), &mut out)
            .unwrap();
        let Frame::Values(v) = out.as_frame() else {
            panic!("kind preserved");
        };
        assert_eq!(v, &[4.0, 2.0, 3.0], "good channels pass, bad ones hold");
        assert_eq!(stage.quarantined(), 1);
        assert_eq!(stage.degraded(), 0);
        // The repaired frame entered history: a following gap holds it.
        stage.process(&Frame::Values(&[]), &mut out).unwrap();
        let Frame::Values(v) = out.as_frame() else {
            panic!("kind preserved");
        };
        assert_eq!(v, &[4.0, 2.0, 3.0]);
        // f32 activations are guarded too.
        let mut stage = ConcealStage::new(2, DegradePolicy::ZeroFill).unwrap();
        stage
            .process(&Frame::Activations(&[f32::NAN, 0.5]), &mut out)
            .unwrap();
        assert_eq!(out.as_frame(), Frame::Activations(&[0.0, 0.5]));
        assert_eq!(stage.quarantined(), 1);
    }

    #[test]
    fn conceal_validates_width_and_kind() {
        let mut out = FrameBuf::new();
        assert!(ConcealStage::new(0, DegradePolicy::ZeroFill).is_err());
        let mut stage = ConcealStage::new(2, DegradePolicy::ZeroFill).unwrap();
        assert!(stage.process(&Frame::Codes(&[1, 2, 3]), &mut out).is_err());
        assert!(stage.process(&Frame::Bytes(&[1]), &mut out).is_err());
        assert!(stage.process(&Frame::Empty, &mut out).is_err());
    }

    #[test]
    fn telemetry_merge_adds_counters_and_maxes_gaps() {
        let a = FaultTelemetry {
            injected: 3,
            max_gap: 2,
            recovered: 1,
            ..FaultTelemetry::default()
        };
        let b = FaultTelemetry {
            injected: 4,
            max_gap: 5,
            lost: 2,
            ..FaultTelemetry::default()
        };
        let m = a.merged(b);
        assert_eq!(m.injected, 7);
        assert_eq!(m.max_gap, 5);
        assert_eq!(m.recovered, 1);
        assert_eq!(m.lost, 2);
    }
}
