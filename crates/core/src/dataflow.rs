//! Implant dataflow strategies (Section 3.1, Fig. 3).
//!
//! Every implanted SoC pipes data from the neural interface to the
//! wireless transceiver. The paper distinguishes two strategies by where
//! the data volume is reduced:
//!
//! * **Communication-centric** — on-implant computation is limited to
//!   packetization (`n_out ≈ n`); the transceiver carries the full raw
//!   rate.
//! * **Computation-centric** — application-level processing runs on the
//!   implant, transmitting only its (much smaller) output.

use core::fmt;

use crate::throughput::{communication_centric_rate, computation_centric_rate};
use crate::units::{DataRate, Frequency};

/// Where the implant reduces its data volume (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[non_exhaustive]
pub enum Dataflow {
    /// Digitize, packetize, transmit everything.
    CommunicationCentric,
    /// Run application computation on the implant and transmit only
    /// `outputs` values per inference at `output_rate`.
    ComputationCentric {
        /// Number of output values produced per inference (`n_out`).
        outputs: u64,
        /// Rate at which inference results are produced.
        output_rate: Frequency,
    },
}

impl Dataflow {
    /// The wireless data rate this dataflow requires for an implant with
    /// `channels` channels sampled at `sampling` with `sample_bits`-bit
    /// samples (Eqs. 7–8).
    ///
    /// # Examples
    ///
    /// ```
    /// use mindful_core::dataflow::Dataflow;
    /// use mindful_core::units::Frequency;
    ///
    /// let f = Frequency::from_kilohertz(8.0);
    /// let raw = Dataflow::CommunicationCentric.required_rate(1024, 10, f);
    /// let reduced = Dataflow::ComputationCentric {
    ///     outputs: 40,
    ///     output_rate: Frequency::from_hertz(100.0),
    /// }
    /// .required_rate(1024, 10, f);
    /// assert!(reduced.bits_per_second() < raw.bits_per_second() / 100.0);
    /// ```
    #[must_use]
    pub fn required_rate(&self, channels: u64, sample_bits: u8, sampling: Frequency) -> DataRate {
        match *self {
            Self::CommunicationCentric => {
                communication_centric_rate(channels, sample_bits, sampling)
            }
            Self::ComputationCentric {
                outputs,
                output_rate,
            } => computation_centric_rate(outputs, sample_bits, output_rate),
        }
    }

    /// Whether this dataflow performs application computation on the
    /// implant.
    #[must_use]
    pub fn computes_on_implant(&self) -> bool {
        matches!(self, Self::ComputationCentric { .. })
    }
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::CommunicationCentric => f.write_str("communication-centric"),
            Self::ComputationCentric { outputs, .. } => {
                write!(f, "computation-centric ({outputs} outputs)")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn communication_centric_carries_raw_rate() {
        let rate =
            Dataflow::CommunicationCentric.required_rate(1024, 10, Frequency::from_kilohertz(8.0));
        assert!((rate.megabits_per_second() - 81.92).abs() < 1e-9);
        assert!(!Dataflow::CommunicationCentric.computes_on_implant());
    }

    #[test]
    fn computation_centric_is_independent_of_channels() {
        let flow = Dataflow::ComputationCentric {
            outputs: 40,
            output_rate: Frequency::from_hertz(50.0),
        };
        let f = Frequency::from_kilohertz(8.0);
        let a = flow.required_rate(1024, 10, f);
        let b = flow.required_rate(8192, 10, f);
        assert_eq!(a, b);
        assert!((a.kilobits_per_second() - 20.0).abs() < 1e-9);
        assert!(flow.computes_on_implant());
    }

    #[test]
    fn display_names() {
        assert_eq!(
            Dataflow::CommunicationCentric.to_string(),
            "communication-centric"
        );
        let flow = Dataflow::ComputationCentric {
            outputs: 40,
            output_rate: Frequency::from_hertz(50.0),
        };
        assert_eq!(flow.to_string(), "computation-centric (40 outputs)");
    }
}
