//! The neural firewall and the secure-link telemetry it reports.
//!
//! The paper's L8 Neural Gateway is the trust boundary between the
//! wireless link and everything that can move a prosthetic: frames
//! crossing it must be *authentic* (the [`mindful_rf::auth`] layer, a
//! [`LinkStage`](crate::LinkStage) concern) and *coherent* — plausible
//! as a continuation of the neural stream, even when correctly signed.
//! [`FirewallStage`] implements the coherence screen as a streaming
//! stage: it maintains exponentially weighted per-channel statistics
//! plus two scalar stream statistics, scores every frame with a
//! bounded coherence metric `exp(-(penalty_γ + penalty_φ + penalty_τ))`
//! (the ONI coherence form, with the three variance terms standing in
//! for gain, frame-power, and rate-of-change drift), and replaces any
//! frame scoring below threshold with the in-band *gap marker* (an
//! empty frame) that a downstream [`ConcealStage`](crate::ConcealStage)
//! already knows how to degrade gracefully. A quarantined frame never
//! updates the statistics, so an attacker cannot walk the baseline
//! toward an implausible operating point.
//!
//! Both the firewall and an authenticated link report through
//! [`SecureTelemetry`], the security analogue of
//! [`FaultTelemetry`](crate::FaultTelemetry): the driver snapshots it
//! into [`crate::StageTelemetry::secure`] after every step and mirrors
//! it into `secure.*` gauges when instrumented (leaf names from
//! [`mindful_core::obs::names`]).

use mindful_decode::DecodeError;
use mindful_rf::auth::AuthStats;
use mindful_rf::RfError;

use crate::error::{PipelineError, Result};
use crate::frame::{Frame, FrameBuf, StageOutput};
use crate::stage::Stage;

/// Scale for [`SecureTelemetry::coherence_ppm`]: a coherence score of
/// `1.0` (perfectly in-family) is reported as one million.
pub const COHERENCE_SCALE: u64 = 1_000_000;

/// Security counters a stage exposes to the pipeline driver.
///
/// One shape serves both ends of the trust boundary: an authenticated
/// [`LinkStage`](crate::LinkStage) fills the frame-authentication
/// counters (from [`AuthStats`]) and a [`FirewallStage`] fills the
/// coherence fields; counters a stage has no business with stay zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecureTelemetry {
    /// Frames sealed by the authenticated sender.
    pub sealed: u64,
    /// Sealed frames that passed MAC + replay verification.
    pub accepted: u64,
    /// Frames rejected by authentication (MAC mismatch, malformed
    /// envelope, key mismatch) — forged traffic, never accepted.
    pub rejected_auth: u64,
    /// Authentic frames rejected because their nonce was already
    /// accepted once.
    pub replayed: u64,
    /// Frames older than the replay window can vouch for.
    pub stale: u64,
    /// Frames quarantined by the firewall's coherence screen.
    pub firewalled: u64,
    /// Latest coherence score in parts-per-million of `1.0`
    /// ([`COHERENCE_SCALE`] before any frame is scored).
    pub coherence_ppm: u64,
}

impl Default for SecureTelemetry {
    fn default() -> Self {
        Self {
            sealed: 0,
            accepted: 0,
            rejected_auth: 0,
            replayed: 0,
            stale: 0,
            firewalled: 0,
            coherence_ppm: COHERENCE_SCALE,
        }
    }
}

impl SecureTelemetry {
    /// Folds another snapshot into this one (counters add;
    /// `coherence_ppm` takes the minimum — the chain is as coherent as
    /// its most suspicious stage) — used to aggregate a whole chain.
    #[must_use]
    pub fn merged(self, other: Self) -> Self {
        Self {
            sealed: self.sealed + other.sealed,
            accepted: self.accepted + other.accepted,
            rejected_auth: self.rejected_auth + other.rejected_auth,
            replayed: self.replayed + other.replayed,
            stale: self.stale + other.stale,
            firewalled: self.firewalled + other.firewalled,
            coherence_ppm: self.coherence_ppm.min(other.coherence_ppm),
        }
    }

    /// The authenticated-link view of the ledger.
    #[must_use]
    pub fn from_auth(stats: &AuthStats) -> Self {
        Self {
            sealed: stats.sealed,
            accepted: stats.accepted,
            rejected_auth: stats.rejected_auth(),
            replayed: stats.replayed,
            stale: stats.stale,
            ..Self::default()
        }
    }
}

/// Tuning for a [`FirewallStage`]'s coherence screen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FirewallConfig {
    /// Exponentially weighted moving-statistic smoothing factor in
    /// `(0, 1)`: the effective memory is roughly `1 / alpha` frames.
    pub alpha: f64,
    /// Frames observed before the screen goes live. During warmup
    /// every frame passes and trains the statistics.
    pub warmup: u64,
    /// Squared-deviation tolerance (in variance units) for the
    /// per-channel gain term γ before it starts contributing penalty.
    pub gain_tol: f64,
    /// Squared-deviation tolerance for the scalar frame-power (φ) and
    /// rate-of-change (τ) terms.
    pub stat_tol: f64,
    /// Coherence scores strictly below this are quarantined.
    pub threshold: f64,
}

impl Default for FirewallConfig {
    fn default() -> Self {
        Self {
            alpha: 0.05,
            warmup: 64,
            gain_tol: 9.0,
            stat_tol: 36.0,
            threshold: 0.5,
        }
    }
}

impl FirewallConfig {
    fn validate(&self) -> Result<()> {
        let bad = |name: &'static str, value: f64| -> Result<()> {
            Err(RfError::InvalidParameter { name, value }.into())
        };
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return bad("firewall alpha", self.alpha);
        }
        if self.warmup == 0 {
            return bad("firewall warmup", 0.0);
        }
        if !(self.gain_tol > 0.0 && self.gain_tol.is_finite()) {
            return bad("firewall gain tolerance", self.gain_tol);
        }
        if !(self.stat_tol > 0.0 && self.stat_tol.is_finite()) {
            return bad("firewall stat tolerance", self.stat_tol);
        }
        if !(self.threshold >= 0.0 && self.threshold < 1.0) {
            return bad("firewall threshold", self.threshold);
        }
        Ok(())
    }
}

/// One exponentially weighted mean/variance tracker.
#[derive(Debug, Clone, Copy, Default)]
struct EwStat {
    mean: f64,
    var: f64,
}

impl EwStat {
    /// `μ += α·d; σ² ← (1−α)(σ² + α·d²)` — the standard EW update that
    /// keeps the variance consistent with the shifting mean.
    #[inline]
    fn update(&mut self, x: f64, alpha: f64) {
        let d = x - self.mean;
        self.mean += alpha * d;
        self.var = (1.0 - alpha) * (self.var + alpha * d * d);
    }

    /// Squared deviation of `x` in units of the tracked variance, with
    /// a relative floor so a perfectly flat baseline (variance zero)
    /// does not turn measurement noise into infinities.
    #[inline]
    fn z_squared(&self, x: f64) -> f64 {
        let eps = 1e-6 + 1e-4 * self.mean * self.mean;
        let d = x - self.mean;
        d * d / (self.var + eps)
    }
}

/// The L8 neural firewall: a streaming coherence screen in front of
/// the decoders and the DNN.
///
/// Consumes codes, values, activations, or counts frames of a fixed
/// channel width. Each frame is scored against exponentially weighted
/// statistics of the stream itself — per-channel level (gain drift γ),
/// frame variance (power drift φ), and mean absolute step from the
/// last accepted frame (rate-of-change τ). Frames scoring below the
/// configured threshold are *quarantined*: the stage emits the empty
/// gap marker instead, which a downstream
/// [`ConcealStage`](crate::ConcealStage) conceals under its policy.
/// Accepted frames pass through bit-exact and train the statistics;
/// quarantined frames train nothing. An empty input frame (a gap
/// marker from upstream) passes through untouched and unscored.
pub struct FirewallStage {
    channels: usize,
    config: FirewallConfig,
    /// Per-channel level statistics (the γ term).
    gain: Vec<EwStat>,
    /// Frame-variance statistic (the φ term).
    power: EwStat,
    /// Mean-absolute-step statistic (the τ term).
    rate: EwStat,
    /// Last accepted frame, for the rate-of-change term.
    prev: Vec<f64>,
    /// Whether `prev` is the frame's *immediate* predecessor. A
    /// quarantine or an upstream gap breaks the chain: judging a
    /// resumption's step against a stale predecessor would turn every
    /// recovery into a fresh anomaly.
    tau_valid: bool,
    /// Accepted frames so far (drives warmup).
    seen: u64,
    firewalled: u64,
    /// Latest coherence score in `[0, 1]`.
    coherence: f64,
    scratch: Vec<f64>,
}

impl FirewallStage {
    /// A firewall for `channels`-wide frames under `config`.
    ///
    /// # Errors
    ///
    /// Returns an invalid-parameter error for zero channels or an
    /// out-of-range config field.
    pub fn new(channels: usize, config: FirewallConfig) -> Result<Self> {
        if channels == 0 {
            return Err(DecodeError::InvalidParameter {
                name: "channels",
                value: 0.0,
            }
            .into());
        }
        config.validate()?;
        Ok(Self {
            channels,
            config,
            gain: vec![EwStat::default(); channels],
            power: EwStat::default(),
            rate: EwStat::default(),
            prev: vec![0.0; channels],
            tau_valid: false,
            seen: 0,
            firewalled: 0,
            coherence: 1.0,
            scratch: Vec::new(),
        })
    }

    /// Frames quarantined so far.
    #[must_use]
    pub fn firewalled(&self) -> u64 {
        self.firewalled
    }

    /// The latest frame's coherence score in `[0, 1]` (`1.0` before
    /// any frame is scored).
    #[must_use]
    pub fn coherence(&self) -> f64 {
        self.coherence
    }

    /// Tolerance-gated penalty: deviations inside `tol` are free,
    /// beyond it the cost grows linearly in units of the tolerance.
    #[inline]
    fn penalty(z2: f64, tol: f64) -> f64 {
        ((z2 - tol) / tol).max(0.0)
    }

    /// Scores `self.scratch` against the current statistics. Non-finite
    /// channels are maximally incoherent (score zero) — the NaN screen
    /// in front of the NaN screen.
    fn score(&self) -> f64 {
        let mut gamma = 0.0;
        let mut sum = 0.0;
        for (c, stat) in self.gain.iter().enumerate() {
            let x = self.scratch[c];
            if !x.is_finite() {
                return 0.0;
            }
            gamma += Self::penalty(stat.z_squared(x), self.config.gain_tol);
            sum += x;
        }
        gamma /= self.channels as f64;
        let mean = sum / self.channels as f64;
        let var = self
            .scratch
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f64>()
            / self.channels as f64;
        let phi = Self::penalty(self.power.z_squared(var), self.config.stat_tol);
        let tau = if !self.tau_valid {
            // No immediate predecessor: no step to judge.
            0.0
        } else {
            let step = self
                .scratch
                .iter()
                .zip(&self.prev)
                .map(|(&x, &p)| (x - p).abs())
                .sum::<f64>()
                / self.channels as f64;
            Self::penalty(self.rate.z_squared(step), self.config.stat_tol)
        };
        (-(gamma + phi + tau)).exp()
    }

    /// Trains the statistics on the (accepted) frame in `self.scratch`
    /// and rolls it into the rate-of-change history.
    fn train(&mut self) {
        let alpha = self.config.alpha;
        let mut sum = 0.0;
        for (c, stat) in self.gain.iter_mut().enumerate() {
            let x = self.scratch[c];
            stat.update(x, alpha);
            sum += x;
        }
        let mean = sum / self.channels as f64;
        let var = self
            .scratch
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f64>()
            / self.channels as f64;
        self.power.update(var, alpha);
        if self.tau_valid {
            let step = self
                .scratch
                .iter()
                .zip(&self.prev)
                .map(|(&x, &p)| (x - p).abs())
                .sum::<f64>()
                / self.channels as f64;
            self.rate.update(step, alpha);
        }
        self.prev.copy_from_slice(&self.scratch);
        self.tau_valid = true;
        self.seen += 1;
    }

    /// Screens the frame currently in `self.scratch`; returns whether
    /// it passes. Warmup frames always pass; every accepted frame
    /// trains the statistics, a quarantined frame trains nothing.
    fn admit(&mut self) -> bool {
        if self.seen < self.config.warmup {
            self.coherence = 1.0;
            self.train();
            return true;
        }
        self.coherence = self.score();
        if self.coherence < self.config.threshold {
            self.firewalled += 1;
            self.tau_valid = false;
            false
        } else {
            self.train();
            true
        }
    }

    fn check_width(&self, len: usize) -> Result<()> {
        if len != self.channels {
            return Err(DecodeError::ShapeMismatch {
                expected: self.channels,
                actual: len,
            }
            .into());
        }
        Ok(())
    }
}

impl Stage for FirewallStage {
    fn name(&self) -> &'static str {
        "firewall"
    }

    fn process(&mut self, input: &Frame<'_>, out: &mut FrameBuf) -> Result<StageOutput> {
        // A gap marker from upstream passes through unscored — the
        // link already accounted for it and the concealer owns it —
        // but it still breaks the rate-of-change chain.
        if input.is_empty() {
            self.tau_valid = false;
        }
        self.scratch.clear();
        match input {
            Frame::Codes(codes) => {
                let buf = out.begin_codes();
                if !codes.is_empty() {
                    self.check_width(codes.len())?;
                    self.scratch.extend(codes.iter().map(|&c| f64::from(c)));
                    if self.admit() {
                        buf.extend_from_slice(codes);
                    }
                }
            }
            Frame::Counts(counts) => {
                let buf = out.begin_counts();
                if !counts.is_empty() {
                    self.check_width(counts.len())?;
                    self.scratch.extend(counts.iter().map(|&c| f64::from(c)));
                    if self.admit() {
                        buf.extend_from_slice(counts);
                    }
                }
            }
            Frame::Values(values) => {
                let buf = out.begin_values();
                if !values.is_empty() {
                    self.check_width(values.len())?;
                    self.scratch.extend_from_slice(values);
                    if self.admit() {
                        buf.extend_from_slice(values);
                    }
                }
            }
            Frame::Activations(values) => {
                let buf = out.begin_activations();
                if !values.is_empty() {
                    self.check_width(values.len())?;
                    self.scratch.extend(values.iter().map(|&v| f64::from(v)));
                    if self.admit() {
                        buf.extend_from_slice(values);
                    }
                }
            }
            other => {
                return Err(PipelineError::UnexpectedFrame {
                    stage: "firewall",
                    actual: other.kind(),
                })
            }
        }
        Ok(StageOutput::Emitted)
    }

    fn secure_telemetry(&self) -> Option<SecureTelemetry> {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        Some(SecureTelemetry {
            firewalled: self.firewalled,
            coherence_ppm: (self.coherence.clamp(0.0, 1.0) * COHERENCE_SCALE as f64).round() as u64,
            ..SecureTelemetry::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A steady in-family stream: small sinusoidal wobble around a
    /// per-channel baseline.
    fn steady(step: u64, channels: usize) -> Vec<u16> {
        (0..channels)
            .map(|c| {
                let base = 400.0 + 3.0 * c as f64;
                let wobble = 25.0 * ((step as f64 * 0.37 + c as f64).sin());
                (base + wobble) as u16
            })
            .collect()
    }

    fn warm_stage(channels: usize, steps: u64) -> (FirewallStage, FrameBuf) {
        let mut stage = FirewallStage::new(channels, FirewallConfig::default()).unwrap();
        let mut out = FrameBuf::new();
        for k in 0..steps {
            let codes = steady(k, channels);
            stage.process(&Frame::Codes(&codes), &mut out).unwrap();
        }
        (stage, out)
    }

    #[test]
    fn config_validation_rejects_out_of_range_fields() {
        for bad in [
            FirewallConfig {
                alpha: 0.0,
                ..FirewallConfig::default()
            },
            FirewallConfig {
                alpha: 1.0,
                ..FirewallConfig::default()
            },
            FirewallConfig {
                warmup: 0,
                ..FirewallConfig::default()
            },
            FirewallConfig {
                gain_tol: 0.0,
                ..FirewallConfig::default()
            },
            FirewallConfig {
                stat_tol: -1.0,
                ..FirewallConfig::default()
            },
            FirewallConfig {
                threshold: 1.0,
                ..FirewallConfig::default()
            },
        ] {
            assert!(FirewallStage::new(8, bad).is_err(), "{bad:?}");
        }
        assert!(FirewallStage::new(0, FirewallConfig::default()).is_err());
    }

    #[test]
    fn in_family_stream_passes_bit_exact_with_no_quarantines() {
        let channels = 32;
        let mut stage = FirewallStage::new(channels, FirewallConfig::default()).unwrap();
        let mut out = FrameBuf::new();
        for k in 0..2_000 {
            let codes = steady(k, channels);
            stage.process(&Frame::Codes(&codes), &mut out).unwrap();
            assert_eq!(
                out.as_frame(),
                Frame::Codes(codes.as_slice()),
                "step {k}: clean frame must pass bit-exact"
            );
        }
        assert_eq!(stage.firewalled(), 0);
        let t = stage.secure_telemetry().unwrap();
        assert_eq!(t.firewalled, 0);
        assert!(
            t.coherence_ppm > 900_000,
            "steady stream scores near 1.0, got {} ppm",
            t.coherence_ppm
        );
    }

    #[test]
    fn dead_channel_run_is_quarantined() {
        let channels = 32;
        let (mut stage, mut out) = warm_stage(channels, 500);
        // Half the array goes dark: a gross gain anomaly.
        let mut codes = steady(500, channels);
        for code in codes.iter_mut().take(channels / 2) {
            *code = 0;
        }
        stage.process(&Frame::Codes(&codes), &mut out).unwrap();
        assert_eq!(
            out.as_frame(),
            Frame::Codes(&[]),
            "anomalous frame must come out as the gap marker"
        );
        assert_eq!(stage.firewalled(), 1);
        assert!(stage.coherence() < 0.5);
    }

    #[test]
    fn saturated_array_is_quarantined_and_does_not_walk_the_baseline() {
        let channels = 16;
        let (mut stage, mut out) = warm_stage(channels, 500);
        let hot = vec![1023_u16; channels];
        for _ in 0..50 {
            stage.process(&Frame::Codes(&hot), &mut out).unwrap();
            assert_eq!(out.as_frame(), Frame::Codes(&[]));
        }
        assert_eq!(stage.firewalled(), 50, "every saturated frame caught");
        // Quarantined frames trained nothing: the in-family stream
        // still passes.
        let codes = steady(501, channels);
        stage.process(&Frame::Codes(&codes), &mut out).unwrap();
        assert_eq!(out.as_frame(), Frame::Codes(codes.as_slice()));
        assert_eq!(stage.firewalled(), 50);
    }

    #[test]
    fn gap_markers_pass_through_unscored() {
        let (mut stage, mut out) = warm_stage(8, 200);
        let before = stage.secure_telemetry().unwrap();
        stage.process(&Frame::Codes(&[]), &mut out).unwrap();
        assert_eq!(out.as_frame(), Frame::Codes(&[]));
        assert_eq!(stage.secure_telemetry().unwrap(), before);
    }

    #[test]
    fn non_finite_values_score_zero_coherence() {
        let channels = 8;
        let config = FirewallConfig {
            warmup: 4,
            ..FirewallConfig::default()
        };
        let mut stage = FirewallStage::new(channels, config).unwrap();
        let mut out = FrameBuf::new();
        let clean = vec![0.25_f64; channels];
        for _ in 0..8 {
            stage.process(&Frame::Values(&clean), &mut out).unwrap();
        }
        let mut poisoned = clean.clone();
        poisoned[3] = f64::NAN;
        stage.process(&Frame::Values(&poisoned), &mut out).unwrap();
        assert_eq!(out.as_frame(), Frame::Values(&[]));
        assert_eq!(stage.coherence(), 0.0);
        assert_eq!(stage.firewalled(), 1);
    }

    #[test]
    fn width_and_kind_are_validated() {
        let mut stage = FirewallStage::new(4, FirewallConfig::default()).unwrap();
        let mut out = FrameBuf::new();
        assert!(stage.process(&Frame::Codes(&[1, 2]), &mut out).is_err());
        assert!(stage.process(&Frame::Bytes(&[1]), &mut out).is_err());
        assert!(stage.process(&Frame::Empty, &mut out).is_err());
    }

    #[test]
    fn telemetry_merge_adds_counters_and_takes_worst_coherence() {
        let link = SecureTelemetry {
            sealed: 10,
            accepted: 9,
            rejected_auth: 1,
            ..SecureTelemetry::default()
        };
        let firewall = SecureTelemetry {
            firewalled: 2,
            coherence_ppm: 250_000,
            ..SecureTelemetry::default()
        };
        let m = link.merged(firewall);
        assert_eq!(m.sealed, 10);
        assert_eq!(m.accepted, 9);
        assert_eq!(m.rejected_auth, 1);
        assert_eq!(m.firewalled, 2);
        assert_eq!(m.coherence_ppm, 250_000, "min wins");
    }
}
