//! 8-bit quantization — the bridge between the `f32` inference engine
//! and the accelerator's integer datapath.
//!
//! The Fig. 9 accelerator is synthesized for an 8-bit datatype; this
//! module quantizes a dense layer's weights to `i8` with a per-layer
//! symmetric scale and verifies (in tests) that the integer datapath the
//! cycle simulator executes tracks the floating-point reference within
//! the expected quantization error.

use crate::arch::LayerSpec;
use crate::error::{DnnError, Result};
use crate::infer::Network;

/// A dense layer quantized to the accelerator's 8-bit datatype.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedDense {
    inputs: usize,
    outputs: usize,
    /// Row-major `i8` weights.
    weights: Vec<i8>,
    /// Bias in the integer accumulator domain.
    bias: Vec<i32>,
    /// Weight scale: `w_f32 ≈ w_i8 · weight_scale`.
    weight_scale: f32,
    /// Input scale assumed at quantization time.
    input_scale: f32,
}

impl QuantizedDense {
    /// Quantizes layer `index` of a materialized network with symmetric
    /// per-layer scales. `input_scale` maps `f32` activations to the
    /// `i8` domain (`x_i8 = round(x_f32 / input_scale)`).
    ///
    /// # Errors
    ///
    /// * [`DnnError::EmptyDimension`] if `index` is out of range.
    /// * [`DnnError::Infeasible`] if the layer is not dense or the input
    ///   scale is not positive.
    pub fn from_network(network: &Network, index: usize, input_scale: f32) -> Result<Self> {
        if !(input_scale > 0.0 && input_scale.is_finite()) {
            return Err(DnnError::Infeasible {
                reason: format!("input scale must be positive, got {input_scale}"),
            });
        }
        let arch = network.architecture();
        let Some(layer) = arch.layers().get(index) else {
            return Err(DnnError::EmptyDimension {
                name: "layer index",
            });
        };
        let LayerSpec::Dense { inputs, outputs } = *layer else {
            return Err(DnnError::Infeasible {
                reason: format!("layer {index} is not dense: {layer}"),
            });
        };
        let weights_f32 = network.layer_weights(index);
        let biases_f32 = network.layer_biases(index);

        let max_abs = weights_f32
            .iter()
            .fold(0.0_f32, |acc, w| acc.max(w.abs()))
            .max(1e-12);
        let weight_scale = max_abs / 127.0;
        let weights: Vec<i8> = weights_f32
            .iter()
            .map(|w| (w / weight_scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        // Accumulator domain: x_i8 · w_i8 sums scale by (input·weight).
        let acc_scale = input_scale * weight_scale;
        let bias: Vec<i32> = biases_f32
            .iter()
            .map(|b| (b / acc_scale).round() as i32)
            .collect();
        Ok(Self {
            inputs: inputs as usize,
            outputs: outputs as usize,
            weights,
            bias,
            weight_scale,
            input_scale,
        })
    }

    /// Input width.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Output width.
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// The quantized weights (row-major), e.g. for loading into
    /// [`mindful_accel::sim::DenseLayer`].
    #[must_use]
    pub fn weights(&self) -> &[i8] {
        &self.weights
    }

    /// The integer-domain biases.
    #[must_use]
    pub fn bias(&self) -> &[i32] {
        &self.bias
    }

    /// Quantizes an `f32` activation vector into the `i8` input domain.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ShapeMismatch`] for a wrong width.
    pub fn quantize_input(&self, x: &[f32]) -> Result<Vec<i8>> {
        if x.len() != self.inputs {
            return Err(DnnError::ShapeMismatch {
                expected: self.inputs,
                actual: x.len(),
            });
        }
        Ok(x.iter()
            .map(|v| (v / self.input_scale).round().clamp(-127.0, 127.0) as i8)
            .collect())
    }

    /// Converts an integer accumulator result back to the `f32` domain.
    #[must_use]
    pub fn dequantize_output(&self, acc: &[i32]) -> Vec<f32> {
        let scale = self.input_scale * self.weight_scale;
        acc.iter().map(|&v| v as f32 * scale).collect()
    }

    /// The worst-case input magnitude representable without clipping.
    #[must_use]
    pub fn input_range(&self) -> f32 {
        self.input_scale * 127.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;
    use crate::models::ModelFamily;
    use mindful_accel::sim::{simulate_dense, DenseLayer};
    use mindful_accel::tech::TechnologyNode;

    fn small_network(seed: u64) -> Network {
        let arch = Architecture::new(
            "q-test",
            vec![
                LayerSpec::Dense {
                    inputs: 64,
                    outputs: 32,
                },
                LayerSpec::Dense {
                    inputs: 32,
                    outputs: 8,
                },
            ],
        )
        .unwrap();
        Network::with_seeded_weights(arch, seed)
    }

    #[test]
    fn quantized_weights_cover_the_i8_range() {
        let net = small_network(3);
        let q = QuantizedDense::from_network(&net, 0, 0.01).unwrap();
        let max = q.weights().iter().map(|w| w.unsigned_abs()).max().unwrap();
        assert_eq!(max, 127, "the largest weight maps to full scale");
        assert_eq!(q.weights().len(), 64 * 32);
    }

    #[test]
    fn integer_datapath_tracks_f32_reference() {
        // Quantize layer 0, run it on the accelerator's cycle simulator,
        // and compare against the f32 forward prefix.
        let net = small_network(7);
        let input_scale = 0.01_f32;
        let q = QuantizedDense::from_network(&net, 0, input_scale).unwrap();
        let x_f32: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.017).sin() * 0.8).collect();
        let x_i8 = q.quantize_input(&x_f32).unwrap();

        let hw_layer = DenseLayer::new(
            q.inputs(),
            q.outputs(),
            q.weights().to_vec(),
            q.bias().to_vec(),
            true,
        )
        .unwrap();
        let sim = simulate_dense(&hw_layer, &x_i8, 8, TechnologyNode::NANGATE_45NM).unwrap();
        let hw_out = q.dequantize_output(&sim.outputs);

        let reference = net.forward_prefix(&x_f32, 1).unwrap();
        assert_eq!(hw_out.len(), reference.len());
        let mut max_err = 0.0_f32;
        let mut max_mag = 0.0_f32;
        for (h, r) in hw_out.iter().zip(&reference) {
            max_err = max_err.max((h - r).abs());
            max_mag = max_mag.max(r.abs());
        }
        assert!(
            max_err <= 0.05 * max_mag.max(0.1),
            "quantization error {max_err} vs magnitude {max_mag}"
        );
    }

    #[test]
    fn input_quantization_round_trips_within_half_lsb() {
        let net = small_network(1);
        let q = QuantizedDense::from_network(&net, 0, 0.02).unwrap();
        for v in [-1.0_f32, -0.33, 0.0, 0.5, 1.2] {
            let code = q.quantize_input(&vec![v; 64]).unwrap()[0];
            let back = f32::from(code) * 0.02;
            if v.abs() <= q.input_range() {
                assert!((back - v).abs() <= 0.011, "{v} -> {back}");
            }
        }
    }

    #[test]
    fn non_dense_layers_are_rejected() {
        let arch = ModelFamily::DnCnn.architecture(128).unwrap();
        let net = Network::with_seeded_weights(arch, 0);
        // Layer 0 of the DN-CNN is a conv.
        assert!(matches!(
            QuantizedDense::from_network(&net, 0, 0.01),
            Err(DnnError::Infeasible { .. })
        ));
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let net = small_network(2);
        assert!(QuantizedDense::from_network(&net, 99, 0.01).is_err());
        assert!(QuantizedDense::from_network(&net, 0, 0.0).is_err());
        assert!(QuantizedDense::from_network(&net, 0, f32::NAN).is_err());
        let q = QuantizedDense::from_network(&net, 0, 0.01).unwrap();
        assert!(q.quantize_input(&[0.0; 3]).is_err());
    }
}
