//! Property tests for the fleet's class scheduler.
//!
//! The scheduling law under test ([`Fleet::drive_epoch`]):
//!
//! * **Grant order** — epoch capacity is granted classes high-to-low,
//!   slot order within a class; each ready session is granted
//!   `min(backlog, quantum)` real steps, capacity permitting, and at
//!   most `shed_quantum` shed steps for the backlog beyond the grant
//!   (sessions without a shed point keep it queued).
//! * **Strict priority** — no lower class runs a real step while a
//!   higher class has unserved ready backlog.
//! * **Conservation** — accepted = stepped + shed + leftover backlog,
//!   per session, at every epoch boundary.
//! * **Worker invariance** — the whole accounting (per-epoch per-class
//!   rows, deadline misses, final ledgers) is identical on one worker
//!   and on several: grants are fixed serially before any worker runs.
//!
//! The oracle below re-derives the grant law in plain arithmetic from
//! the same inputs and must agree with the fleet field-for-field
//! across random class mixes, per-session quanta, shed bounds, epoch
//! capacities, and demand patterns.

use std::num::{NonZeroU32, NonZeroU64, NonZeroUsize};

use mindful_core::pool::Scheduler;
use mindful_pipeline::prelude::*;
use mindful_pipeline::ClassReport;
use proptest::prelude::*;

const SAMPLE_BITS: u8 = 10;

/// One randomly drawn session: its class, optional weight, whether it
/// can shed, and whether it carries an unmeetable zero deadline (the
/// deterministic way to exercise miss accounting — every real step of
/// such a session is a miss, no step of any other session is).
#[derive(Debug, Clone, Copy)]
struct SessionPlan {
    class: PriorityClass,
    quantum: Option<u32>,
    sheddable: bool,
    zero_deadline: bool,
}

#[derive(Debug, Clone, Copy)]
struct ConfigPlan {
    quantum: u32,
    max_backlog: u32,
    shed_quantum: u32,
    epoch_capacity: Option<u64>,
}

fn session_strategy() -> impl Strategy<Value = SessionPlan> {
    // Quantum 0 encodes "no per-session quantum" (the fleet default).
    (
        0_usize..PriorityClass::COUNT,
        0_u32..=6,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(class, quantum, sheddable, zero_deadline)| SessionPlan {
            class: PriorityClass::ALL[class],
            quantum: (quantum > 0).then_some(quantum),
            sheddable,
            zero_deadline,
        })
}

fn config_strategy() -> impl Strategy<Value = ConfigPlan> {
    // Capacity 0 encodes "unlimited" (no epoch capacity).
    (1_u32..=6, 4_u32..=16, 1_u32..=8, 0_u64..=64).prop_map(
        |(quantum, max_backlog, shed_quantum, epoch_capacity)| ConfigPlan {
            quantum,
            max_backlog,
            shed_quantum,
            epoch_capacity: (epoch_capacity > 0).then_some(epoch_capacity),
        },
    )
}

/// The demand session `s` requests in `round`, folded from one drawn
/// byte vector so shrinking stays effective.
fn demand(demands: &[u32], s: usize, round: usize) -> u32 {
    demands[(s * 7 + round * 11) % demands.len()]
}

fn build_spec(plan: SessionPlan, seed: u64) -> SessionSpec {
    let spec = if plan.sheddable {
        SessionSpec::new(
            Pipeline::new()
                .with_stage(
                    SenseStage::new(2, 16, SAMPLE_BITS, seed, IntentSchedule::FigureEight).unwrap(),
                )
                .with_stage(ConcealStage::new(4, DegradePolicy::HoldLast).unwrap()),
        )
        .with_shed(1, FrameKind::Codes)
    } else {
        SessionSpec::new(
            Pipeline::new()
                .with_stage(
                    SenseStage::new(2, 16, SAMPLE_BITS, seed, IntentSchedule::FigureEight).unwrap(),
                )
                .with_stage(PacketizeStage::new(SAMPLE_BITS).unwrap()),
        )
    };
    let spec = spec.with_class(plan.class);
    let spec = match plan.quantum {
        Some(q) => spec.with_quantum(NonZeroU32::new(q).unwrap()),
        None => spec,
    };
    if plan.zero_deadline {
        spec.with_deadline_ns(0)
    } else {
        spec
    }
}

/// One oracle epoch: replays the grant law in plain arithmetic over
/// the mutable backlogs and returns the expected per-class rows plus
/// each class's capacity-free want (for the strict-priority check).
fn oracle_epoch(
    plans: &[SessionPlan],
    backlogs: &mut [u32],
    config: ConfigPlan,
) -> (
    [ClassReport; PriorityClass::COUNT],
    [u64; PriorityClass::COUNT],
) {
    let mut by_class = [ClassReport::default(); PriorityClass::COUNT];
    let mut want_full = [0_u64; PriorityClass::COUNT];
    let mut capacity = config.epoch_capacity;
    for (ci, class) in PriorityClass::ALL.iter().enumerate() {
        for (s, plan) in plans.iter().enumerate() {
            if plan.class != *class || backlogs[s] == 0 {
                continue;
            }
            by_class[ci].sessions += 1;
            let quantum = plan.quantum.unwrap_or(config.quantum);
            let want = backlogs[s].min(quantum);
            want_full[ci] += u64::from(want);
            let grant = match capacity.as_mut() {
                Some(cap) => {
                    let grant = want.min(u32::try_from(*cap).unwrap_or(u32::MAX));
                    *cap -= u64::from(grant);
                    grant
                }
                None => want,
            };
            let shed = if plan.sheddable {
                (backlogs[s] - grant).min(config.shed_quantum)
            } else {
                0
            };
            by_class[ci].steps += u64::from(grant);
            by_class[ci].shed += u64::from(shed);
            if plan.zero_deadline {
                by_class[ci].deadline_misses += u64::from(grant);
            }
            if grant == 0 && shed == 0 {
                by_class[ci].starved += 1;
            }
            backlogs[s] -= grant + shed;
        }
    }
    (by_class, want_full)
}

/// Runs the drawn scenario on a real fleet and returns, per epoch, the
/// fleet's per-class rows, plus the final per-session
/// (steps, shed, backlog, rejected, deadline_misses) ledgers.
#[allow(clippy::type_complexity)]
fn run_fleet(
    plans: &[SessionPlan],
    config: ConfigPlan,
    demands: &[u32],
    rounds: usize,
    workers: usize,
) -> (
    Vec<[ClassReport; PriorityClass::COUNT]>,
    Vec<(u64, u64, u32, u64, u64)>,
) {
    let sched = Scheduler::new(NonZeroUsize::new(workers).unwrap());
    let mut fleet = Fleet::new(
        &sched,
        FleetConfig {
            quantum: NonZeroU32::new(config.quantum).unwrap(),
            max_backlog: config.max_backlog,
            shed_quantum: NonZeroU32::new(config.shed_quantum).unwrap(),
            epoch_capacity: config.epoch_capacity.and_then(NonZeroU64::new),
            ..FleetConfig::default()
        },
    );
    let ids: Vec<SessionId> = plans
        .iter()
        .enumerate()
        .map(|(s, &plan)| fleet.admit(build_spec(plan, 1000 + s as u64)).unwrap())
        .collect();
    let mut epochs = Vec::with_capacity(rounds);
    for round in 0..rounds {
        for (s, &id) in ids.iter().enumerate() {
            fleet.request(id, demand(demands, s, round)).unwrap();
        }
        let report = fleet.drive_epoch().unwrap();
        epochs.push(report.by_class);
    }
    let ledgers = ids
        .iter()
        .map(|&id| {
            let r = fleet.evict(id).unwrap();
            (r.steps, r.shed, r.backlog, r.rejected, r.deadline_misses)
        })
        .collect();
    (epochs, ledgers)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fleet's per-class epoch rows match the arithmetic oracle
    /// field-for-field, strict priority holds, every ledger conserves,
    /// and none of it depends on the worker count.
    #[test]
    fn class_scheduler_matches_the_grant_oracle(
        plans in prop::collection::vec(session_strategy(), 1..11),
        config in config_strategy(),
        demands in prop::collection::vec(0_u32..=20, 1..25),
        rounds in 1_usize..=4,
    ) {
        let (epochs, ledgers) = run_fleet(&plans, config, &demands, rounds, 1);

        // Oracle replay: accepted demand and the grant law in plain
        // arithmetic.
        let mut backlogs = vec![0_u32; plans.len()];
        let mut accepted = vec![0_u64; plans.len()];
        let mut rejected = vec![0_u64; plans.len()];
        for (round, fleet_rows) in epochs.iter().enumerate() {
            for (s, backlog) in backlogs.iter_mut().enumerate() {
                let want = demand(&demands, s, round);
                let got = want.min(config.max_backlog - *backlog);
                *backlog += got;
                accepted[s] += u64::from(got);
                rejected[s] += u64::from(want - got);
            }
            let (expect_rows, want_full) = oracle_epoch(&plans, &mut backlogs, config);
            prop_assert_eq!(fleet_rows, &expect_rows, "round {}", round);

            // Strict priority: a lower class only runs real steps when
            // every higher class got its full capacity-free want.
            for ci in 1..PriorityClass::COUNT {
                if fleet_rows[ci].steps > 0 {
                    for hi in 0..ci {
                        prop_assert_eq!(
                            fleet_rows[hi].steps, want_full[hi],
                            "round {}: class {} ran while class {} was short",
                            round, ci, hi
                        );
                    }
                }
            }
        }

        // Final ledgers: conservation per session, and the leftover
        // backlog is exactly what the oracle still holds.
        for (s, &(steps, shed, backlog, rej, misses)) in ledgers.iter().enumerate() {
            prop_assert_eq!(
                steps + shed + u64::from(backlog), accepted[s],
                "session {}: accepted = stepped + shed + leftover", s
            );
            prop_assert_eq!(u64::from(backlog), u64::from(backlogs[s]), "session {}", s);
            prop_assert_eq!(rej, rejected[s], "session {}", s);
            if plans[s].zero_deadline {
                prop_assert_eq!(misses, steps, "session {}: every step misses", s);
            } else {
                prop_assert_eq!(misses, 0, "session {}", s);
            }
        }

        // Worker invariance: 1 worker and 3 workers agree on all of it.
        let (epochs3, ledgers3) = run_fleet(&plans, config, &demands, rounds, 3);
        prop_assert_eq!(epochs, epochs3, "per-epoch rows are worker-invariant");
        prop_assert_eq!(ledgers, ledgers3, "final ledgers are worker-invariant");
    }
}
