//! Fleet soak: 1k+ heterogeneous implant sessions multiplexed over the
//! shared scheduler.
//!
//! The serving tentpole's acceptance run: a [`Fleet`] admits over a
//! thousand sessions drawn from five chain classes (sense→packetize,
//! sense→conceal with a shed point, replay→conceal shedding
//! activations, an event source feeding a bin window, and a small pool
//! of replay→conceal→DNN sessions sharing one 128-channel weight set),
//! drives them through epochs of uneven demand with mid-soak
//! admission/eviction churn, and must hold every contract at once:
//!
//! * **Starvation-freedom** — every epoch reports zero starved
//!   sessions, no matter how oversubscribed the round's demand is.
//! * **Backpressure** — demand beyond the backlog bound is rejected at
//!   the edge, and the global ledger balances: every accepted step is
//!   eventually run, shed, or still queued at eviction.
//! * **Field-exact shedding** — each sheddable session's conceal stage
//!   reports exactly its shed count as degraded frames (and nothing as
//!   quarantined or lost), and the fleet-level counters agree.
//! * **Worker-count invariance** — the same scenario on one worker and
//!   on several produces identical per-session accounting.
//!
//! Set `MINDFUL_SOAK_QUICK=1` (CI short mode) to shrink the round
//! count; the session count stays above one thousand in both modes.

use std::num::{NonZeroU32, NonZeroU64, NonZeroUsize};
use std::sync::Arc;

use mindful_core::obs::Registry;
use mindful_core::pool::Scheduler;
use mindful_dnn::infer::Network;
use mindful_dnn::models::ModelFamily;
use mindful_pipeline::prelude::*;
use mindful_pipeline::SessionReport;

const SAMPLE_BITS: u8 = 10;
const REPLAY_CHANNELS: usize = 16;
const DNN_CHANNELS: usize = 128;
const BIN_CHANNELS: usize = 12;
const BIN_WINDOW: usize = 4;
/// The four bulk classes cycled by session index.
const CLASSES: usize = 4;
/// The DNN class rides on top of the bulk fleet in a small pool (its
/// 128-channel MLP is the expensive decoder calibrated — seeded —
/// once and shared by Arc).
const DNN_CLASS: usize = 4;
const DNN_SESSIONS: usize = 8;

fn rounds() -> usize {
    // CI short mode trims the demand rounds, never the fleet size: the
    // 1k+ admission path is the thing under test.
    if mindful_core::env::soak_quick() {
        3
    } else {
        12
    }
}

/// Source stage emitting a fixed-width events frame every step (what a
/// [`BinStage`] consumes).
struct EventSource(usize);

impl Stage for EventSource {
    fn name(&self) -> &'static str {
        "events"
    }

    fn process(&mut self, _input: &Frame<'_>, out: &mut FrameBuf) -> Result<StageOutput> {
        let events = out.begin_events();
        events.extend((0..self.0).map(|c| c.is_multiple_of(2)));
        Ok(StageOutput::Emitted)
    }
}

/// Shared per-soak resources: one DNN weight set and the replay tapes,
/// cloned cheaply into every session of their class.
struct ClassKit {
    network: Arc<Network>,
    replay: Vec<Vec<f32>>,
    dnn_replay: Vec<Vec<f32>>,
}

impl ClassKit {
    fn new() -> Self {
        let tape = |width: usize| -> Vec<Vec<f32>> {
            (0..32)
                .map(|k| {
                    (0..width)
                        .map(|c| ((k * 31 + c) % 97) as f32 / 97.0 - 0.5)
                        .collect()
                })
                .collect()
        };
        Self {
            network: Arc::new(Network::with_seeded_weights(
                ModelFamily::Mlp.architecture(DNN_CHANNELS as u64).unwrap(),
                42,
            )),
            replay: tape(REPLAY_CHANNELS),
            dnn_replay: tape(DNN_CHANNELS),
        }
    }

    /// Builds a session of `class`; the seed keeps every sensed stream
    /// distinct.
    fn spec(&self, class: usize, seed: u64) -> SessionSpec {
        match class {
            // Plain telemetry chain: no shed point, oversubscription
            // stays backlogged.
            0 => SessionSpec::new(
                Pipeline::new()
                    .with_stage(
                        SenseStage::new(2, 16, SAMPLE_BITS, seed, IntentSchedule::FigureEight)
                            .unwrap(),
                    )
                    .with_stage(PacketizeStage::new(SAMPLE_BITS).unwrap()),
            ),
            // Sheddable sensing chain: 3×3 grid (9 channels) into its
            // concealment stage.
            1 => SessionSpec::new(
                Pipeline::new()
                    .with_stage(
                        SenseStage::new(3, 16, SAMPLE_BITS, seed, IntentSchedule::FigureEight)
                            .unwrap(),
                    )
                    .with_stage(ConcealStage::new(9, DegradePolicy::HoldLast).unwrap()),
            )
            .with_shed(1, FrameKind::Codes),
            // Radio-side chain: digitized activations off the replay
            // tape, shed as activation gaps.
            2 => SessionSpec::new(
                Pipeline::new()
                    .with_stage(ReplaySource::new(self.replay.clone()).unwrap())
                    .with_stage(
                        ConcealStage::new(REPLAY_CHANNELS, DegradePolicy::Interpolate).unwrap(),
                    ),
            )
            .with_shed(1, FrameKind::Activations),
            // Windowed decode front: emits once per full bin window and
            // holds a partial window across epochs (the eviction-drain
            // case).
            3 => SessionSpec::new(
                Pipeline::new()
                    .with_stage(EventSource(BIN_CHANNELS))
                    .with_stage(BinStage::new(BIN_CHANNELS, BIN_WINDOW).unwrap()),
            ),
            // Inference chain: every session shares the same weights
            // through the Arc, with its own conceal + workspace state.
            // No shed point — the expensive decoder advances strictly
            // at the fair quantum and backpressures the rest.
            _ => SessionSpec::new(
                Pipeline::new()
                    .with_stage(ReplaySource::new(self.dnn_replay.clone()).unwrap())
                    .with_stage(
                        ConcealStage::new(DNN_CHANNELS, DegradePolicy::Interpolate).unwrap(),
                    )
                    .with_stage(
                        DnnStage::with_precision(
                            Arc::clone(&self.network),
                            SAMPLE_BITS,
                            Precision::F32,
                        )
                        .unwrap(),
                    ),
            ),
        }
    }
}

/// The demand a session asks for in a round: deterministic, uneven,
/// and often above the backlog bound so rejection paths stay hot.
fn demand(s: usize, round: usize) -> u32 {
    ((s * 7 + round * 5) % 17) as u32
}

/// Checks the per-class accounting invariants of one final report.
fn check_class_invariants(class: usize, report: &SessionReport) {
    let id = report.id;
    match class {
        0 => {
            assert_eq!(report.shed, 0, "{id}: no shed point");
            assert_eq!(
                report.emitted, report.steps,
                "{id}: packetizer emits every step"
            );
            assert_eq!(report.telemetry[0].frames_in, report.steps);
            assert_eq!(report.flushed, 0, "{id}: nothing windowed to drain");
        }
        1 | 2 => {
            // Every real step and every shed marker clears the chain.
            assert_eq!(report.emitted, report.steps + report.shed, "{id}");
            // The upstream stages never ran the shed steps — that is
            // the point of shedding at the conceal stage.
            assert_eq!(report.telemetry[0].frames_in, report.steps, "{id}");
            let conceal = &report.telemetry[1];
            assert_eq!(conceal.frames_in, report.steps + report.shed, "{id}");
            let faults = conceal.faults.expect("conceal is fault-aware");
            assert_eq!(
                faults.degraded, report.shed,
                "{id}: field-exact shed accounting"
            );
            assert_eq!(
                faults.quarantined, 0,
                "{id}: gaps degrade, never quarantine"
            );
            assert_eq!(faults.lost, 0, "{id}");
        }
        3 => {
            assert_eq!(report.shed, 0, "{id}: no shed point");
            assert_eq!(report.telemetry[1].frames_in, report.steps, "{id}");
            assert_eq!(
                report.emitted,
                report.steps / BIN_WINDOW as u64,
                "{id}: one emission per full window"
            );
            assert_eq!(
                report.flushed,
                u64::from(!report.steps.is_multiple_of(BIN_WINDOW as u64)),
                "{id}: eviction drains exactly the partial window"
            );
        }
        _ => {
            assert_eq!(report.shed, 0, "{id}: the DNN class never degrades");
            assert_eq!(
                report.emitted, report.steps,
                "{id}: the DNN emits every step"
            );
            let faults = report.telemetry[1].faults.expect("conceal is fault-aware");
            assert_eq!(faults.degraded, 0, "{id}");
            assert_eq!(
                report.telemetry[2].frames_in, report.steps,
                "{id}: every step reached inference"
            );
        }
    }
}

/// The headline soak: 1064 heterogeneous sessions, uneven demand,
/// mid-soak churn, and a fully balanced ledger at the end.
#[test]
fn soak_multiplexes_a_thousand_heterogeneous_sessions() {
    const BULK: usize = 1056;
    const SESSIONS: usize = BULK + DNN_SESSIONS;
    let kit = ClassKit::new();
    let sched = Scheduler::new(NonZeroUsize::new(4).unwrap());
    let registry = Registry::new();
    let config = FleetConfig {
        capacity: NonZeroUsize::new(2048).unwrap(),
        quantum: NonZeroU32::new(4).unwrap(),
        max_backlog: 12,
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::observed(&sched, config, &registry, "serve");

    let mut live: Vec<(SessionId, usize)> = (0..BULK)
        .map(|s| {
            let class = s % CLASSES;
            (
                fleet.admit(kit.spec(class, 1000 + s as u64)).unwrap(),
                class,
            )
        })
        .collect();
    for s in 0..DNN_SESSIONS {
        let id = fleet.admit(kit.spec(DNN_CLASS, 9000 + s as u64)).unwrap();
        live.push((id, DNN_CLASS));
    }
    assert_eq!(fleet.len(), SESSIONS);

    let rounds = rounds();
    let mut accepted_total = 0_u64;
    let mut rejected_total = 0_u64;
    let mut churned = 0_usize;
    let mut epochs = 0_u64;
    let mut finished: Vec<(usize, SessionReport)> = Vec::new();

    for round in 0..rounds {
        for (s, &(id, _)) in live.iter().enumerate() {
            let want = demand(s, round);
            let got = fleet.request(id, want).unwrap();
            accepted_total += u64::from(got);
            rejected_total += u64::from(want - got);
        }
        let report = fleet.drive_epoch().unwrap();
        epochs += 1;
        assert_eq!(report.starved, 0, "round {round}: no session starves");
        assert!(
            report.steps <= report.sessions as u64 * u64::from(config.quantum.get()),
            "round {round}: nobody exceeds the fair quantum"
        );

        // Mid-soak churn: sessions leave and new patients connect; the
        // fleet reuses slots but never reuses ids.
        if round == rounds / 2 {
            for s in (0..BULK).step_by(13) {
                let (id, class) = live[s];
                let report = fleet.evict(id).unwrap();
                finished.push((class, report));
                let fresh_class = (s + churned) % CLASSES;
                let new_id = fleet
                    .admit(kit.spec(fresh_class, 5000 + churned as u64))
                    .unwrap();
                assert!(new_id > id, "ids stay monotonic across churn");
                live[s] = (new_id, fresh_class);
                churned += 1;
            }
            assert_eq!(fleet.len(), SESSIONS, "churn is one-for-one");
        }
    }

    // Drain: plain sessions still hold backlog (their backpressure kept
    // it queued); a few more epochs of fair quanta clear it.
    loop {
        let report = fleet.drive_epoch().unwrap();
        epochs += 1;
        if report.sessions == 0 {
            break;
        }
        assert_eq!(report.starved, 0, "drain epochs never starve either");
    }

    for &(id, class) in &live {
        let report = fleet.evict(id).unwrap();
        finished.push((class, report));
    }
    assert!(fleet.is_empty());
    assert_eq!(finished.len(), SESSIONS + churned);
    assert_eq!(fleet.epochs(), epochs);

    // The global ledger balances exactly: every accepted step was run,
    // shed, or (for churn-evicted sessions) dropped with its backlog
    // explicitly on the final report.
    let steps: u64 = finished.iter().map(|(_, r)| r.steps).sum();
    let shed: u64 = finished.iter().map(|(_, r)| r.shed).sum();
    let rejected: u64 = finished.iter().map(|(_, r)| r.rejected).sum();
    let leftover: u64 = finished.iter().map(|(_, r)| u64::from(r.backlog)).sum();
    assert_eq!(
        steps + shed + leftover,
        accepted_total,
        "accepted demand is conserved"
    );
    assert_eq!(rejected, rejected_total, "rejections are conserved");
    assert!(
        shed > 0,
        "the demand pattern oversubscribed the sheddable classes"
    );
    assert!(
        rejected > 0,
        "the demand pattern overflowed the backlog bound"
    );

    // Field-exact degradation accounting, per session and per class.
    for (class, report) in &finished {
        check_class_invariants(*class, report);
    }

    // One registry scrape agrees with the summed per-session ledgers.
    #[cfg(feature = "obs")]
    {
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("serve.admitted"),
            Some((SESSIONS + churned) as u64)
        );
        assert_eq!(
            snap.counter("serve.evicted"),
            Some((SESSIONS + churned) as u64)
        );
        assert_eq!(snap.counter("serve.epochs"), Some(epochs));
        assert_eq!(snap.counter("serve.steps"), Some(steps));
        assert_eq!(snap.counter("serve.shed"), Some(shed));
        assert_eq!(snap.counter("serve.rejected"), Some(rejected_total));
        // `emitted` counts live epoch emissions only — eviction-drain
        // flushes are on the per-session reports, not the epoch path.
        let emitted: u64 = finished.iter().map(|(_, r)| r.emitted).sum();
        assert_eq!(snap.counter("serve.emitted"), Some(emitted));
        let (sessions_now, sessions_peak) = snap.gauge("serve.sessions").unwrap();
        assert_eq!(sessions_now, 0);
        assert_eq!(sessions_peak, SESSIONS as u64);
        let step_ns = snap.histogram("serve.step_ns").unwrap();
        assert_eq!(step_ns.count, steps, "one latency sample per real step");
        assert_eq!(
            snap.histogram("serve.epoch_ns").unwrap().count,
            epochs,
            "one epoch sample per drive"
        );
    }
    #[cfg(not(feature = "obs"))]
    drop(registry);

    // The scheduler really carried the load: one dispatch per epoch,
    // one task per ready session.
    let stats = sched.stats();
    assert_eq!(stats.epochs, epochs);
    assert!(stats.tasks >= steps / u64::from(config.quantum.get()));
}

/// The same mixed-fleet scenario on one worker and on five must
/// produce identical per-session accounting — work stealing reorders
/// execution, never outcomes.
#[test]
fn fleet_accounting_is_worker_count_invariant() {
    const SESSIONS: usize = 96;
    const ROUNDS: usize = 3;
    let run = |workers: usize| -> Vec<(u64, u64, u64, u64, u64)> {
        let kit = ClassKit::new();
        let sched = Scheduler::new(NonZeroUsize::new(workers).unwrap());
        let config = FleetConfig {
            capacity: NonZeroUsize::new(SESSIONS).unwrap(),
            quantum: NonZeroU32::new(4).unwrap(),
            max_backlog: 12,
            ..FleetConfig::default()
        };
        let mut fleet = Fleet::new(&sched, config);
        let ids: Vec<SessionId> = (0..SESSIONS)
            .map(|s| fleet.admit(kit.spec(s % CLASSES, 1000 + s as u64)).unwrap())
            .collect();
        for round in 0..ROUNDS {
            for (s, &id) in ids.iter().enumerate() {
                fleet.request(id, demand(s, round)).unwrap();
            }
            let report = fleet.drive_epoch().unwrap();
            assert_eq!(report.starved, 0);
        }
        ids.iter()
            .map(|&id| {
                let report = fleet.evict(id).unwrap();
                let degraded = report
                    .telemetry
                    .iter()
                    .filter_map(|t| t.faults)
                    .map(|f| f.degraded)
                    .sum();
                (
                    report.steps,
                    report.emitted,
                    report.shed,
                    report.rejected,
                    degraded,
                )
            })
            .collect()
    };
    assert_eq!(run(1), run(5), "scheduling never changes the outputs");
}

/// The priority soak: a saturating best-effort majority must never
/// push the realtime minority past its deadline budget.
///
/// 8 realtime motor-decode-shaped sessions (a host-noise-tolerant
/// multiple of the paper's ~500 µs per-sample deadline as their
/// budget — see `RT_DEADLINE_NS` below) share the fleet with 16
/// interactive monitors and 96 best-effort bulk-telemetry sessions
/// whose demand alone exceeds the epoch capacity. Every epoch must:
///
/// * serve realtime first and in full — zero deadline misses, gated
///   through the per-class `serve.realtime.step_ns` registry
///   histogram (the same measurement that feeds the miss counters);
/// * shed **only** from the lowest class — realtime and interactive
///   shed nothing, best-effort absorbs the entire overload;
/// * balance the conservation ledger per class: accepted = stepped +
///   shed + leftover backlog, class by class.
#[test]
fn priority_soak_protects_realtime_deadlines_under_best_effort_saturation() {
    const RT: usize = 8;
    const IA: usize = 16;
    const BE: usize = 96;
    const RT_QUANTUM: u32 = 8;
    const IA_QUANTUM: u32 = 4;
    const BE_QUANTUM: u32 = 4;
    const BE_DEMAND: u32 = 12;
    /// The realtime budget. The paper's motor-decode deadline is
    /// ~500 µs, but a wall-clock gate at that scale flakes on shared
    /// CI hosts: with more worker threads than cores the OS can park
    /// a thread mid-step for a few timeslices, which is host noise,
    /// not a scheduling failure. 100 ms only trips when a realtime
    /// step is genuinely stuck behind lower-class work — the
    /// pathology this soak exists to rule out. The 500 µs figure is
    /// measured (not gated) by the realtime study and serve bench.
    const RT_DEADLINE_NS: u64 = 100_000_000;
    // Capacity covers realtime and interactive in full, then a quarter
    // of the best-effort quanta — best-effort demand saturates it
    // every epoch.
    const CAPACITY: u64 =
        (RT as u64 * RT_QUANTUM as u64) + (IA as u64 * IA_QUANTUM as u64) + BE as u64;

    let kit = ClassKit::new();
    let sched = Scheduler::new(NonZeroUsize::new(4).unwrap());
    let registry = Registry::new();
    let config = FleetConfig {
        capacity: NonZeroUsize::new(256).unwrap(),
        quantum: NonZeroU32::new(BE_QUANTUM).unwrap(),
        max_backlog: 16,
        epoch_capacity: NonZeroU64::new(CAPACITY),
        ..FleetConfig::default()
    };
    let mut fleet = Fleet::observed(&sched, config, &registry, "serve");

    // Realtime: cheap sense→packetize chains with the paper deadline.
    let rt_ids: Vec<SessionId> = (0..RT)
        .map(|s| {
            fleet
                .admit(
                    kit.spec(0, 100 + s as u64)
                        .with_class(PriorityClass::Realtime)
                        .with_quantum(NonZeroU32::new(RT_QUANTUM).unwrap())
                        .with_deadline_ns(RT_DEADLINE_NS),
                )
                .unwrap()
        })
        .collect();
    // Interactive monitors: served after realtime, before bulk.
    let ia_ids: Vec<SessionId> = (0..IA)
        .map(|s| {
            fleet
                .admit(
                    kit.spec(0, 200 + s as u64)
                        .with_class(PriorityClass::Interactive)
                        .with_quantum(NonZeroU32::new(IA_QUANTUM).unwrap()),
                )
                .unwrap()
        })
        .collect();
    // Best-effort bulk telemetry: sheddable, default class, and an
    // intentionally unmeetable zero deadline budget so the per-class
    // miss accounting has a hot lowest class to bite on.
    let be_ids: Vec<SessionId> = (0..BE)
        .map(|s| {
            fleet
                .admit(kit.spec(1, 300 + s as u64).with_deadline_ns(0))
                .unwrap()
        })
        .collect();

    let rounds = rounds();
    let mut accepted = [0_u64; 3];
    for round in 0..rounds {
        for &id in &rt_ids {
            accepted[0] += u64::from(fleet.request(id, RT_QUANTUM).unwrap());
        }
        for &id in &ia_ids {
            accepted[1] += u64::from(fleet.request(id, IA_QUANTUM).unwrap());
        }
        for &id in &be_ids {
            accepted[2] += u64::from(fleet.request(id, BE_DEMAND).unwrap());
        }
        let report = fleet.drive_epoch().unwrap();

        let rt = report.by_class[PriorityClass::Realtime.index()];
        assert_eq!(rt.sessions, RT, "round {round}");
        assert_eq!(
            rt.steps,
            RT as u64 * u64::from(RT_QUANTUM),
            "round {round}: realtime served in full"
        );
        assert_eq!(
            rt.deadline_misses, 0,
            "round {round}: saturation never costs realtime its deadline"
        );
        assert_eq!(rt.shed, 0, "round {round}");
        assert_eq!(rt.starved, 0, "round {round}");

        let ia = report.by_class[PriorityClass::Interactive.index()];
        assert_eq!(ia.steps, IA as u64 * u64::from(IA_QUANTUM), "round {round}");
        assert_eq!(ia.shed, 0, "round {round}: shedding starts at the bottom");

        let be = report.by_class[PriorityClass::BestEffort.index()];
        assert_eq!(be.steps, BE as u64, "round {round}: the leftover capacity");
        assert_eq!(
            report.shed, be.shed,
            "round {round}: every shed step is best-effort"
        );
        assert!(be.shed > 0, "round {round}: saturation really shed");
        assert_eq!(
            be.starved, 0,
            "round {round}: shed sessions are served, degraded"
        );
        assert_eq!(
            report.steps, CAPACITY,
            "round {round}: capacity-bound epoch"
        );
    }

    // Per-class conservation: accepted = stepped + shed + leftover.
    let mut served = [0_u64; 3];
    for (class, ids) in [(0, &rt_ids), (1, &ia_ids), (2, &be_ids)] {
        for &id in ids {
            let report = fleet.evict(id).unwrap();
            served[class] += report.steps + report.shed + u64::from(report.backlog);
            if class < 2 {
                assert_eq!(report.deadline_misses, 0, "{id}");
                assert_eq!(report.shed, 0, "{id}");
            }
        }
    }
    assert_eq!(served, accepted, "per-class ledgers balance exactly");

    #[cfg(feature = "obs")]
    {
        let snap = registry.snapshot();
        let rt_steps = rounds as u64 * RT as u64 * u64::from(RT_QUANTUM);
        // The deadline gate runs through the registry histograms: every
        // realtime step's latency sample landed, and none missed.
        let rt_hist = snap.histogram("serve.realtime.step_ns").unwrap();
        assert_eq!(rt_hist.count, rt_steps, "one sample per realtime step");
        assert!(
            rt_hist.quantile_upper_bound(1.0).unwrap() <= RT_DEADLINE_NS
                || snap.counter("serve.realtime.deadline_misses") == Some(0),
            "the histogram tail and the miss counter agree"
        );
        assert_eq!(snap.counter("serve.realtime.deadline_misses"), Some(0));
        assert_eq!(snap.counter("serve.realtime.steps"), Some(rt_steps));
        assert_eq!(snap.counter("serve.realtime.shed"), Some(0));
        assert_eq!(
            snap.counter("serve.interactive.steps"),
            Some(rounds as u64 * IA as u64 * u64::from(IA_QUANTUM))
        );
        assert_eq!(snap.counter("serve.interactive.shed"), Some(0));
        assert_eq!(
            snap.counter("serve.best_effort.steps"),
            Some(rounds as u64 * BE as u64)
        );
        // The zero-budget bulk class misses on every real step — the
        // per-class attribution never leaks across classes.
        assert_eq!(
            snap.counter("serve.best_effort.deadline_misses"),
            Some(rounds as u64 * BE as u64)
        );
        let shed = snap.counter("serve.best_effort.shed").unwrap();
        assert_eq!(snap.counter("serve.shed"), Some(shed));
        assert!(shed > 0);
        assert_eq!(
            snap.counter("serve.deadline_misses"),
            snap.counter("serve.best_effort.deadline_misses")
        );
    }
    #[cfg(not(feature = "obs"))]
    drop(registry);
}
