//! Strongly-typed physical quantities used throughout MINDFUL.
//!
//! The paper's equations mix milliwatts, square millimetres, mW/cm²,
//! megabits per second, picojoules per bit, and kilohertz. Mixing those up
//! silently is the classic failure mode of a port, so every quantity is a
//! newtype over `f64` held in SI base units (watts, square metres, W/m²,
//! joules, seconds, hertz, bits/s) with explicit conversion constructors
//! and accessors for the unit scales the paper reports.
//!
//! Only physically meaningful cross-unit operations are defined, e.g.
//! [`Power`] / [`Area`] = [`PowerDensity`] and [`DataRate`] ×
//! [`Energy`]-per-bit = [`Power`].
//!
//! # Examples
//!
//! ```
//! use mindful_core::units::{Area, Energy, Power, PowerDensity, DataRate};
//!
//! // BISC (SoC 1): 144 mm² at 27 mW/cm².
//! let area = Area::from_square_millimeters(144.0);
//! let density = PowerDensity::from_milliwatts_per_square_centimeter(27.0);
//! let power: Power = density * area;
//! assert!((power.milliwatts() - 38.88).abs() < 1e-9);
//!
//! // An 82 Mbps OOK link at 50 pJ/bit burns 4.1 mW.
//! let rate = DataRate::from_megabits_per_second(82.0);
//! let eb = Energy::from_picojoules(50.0);
//! let comm: Power = rate * eb;
//! assert!((comm.milliwatts() - 4.1).abs() < 1e-9);
//! ```

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Defines an `f64` newtype quantity with standard arithmetic.
macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $base_unit:literal
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a quantity from its SI base-unit value.
            #[must_use]
            pub const fn from_base(value: f64) -> Self {
                Self(value)
            }

            /// Returns the value in the SI base unit.
            #[must_use]
            pub const fn base(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is finite (not NaN or infinite).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns `true` if the value is negative.
            #[must_use]
            pub fn is_negative(self) -> bool {
                self.0 < 0.0
            }

            /// Returns the smaller of two quantities.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of two quantities.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Clamps the quantity into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl MulAssign<f64> for $name {
            fn mul_assign(&mut self, rhs: f64) {
                self.0 *= rhs;
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl DivAssign<f64> for $name {
            fn div_assign(&mut self, rhs: f64) {
                self.0 /= rhs;
            }
        }

        /// Dividing two like quantities yields a dimensionless ratio.
        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(precision) = f.precision() {
                    write!(f, "{:.*} {}", precision, self.0, $base_unit)
                } else {
                    write!(f, "{} {}", self.0, $base_unit)
                }
            }
        }
    };
}

quantity!(
    /// Electrical power, stored in watts.
    Power,
    "W"
);

quantity!(
    /// Surface area, stored in square metres.
    Area,
    "m^2"
);

quantity!(
    /// Power per unit area, stored in W/m².
    ///
    /// The paper's safety limit is 40 mW/cm² = 400 W/m²
    /// (see [`crate::budget::SAFE_POWER_DENSITY`]).
    PowerDensity,
    "W/m^2"
);

quantity!(
    /// Energy, stored in joules. Also used for energy *per bit*.
    Energy,
    "J"
);

quantity!(
    /// A span of time, stored in seconds.
    TimeSpan,
    "s"
);

quantity!(
    /// Frequency (e.g., an NI sampling rate), stored in hertz.
    Frequency,
    "Hz"
);

quantity!(
    /// A data rate, stored in bits per second.
    DataRate,
    "bit/s"
);

impl Power {
    /// Creates a power from watts.
    #[must_use]
    pub const fn from_watts(watts: f64) -> Self {
        Self(watts)
    }

    /// Creates a power from milliwatts.
    #[must_use]
    pub const fn from_milliwatts(milliwatts: f64) -> Self {
        Self(milliwatts * 1e-3)
    }

    /// Creates a power from microwatts.
    #[must_use]
    pub const fn from_microwatts(microwatts: f64) -> Self {
        Self(microwatts * 1e-6)
    }

    /// Creates a power from nanowatts.
    #[must_use]
    pub const fn from_nanowatts(nanowatts: f64) -> Self {
        Self(nanowatts * 1e-9)
    }

    /// Returns the power in watts.
    #[must_use]
    pub const fn watts(self) -> f64 {
        self.0
    }

    /// Returns the power in milliwatts.
    #[must_use]
    pub fn milliwatts(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the power in microwatts.
    #[must_use]
    pub fn microwatts(self) -> f64 {
        self.0 * 1e6
    }
}

impl Area {
    /// Creates an area from square metres.
    #[must_use]
    pub const fn from_square_meters(m2: f64) -> Self {
        Self(m2)
    }

    /// Creates an area from square millimetres.
    #[must_use]
    pub const fn from_square_millimeters(mm2: f64) -> Self {
        Self(mm2 * 1e-6)
    }

    /// Creates an area from square centimetres.
    #[must_use]
    pub const fn from_square_centimeters(cm2: f64) -> Self {
        Self(cm2 * 1e-4)
    }

    /// Creates an area from square micrometres (e.g., per-channel pitch area).
    #[must_use]
    pub const fn from_square_micrometers(um2: f64) -> Self {
        Self(um2 * 1e-12)
    }

    /// Returns the area in square metres.
    #[must_use]
    pub const fn square_meters(self) -> f64 {
        self.0
    }

    /// Returns the area in square millimetres.
    #[must_use]
    pub fn square_millimeters(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the area in square centimetres.
    #[must_use]
    pub fn square_centimeters(self) -> f64 {
        self.0 * 1e4
    }

    /// Returns the side length of a square with this area, in metres.
    ///
    /// Useful for channel-pitch estimates: a 1024-channel, 144 mm² implant
    /// has `sqrt(144/1024) ≈ 0.375 mm` per-channel pitch.
    #[must_use]
    pub fn side_length_meters(self) -> f64 {
        self.0.max(0.0).sqrt()
    }
}

impl PowerDensity {
    /// Creates a power density from W/m².
    #[must_use]
    pub const fn from_watts_per_square_meter(wm2: f64) -> Self {
        Self(wm2)
    }

    /// Creates a power density from mW/cm² — the unit the paper reports.
    #[must_use]
    pub const fn from_milliwatts_per_square_centimeter(mw_cm2: f64) -> Self {
        // 1 mW/cm² = 1e-3 W / 1e-4 m² = 10 W/m².
        Self(mw_cm2 * 10.0)
    }

    /// Returns the power density in W/m².
    #[must_use]
    pub const fn watts_per_square_meter(self) -> f64 {
        self.0
    }

    /// Returns the power density in mW/cm².
    #[must_use]
    pub fn milliwatts_per_square_centimeter(self) -> f64 {
        self.0 / 10.0
    }
}

impl Energy {
    /// Creates an energy from joules.
    #[must_use]
    pub const fn from_joules(joules: f64) -> Self {
        Self(joules)
    }

    /// Creates an energy from picojoules (the usual per-bit scale).
    #[must_use]
    pub const fn from_picojoules(picojoules: f64) -> Self {
        Self(picojoules * 1e-12)
    }

    /// Creates an energy from nanojoules.
    #[must_use]
    pub const fn from_nanojoules(nanojoules: f64) -> Self {
        Self(nanojoules * 1e-9)
    }

    /// Returns the energy in joules.
    #[must_use]
    pub const fn joules(self) -> f64 {
        self.0
    }

    /// Returns the energy in picojoules.
    #[must_use]
    pub fn picojoules(self) -> f64 {
        self.0 * 1e12
    }

    /// Returns the energy in nanojoules.
    #[must_use]
    pub fn nanojoules(self) -> f64 {
        self.0 * 1e9
    }
}

impl TimeSpan {
    /// Creates a time span from seconds.
    #[must_use]
    pub const fn from_seconds(seconds: f64) -> Self {
        Self(seconds)
    }

    /// Creates a time span from milliseconds.
    #[must_use]
    pub const fn from_milliseconds(ms: f64) -> Self {
        Self(ms * 1e-3)
    }

    /// Creates a time span from microseconds.
    #[must_use]
    pub const fn from_microseconds(us: f64) -> Self {
        Self(us * 1e-6)
    }

    /// Creates a time span from nanoseconds.
    #[must_use]
    pub const fn from_nanoseconds(ns: f64) -> Self {
        Self(ns * 1e-9)
    }

    /// Returns the time span in seconds.
    #[must_use]
    pub const fn seconds(self) -> f64 {
        self.0
    }

    /// Returns the time span in milliseconds.
    #[must_use]
    pub fn milliseconds(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the time span in microseconds.
    #[must_use]
    pub fn microseconds(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the time span in nanoseconds.
    #[must_use]
    pub fn nanoseconds(self) -> f64 {
        self.0 * 1e9
    }
}

impl Frequency {
    /// Creates a frequency from hertz.
    #[must_use]
    pub const fn from_hertz(hz: f64) -> Self {
        Self(hz)
    }

    /// Creates a frequency from kilohertz (the usual NI sampling scale).
    #[must_use]
    pub const fn from_kilohertz(khz: f64) -> Self {
        Self(khz * 1e3)
    }

    /// Creates a frequency from megahertz (the usual clock scale).
    #[must_use]
    pub const fn from_megahertz(mhz: f64) -> Self {
        Self(mhz * 1e6)
    }

    /// Returns the frequency in hertz.
    #[must_use]
    pub const fn hertz(self) -> f64 {
        self.0
    }

    /// Returns the frequency in kilohertz.
    #[must_use]
    pub fn kilohertz(self) -> f64 {
        self.0 * 1e-3
    }

    /// Returns the frequency in megahertz.
    #[must_use]
    pub fn megahertz(self) -> f64 {
        self.0 * 1e-6
    }

    /// Returns the period `1/f`.
    ///
    /// A zero frequency yields an infinite period.
    #[must_use]
    pub fn period(self) -> TimeSpan {
        TimeSpan(1.0 / self.0)
    }
}

impl DataRate {
    /// Creates a data rate from bits per second.
    #[must_use]
    pub const fn from_bits_per_second(bps: f64) -> Self {
        Self(bps)
    }

    /// Creates a data rate from kilobits per second.
    #[must_use]
    pub const fn from_kilobits_per_second(kbps: f64) -> Self {
        Self(kbps * 1e3)
    }

    /// Creates a data rate from megabits per second.
    #[must_use]
    pub const fn from_megabits_per_second(mbps: f64) -> Self {
        Self(mbps * 1e6)
    }

    /// Returns the data rate in bits per second.
    #[must_use]
    pub const fn bits_per_second(self) -> f64 {
        self.0
    }

    /// Returns the data rate in kilobits per second.
    #[must_use]
    pub fn kilobits_per_second(self) -> f64 {
        self.0 * 1e-3
    }

    /// Returns the data rate in megabits per second.
    #[must_use]
    pub fn megabits_per_second(self) -> f64 {
        self.0 * 1e-6
    }
}

// ---------------------------------------------------------------------------
// Cross-unit operations (only the physically meaningful ones).
// ---------------------------------------------------------------------------

/// `Power / Area = PowerDensity` — the safety metric of Section 3.2.
impl Div<Area> for Power {
    type Output = PowerDensity;
    fn div(self, rhs: Area) -> PowerDensity {
        PowerDensity(self.0 / rhs.0)
    }
}

/// `PowerDensity × Area = Power` — e.g., the power budget of Eq. (3).
impl Mul<Area> for PowerDensity {
    type Output = Power;
    fn mul(self, rhs: Area) -> Power {
        Power(self.0 * rhs.0)
    }
}

/// `Area × PowerDensity = Power` (commuted form).
impl Mul<PowerDensity> for Area {
    type Output = Power;
    fn mul(self, rhs: PowerDensity) -> Power {
        Power(self.0 * rhs.0)
    }
}

/// `Power / PowerDensity = Area` — minimum area for a given power at the limit.
impl Div<PowerDensity> for Power {
    type Output = Area;
    fn div(self, rhs: PowerDensity) -> Area {
        Area(self.0 / rhs.0)
    }
}

/// `DataRate × Energy(per bit) = Power` — Eq. (9): `P_comm = T_comm · E_b`.
impl Mul<Energy> for DataRate {
    type Output = Power;
    fn mul(self, rhs: Energy) -> Power {
        Power(self.0 * rhs.0)
    }
}

/// `Energy(per bit) × DataRate = Power` (commuted form).
impl Mul<DataRate> for Energy {
    type Output = Power;
    fn mul(self, rhs: DataRate) -> Power {
        Power(self.0 * rhs.0)
    }
}

/// `Power / DataRate = Energy` per bit — recover E_b from a link power.
impl Div<DataRate> for Power {
    type Output = Energy;
    fn div(self, rhs: DataRate) -> Energy {
        Energy(self.0 / rhs.0)
    }
}

/// `Power × TimeSpan = Energy`.
impl Mul<TimeSpan> for Power {
    type Output = Energy;
    fn mul(self, rhs: TimeSpan) -> Energy {
        Energy(self.0 * rhs.0)
    }
}

/// `TimeSpan × Power = Energy` (commuted form).
impl Mul<Power> for TimeSpan {
    type Output = Energy;
    fn mul(self, rhs: Power) -> Energy {
        Energy(self.0 * rhs.0)
    }
}

/// `Energy / TimeSpan = Power`.
impl Div<TimeSpan> for Energy {
    type Output = Power;
    fn div(self, rhs: TimeSpan) -> Power {
        Power(self.0 / rhs.0)
    }
}

/// `Energy / Power = TimeSpan`.
impl Div<Power> for Energy {
    type Output = TimeSpan;
    fn div(self, rhs: Power) -> TimeSpan {
        TimeSpan(self.0 / rhs.0)
    }
}

/// `Energy × Frequency = Power` — e.g., per-sample energy at a sampling rate.
impl Mul<Frequency> for Energy {
    type Output = Power;
    fn mul(self, rhs: Frequency) -> Power {
        Power(self.0 * rhs.0)
    }
}

/// `Frequency × Energy = Power` (commuted form).
impl Mul<Energy> for Frequency {
    type Output = Power;
    fn mul(self, rhs: Energy) -> Power {
        Power(self.0 * rhs.0)
    }
}

/// `DataRate × TimeSpan = f64` bits transferred.
impl Mul<TimeSpan> for DataRate {
    type Output = f64;
    fn mul(self, rhs: TimeSpan) -> f64 {
        self.0 * rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_conversions_round_trip() {
        let p = Power::from_milliwatts(38.88);
        assert!((p.watts() - 0.03888).abs() < 1e-12);
        assert!((p.milliwatts() - 38.88).abs() < 1e-9);
        assert!((p.microwatts() - 38_880.0).abs() < 1e-6);
    }

    #[test]
    fn area_conversions_round_trip() {
        let a = Area::from_square_millimeters(144.0);
        assert!((a.square_centimeters() - 1.44).abs() < 1e-12);
        assert!((a.square_meters() - 1.44e-4).abs() < 1e-16);
        let b = Area::from_square_centimeters(1.44);
        assert!((a - b).abs().square_meters() < 1e-15);
    }

    #[test]
    fn power_density_unit_is_ten_watts_per_square_meter() {
        let d = PowerDensity::from_milliwatts_per_square_centimeter(40.0);
        assert!((d.watts_per_square_meter() - 400.0).abs() < 1e-12);
        assert!((d.milliwatts_per_square_centimeter() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn density_times_area_is_power() {
        // BISC-like: 27 mW/cm² × 1.44 cm² = 38.88 mW.
        let p = PowerDensity::from_milliwatts_per_square_centimeter(27.0)
            * Area::from_square_millimeters(144.0);
        assert!((p.milliwatts() - 38.88).abs() < 1e-9);
    }

    #[test]
    fn power_over_area_is_density() {
        let d = Power::from_milliwatts(15.0) / Area::from_square_millimeters(1.0);
        assert!((d.milliwatts_per_square_centimeter() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn rate_times_energy_per_bit_is_power() {
        // Paper's OOK example: 82 Mbps at 50 pJ/bit → 4.1 mW.
        let p = DataRate::from_megabits_per_second(82.0) * Energy::from_picojoules(50.0);
        assert!((p.milliwatts() - 4.1).abs() < 1e-9);
    }

    #[test]
    fn energy_per_bit_recovered_from_power() {
        let eb = Power::from_milliwatts(4.1) / DataRate::from_megabits_per_second(82.0);
        assert!((eb.picojoules() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn frequency_period_inverse() {
        let f = Frequency::from_kilohertz(8.0);
        assert!((f.period().microseconds() - 125.0).abs() < 1e-9);
    }

    #[test]
    fn power_time_energy_cycle() {
        let e = Power::from_milliwatts(1.0) * TimeSpan::from_seconds(2.0);
        assert!((e.joules() - 2e-3).abs() < 1e-15);
        let p = e / TimeSpan::from_seconds(2.0);
        assert!((p.milliwatts() - 1.0).abs() < 1e-12);
        let t = e / Power::from_milliwatts(1.0);
        assert!((t.seconds() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_ops_behave() {
        let a = Power::from_milliwatts(3.0);
        let b = Power::from_milliwatts(1.5);
        assert!(((a + b).milliwatts() - 4.5).abs() < 1e-12);
        assert!(((a - b).milliwatts() - 1.5).abs() < 1e-12);
        assert!(((a * 2.0).milliwatts() - 6.0).abs() < 1e-12);
        assert!(((2.0 * a).milliwatts() - 6.0).abs() < 1e-12);
        assert!(((a / 2.0).milliwatts() - 1.5).abs() < 1e-12);
        assert!((a / b - 2.0).abs() < 1e-12);
        assert!(((-a).milliwatts() + 3.0).abs() < 1e-12);
    }

    #[test]
    fn sum_over_iterator() {
        let parts = [
            Power::from_milliwatts(1.0),
            Power::from_milliwatts(2.0),
            Power::from_milliwatts(3.0),
        ];
        let total: Power = parts.iter().sum();
        assert!((total.milliwatts() - 6.0).abs() < 1e-12);
        let total2: Power = parts.into_iter().sum();
        assert!((total2.milliwatts() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn ordering_and_min_max() {
        let small = Area::from_square_millimeters(1.0);
        let big = Area::from_square_millimeters(2.0);
        assert!(small < big);
        assert_eq!(small.min(big), small);
        assert_eq!(small.max(big), big);
        assert_eq!(big.clamp(Area::ZERO, small), small);
    }

    #[test]
    fn display_includes_unit_and_precision() {
        let p = Power::from_watts(0.5);
        assert_eq!(format!("{p}"), "0.5 W");
        assert_eq!(format!("{p:.2}"), "0.50 W");
        assert_eq!(format!("{}", Area::ZERO), "0 m^2");
    }

    #[test]
    fn data_rate_times_time_is_bits() {
        let bits = DataRate::from_megabits_per_second(82.0) * TimeSpan::from_seconds(1.0);
        assert!((bits - 82e6).abs() < 1e-3);
    }

    #[test]
    fn side_length_of_area() {
        let a = Area::from_square_millimeters(144.0);
        assert!((a.side_length_meters() - 0.012).abs() < 1e-12);
    }
}
