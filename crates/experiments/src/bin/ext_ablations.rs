//! Runs the `ext_ablations` extension study.

fn main() {
    match mindful_experiments::run_by_name("ext_ablations") {
        Ok(artifacts) => artifacts.print(),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
