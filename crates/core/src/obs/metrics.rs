//! Lock-free metric primitives: sharded counters, gauges, and
//! fixed-bucket log-scale histograms.
//!
//! Every recording operation is a handful of relaxed atomic writes —
//! no locks, no heap allocation — so a warm instrumented hot path
//! (the streaming pipeline, the batched inference engine) keeps the
//! zero-allocation guarantees proven by the counting-allocator tests.
//! Counters and histograms are *sharded*: each recording thread writes
//! its own cache-padded slot, and the shards are summed only at scrape
//! time, so concurrent workers on the `crate::pool` never contend on a
//! single cache line.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of cache-padded shards per counter / histogram.
///
/// Threads are assigned shards round-robin on first use; with more
/// threads than shards two workers may share a slot (still correct —
/// the slot is atomic — just contended).
pub const SHARDS: usize = 16;

/// Number of histogram buckets: one for zero, one per power-of-two
/// decade of `u64`, so every value up to [`u64::MAX`] lands in a
/// bucket without saturating logic or panics.
pub const BUCKETS: usize = 65;

/// Maps a recorded value to its bucket index.
///
/// Bucket `0` holds exactly the value `0`; bucket `k ≥ 1` holds the
/// half-open power-of-two decade `[2^(k-1), 2^k)`. The edges are exact:
/// `2^k - 1` lands in bucket `k` and `2^k` starts bucket `k + 1`, and
/// [`u64::MAX`] lands in the last bucket (index 64) without wrapping.
#[must_use]
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper edge of bucket `index` (`u64::MAX` for the last).
///
/// Useful for rendering: a value recorded into bucket `k` is known to
/// be `≤ bucket_upper_edge(k)` and `> bucket_upper_edge(k - 1)`.
#[must_use]
pub fn bucket_upper_edge(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1_u64 << index) - 1
    }
}

/// One cache line's worth of atomic counter, so neighbouring shards
/// never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

/// The shard a recording thread writes by default: assigned round-robin
/// the first time a thread records anything.
fn thread_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

#[derive(Debug, Default)]
pub(crate) struct CounterCore {
    shards: [PaddedU64; SHARDS],
}

/// A monotonically increasing, sharded counter handle.
///
/// Handles are cheap to clone (an [`Arc`] bump) and recording is one
/// relaxed atomic add into the calling thread's shard. The merged
/// value ([`Counter::value`]) is the sum over shards, identical to what
/// single-threaded recording of the same operations would produce.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Arc<CounterCore>);

impl Counter {
    /// A free-standing counter (not registered anywhere).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the calling thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        self.add_to_shard(thread_shard(), n);
    }

    /// Adds 1 to the calling thread's shard.
    #[inline]
    pub fn increment(&self) {
        self.add(1);
    }

    /// Adds `n` to an explicit shard — the worker-pinned form used when
    /// the caller already knows its `crate::pool` worker index (and by
    /// the shard-merge equivalence tests). `shard` is taken modulo
    /// [`SHARDS`].
    #[inline]
    pub fn add_to_shard(&self, shard: usize, n: u64) {
        self.0.shards[shard % SHARDS]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// The merged value: the sum of every shard.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.0
            .shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0, u64::wrapping_add)
    }
}

#[derive(Debug)]
pub(crate) struct GaugeCore {
    value: AtomicU64,
    high_water: AtomicU64,
}

impl Default for GaugeCore {
    fn default() -> Self {
        Self {
            value: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
        }
    }
}

/// A last-write-wins gauge with a monotone high-water mark.
///
/// Gauges are not sharded: "last write wins" has no meaningful shard
/// merge, and the high-water mark is maintained with `fetch_max`,
/// which *is* its own merge. Both operations are single relaxed
/// atomics — lock-free and allocation-free.
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Arc<GaugeCore>);

impl Gauge {
    /// A free-standing gauge (not registered anywhere).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `v` and raises the high-water mark if `v` exceeds it.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.value.store(v, Ordering::Relaxed);
        self.0.high_water.fetch_max(v, Ordering::Relaxed);
    }

    /// The last stored value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// The largest value ever stored.
    #[must_use]
    pub fn high_water(&self) -> u64 {
        self.0.high_water.load(Ordering::Relaxed)
    }
}

/// One shard of a histogram: padded so shards on adjacent indices do
/// not false-share their hot leading fields.
#[repr(align(64))]
struct HistogramShard {
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` sentinel until the first record.
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for HistogramShard {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [0_u64; BUCKETS].map(AtomicU64::new),
        }
    }
}

impl HistogramShard {
    /// Saturating atomic add: the sum sticks at `u64::MAX` instead of
    /// wrapping, and because every operand is non-negative the final
    /// merged sum equals `min(true sum, u64::MAX)` regardless of how
    /// records were interleaved or sharded.
    fn saturating_add_sum(&self, v: u64) {
        let mut cur = self.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(v);
            match self
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

#[derive(Default)]
pub(crate) struct HistogramCore {
    shards: [HistogramShard; SHARDS],
}

impl core::fmt::Debug for HistogramCore {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("HistogramCore").finish_non_exhaustive()
    }
}

/// A fixed-bucket log₂-scale histogram handle.
///
/// 65 buckets cover the whole `u64` range (see [`bucket_index`]), so
/// recording never saturates a bucket boundary or panics — including
/// at [`u64::MAX`]. The running sum saturates at `u64::MAX` instead of
/// wrapping. Recording touches one shard: count, sum, min, max, and
/// one bucket, all relaxed atomics.
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Arc<HistogramCore>);

/// The merged, owned state of a histogram at scrape time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramState {
    /// Number of recorded values.
    pub count: u64,
    /// Saturating sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` sentinel while empty).
    pub min: u64,
    /// Largest recorded value (0 while empty).
    pub max: u64,
    /// Per-bucket counts (see [`bucket_index`] for the layout).
    pub buckets: [u64; BUCKETS],
}

impl HistogramState {
    /// An empty state (what a fresh histogram merges to).
    #[must_use]
    pub fn empty() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// The smallest recorded value, if any value was recorded.
    #[must_use]
    pub fn min_value(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Mean of the recorded values (`None` while empty). Computed from
    /// the saturating sum, so it is a lower bound after saturation.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Upper bound on the `q`-quantile (`q` in `[0, 1]`), from the
    /// cumulative bucket counts: the inclusive upper edge of the first
    /// bucket at which the running count reaches `ceil(q · count)`.
    #[must_use]
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil without going through floats for the common exact cases.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Some(bucket_upper_edge(i).min(self.max));
            }
        }
        Some(self.max)
    }
}

impl Histogram {
    /// A free-standing histogram (not registered anywhere).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `v` into the calling thread's shard.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_to_shard(thread_shard(), v);
    }

    /// Records `v` into an explicit shard (worker-pinned form; `shard`
    /// is taken modulo [`SHARDS`]).
    #[inline]
    pub fn record_to_shard(&self, shard: usize, v: u64) {
        let s = &self.0.shards[shard % SHARDS];
        s.count.fetch_add(1, Ordering::Relaxed);
        s.saturating_add_sum(v);
        s.min.fetch_min(v, Ordering::Relaxed);
        s.max.fetch_max(v, Ordering::Relaxed);
        s.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Merges every shard into one owned state: counts and buckets
    /// add, sums add saturating, min/max take min/max.
    #[must_use]
    pub fn state(&self) -> HistogramState {
        let mut merged = HistogramState::empty();
        for s in &self.0.shards {
            merged.count += s.count.load(Ordering::Relaxed);
            merged.sum = merged.sum.saturating_add(s.sum.load(Ordering::Relaxed));
            merged.min = merged.min.min(s.min.load(Ordering::Relaxed));
            merged.max = merged.max.max(s.max.load(Ordering::Relaxed));
            for (m, b) in merged.buckets.iter_mut().zip(&s.buckets) {
                *m += b.load(Ordering::Relaxed);
            }
        }
        merged
    }

    /// Number of recorded values (merged over shards).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0
            .shards
            .iter()
            .map(|s| s.count.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_at_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        for k in 1..64 {
            let edge = 1_u64 << k;
            assert_eq!(bucket_index(edge - 1), k, "2^{k} - 1 closes bucket {k}");
            assert_eq!(bucket_index(edge), k + 1, "2^{k} opens bucket {}", k + 1);
        }
        assert_eq!(bucket_index(u64::MAX), 64, "MAX lands in the last bucket");
    }

    #[test]
    fn bucket_upper_edges_match_the_index_map() {
        assert_eq!(bucket_upper_edge(0), 0);
        assert_eq!(bucket_upper_edge(1), 1);
        assert_eq!(bucket_upper_edge(10), 1023);
        assert_eq!(bucket_upper_edge(64), u64::MAX);
        for k in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_upper_edge(k)), k);
        }
    }

    #[test]
    fn counter_merges_shards_into_one_sum() {
        let c = Counter::new();
        for shard in 0..SHARDS * 2 {
            c.add_to_shard(shard, 3);
        }
        c.add(4);
        assert_eq!(c.value(), (SHARDS as u64 * 2) * 3 + 4);
    }

    #[test]
    fn gauge_tracks_value_and_high_water() {
        let g = Gauge::new();
        assert_eq!((g.value(), g.high_water()), (0, 0));
        g.set(7);
        g.set(3);
        assert_eq!(g.value(), 3, "last write wins");
        assert_eq!(g.high_water(), 7, "high water is monotone");
    }

    #[test]
    fn histogram_records_extremes_without_panicking() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        h.record(u64::MAX);
        let s = h.state();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(s.min_value(), Some(0));
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[64], 2);
    }

    #[test]
    fn histogram_state_statistics() {
        let h = Histogram::new();
        assert_eq!(h.state().mean(), None);
        assert_eq!(h.state().quantile_upper_bound(0.5), None);
        for v in [1_u64, 2, 3, 4, 100] {
            h.record(v);
        }
        let s = h.state();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 110);
        assert_eq!(s.mean(), Some(22.0));
        // p50: third record in cumulative bucket order → bucket of 3.
        assert_eq!(s.quantile_upper_bound(0.5), Some(3));
        // p99 rounds up to the last record, capped at the true max.
        assert_eq!(s.quantile_upper_bound(0.99), Some(100));
        assert_eq!(s.quantile_upper_bound(0.0), Some(1));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let c = Counter::new();
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let (c, h) = (c.clone(), h.clone());
                scope.spawn(move || {
                    for i in 0..1000_u64 {
                        c.add(1);
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(c.value(), 8000);
        assert_eq!(h.state().count, 8000);
        assert_eq!(h.state().buckets.iter().sum::<u64>(), 8000);
    }
}
