//! On-implant DNN integration analysis (Section 5.3, Fig. 10).
//!
//! A computation-centric implant runs the whole decoder on-chip and
//! transmits only its 40-label output. For a scaled SoC anchor and a
//! channel count `n`, the total power is
//!
//! ```text
//! P_soc(n) = P_sensing(n) + P_comp(n') + P_comm(n_out)
//! ```
//!
//! where `P_comp` is the MAC-count lower bound of Eq. 13 for the α-scaled
//! model (α set by the *active* channels `n' ≤ n`, allowing the channel-
//! dropout optimization of Section 6.2), and `P_comm` is the tiny OOK
//! cost of streaming the output labels. As in the QAM study, sensing
//! power/area grow linearly while the non-sensing area is reused for
//! computation.

use core::fmt;

use mindful_accel::alloc::{best_allocation, Allocation};
use mindful_accel::tech::TechnologyNode;
use mindful_core::budget::power_budget;
use mindful_core::regimes::SplitDesign;
use mindful_core::units::{Area, Energy, Power};

use crate::error::{DnnError, Result};
use crate::models::{ModelFamily, APPLICATION_RATE, OUTPUT_LABELS};

/// Configuration for the integration analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntegrationConfig {
    /// Technology node of the MAC array (paper: 45 nm; `Tech` step:
    /// 12 nm).
    pub node: TechnologyNode,
    /// OOK energy per bit for the reduced output stream (paper anchor:
    /// 50 pJ/bit).
    pub energy_per_bit: Energy,
    /// Digitized bits per transmitted output value.
    pub sample_bits: u8,
    /// Scale on the sensing area per channel (`Dense` optimization of
    /// Section 6.2 halves it; default 1.0).
    pub sensing_area_scale: f64,
}

impl IntegrationConfig {
    /// The paper's Section 5.3 configuration: 45 nm MACs, 50 pJ/bit OOK,
    /// 10-bit outputs, unmodified sensing density.
    #[must_use]
    pub fn paper_45nm() -> Self {
        Self {
            node: TechnologyNode::NANGATE_45NM,
            energy_per_bit: Energy::from_picojoules(50.0),
            sample_bits: 10,
            sensing_area_scale: 1.0,
        }
    }

    /// The Section 6.2 `Tech` variant: 12 nm MACs.
    #[must_use]
    pub fn paper_12nm() -> Self {
        Self {
            node: TechnologyNode::ADVANCED_12NM,
            ..Self::paper_45nm()
        }
    }

    /// Returns a copy with the `Dense` optimization applied (sensing
    /// area per channel halved).
    #[must_use]
    pub fn with_dense_channels(mut self) -> Self {
        self.sensing_area_scale *= 0.5;
        self
    }
}

/// One evaluated computation-centric operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct IntegrationPoint {
    channels: u64,
    active_channels: u64,
    sensing: Power,
    computation: Power,
    communication: Power,
    area: Area,
    allocation: Allocation,
}

impl IntegrationPoint {
    /// Total NI channels.
    #[must_use]
    pub fn channels(&self) -> u64 {
        self.channels
    }

    /// Channels feeding the decoder after channel dropout.
    #[must_use]
    pub fn active_channels(&self) -> u64 {
        self.active_channels
    }

    /// Projected sensing power.
    #[must_use]
    pub fn sensing_power(&self) -> Power {
        self.sensing
    }

    /// DNN computation power lower bound (Eq. 13).
    #[must_use]
    pub fn computation_power(&self) -> Power {
        self.computation
    }

    /// Wireless power for the output stream.
    #[must_use]
    pub fn communication_power(&self) -> Power {
        self.communication
    }

    /// Total SoC power.
    #[must_use]
    pub fn total_power(&self) -> Power {
        self.sensing + self.computation + self.communication
    }

    /// Projected SoC area.
    #[must_use]
    pub fn area(&self) -> Area {
        self.area
    }

    /// The power budget at this area.
    #[must_use]
    pub fn power_budget(&self) -> Power {
        power_budget(self.area)
    }

    /// `P_soc / P_budget` — the y-axis of Fig. 10.
    #[must_use]
    pub fn budget_utilization(&self) -> f64 {
        self.total_power() / self.power_budget()
    }

    /// Whether the point respects the power budget.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.budget_utilization() <= 1.0 + 1e-12
    }

    /// The MAC allocation behind the computation power.
    #[must_use]
    pub fn allocation(&self) -> &Allocation {
        &self.allocation
    }

    /// Silicon area of the allocated MAC array — the compute hardware
    /// that must fit in the reused non-sensing area.
    #[must_use]
    pub fn compute_area(&self) -> Area {
        self.allocation.area()
    }
}

impl fmt::Display for IntegrationPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ch ({} active): {:.2} mW = sens {:.2} + comp {:.2} + comm {:.3} \
             vs budget {:.2} mW ({:.0}%)",
            self.channels,
            self.active_channels,
            self.total_power().milliwatts(),
            self.sensing.milliwatts(),
            self.computation.milliwatts(),
            self.communication.milliwatts(),
            self.power_budget().milliwatts(),
            self.budget_utilization() * 100.0
        )
    }
}

/// Projected sensing power, sensing area, and reused non-sensing area at
/// `channels` for a design anchor.
pub(crate) fn project_platform(
    design: &SplitDesign,
    channels: u64,
    config: &IntegrationConfig,
) -> Result<(Power, Area)> {
    let reference = design.reference_channels();
    if channels < reference {
        return Err(mindful_core::CoreError::BelowReferenceChannels {
            requested: channels,
            reference,
        }
        .into());
    }
    let ratio = channels as f64 / reference as f64;
    let sensing_power = design.sensing_power() * ratio;
    let area =
        design.sensing_area() * (ratio * config.sensing_area_scale) + design.non_sensing_area();
    Ok((sensing_power, area))
}

/// Evaluates integrating a model family onto a scaled SoC anchor at
/// `channels` total channels with `active_channels` feeding the decoder.
///
/// # Errors
///
/// * [`DnnError::Core`] if `channels` is below the anchor's reference.
/// * [`DnnError::BelowBaseChannels`] if `active_channels` is below the
///   model's 128-channel base or above `channels`.
/// * [`DnnError::Accel`] if no MAC allocation meets the real-time
///   deadline.
pub fn evaluate(
    design: &SplitDesign,
    family: ModelFamily,
    channels: u64,
    active_channels: u64,
    config: &IntegrationConfig,
) -> Result<IntegrationPoint> {
    if active_channels > channels {
        return Err(DnnError::BelowBaseChannels {
            requested: channels,
            base: active_channels,
        });
    }
    let (sensing, area) = project_platform(design, channels, config)?;
    let arch = family.architecture(active_channels)?;
    let workload = arch.workload()?;
    let allocation = best_allocation(&workload, config.node, family.deadline())?;
    let computation = allocation.power();
    let out_rate = mindful_core::throughput::computation_centric_rate(
        OUTPUT_LABELS,
        config.sample_bits,
        APPLICATION_RATE,
    );
    let communication = out_rate * config.energy_per_bit;
    Ok(IntegrationPoint {
        channels,
        active_channels,
        sensing,
        computation,
        communication,
        area,
        allocation,
    })
}

/// Evaluates with all channels active (no dropout) — the Fig. 10 sweep.
///
/// # Errors
///
/// Same as [`evaluate`].
pub fn evaluate_full(
    design: &SplitDesign,
    family: ModelFamily,
    channels: u64,
    config: &IntegrationConfig,
) -> Result<IntegrationPoint> {
    evaluate(design, family, channels, channels, config)
}

/// The maximum channel count (stepped by `step`) at which the full model
/// still fits the budget, or `None` if it does not fit even at the
/// anchor's reference count.
///
/// # Errors
///
/// Returns [`DnnError::EmptyDimension`] for a zero step.
pub fn max_channels(
    design: &SplitDesign,
    family: ModelFamily,
    config: &IntegrationConfig,
    step: u64,
    limit: u64,
) -> Result<Option<u64>> {
    if step == 0 {
        return Err(DnnError::EmptyDimension { name: "step" });
    }
    let mut best = None;
    let mut n = design.reference_channels();
    while n <= limit {
        match evaluate_full(design, family, n, config) {
            Ok(point) if point.is_feasible() => best = Some(n),
            // Utilization grows monotonically with n; stop at the first
            // infeasible point.
            Ok(_) => break,
            Err(DnnError::Accel(_)) => break,
            Err(e) => return Err(e),
        }
        n += step;
    }
    Ok(best)
}

/// The largest number of *active* channels `n' ≤ n` for which the model
/// fits the budget at `n` total channels (the `ChDr` channel-dropout
/// optimization of Section 6.2), searched on multiples of `step`.
///
/// Returns `None` when even the 128-channel base model does not fit.
///
/// # Errors
///
/// Returns [`DnnError::EmptyDimension`] for a zero step and propagates
/// platform-projection errors.
pub fn max_active_channels(
    design: &SplitDesign,
    family: ModelFamily,
    channels: u64,
    config: &IntegrationConfig,
    step: u64,
) -> Result<Option<u64>> {
    if step == 0 {
        return Err(DnnError::EmptyDimension { name: "step" });
    }
    // Validate the platform once.
    project_platform(design, channels, config)?;
    let mut best = None;
    let mut active = crate::models::BASE_CHANNELS;
    while active <= channels {
        match evaluate(design, family, channels, active, config) {
            Ok(point) if point.is_feasible() => best = Some(active),
            Ok(_) => break,
            Err(DnnError::Accel(_)) => break,
            Err(e) => return Err(e),
        }
        active += step;
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mindful_core::regimes::standard_split_designs;
    use mindful_core::scaling::scale_to_standard;
    use mindful_core::soc::soc_by_id;

    fn anchor(id: u8) -> SplitDesign {
        SplitDesign::from_scaled(scale_to_standard(&soc_by_id(id).unwrap()).unwrap())
    }

    #[test]
    fn bisc_integrates_both_models_at_1024() {
        let design = anchor(1);
        let config = IntegrationConfig::paper_45nm();
        for family in ModelFamily::ALL {
            let point = evaluate_full(&design, family, 1024, &config).unwrap();
            assert!(point.is_feasible(), "{family}: {point}");
        }
    }

    #[test]
    fn small_socs_cannot_integrate_the_dn_cnn_at_1024() {
        // Fig. 10: SoCs 4 and 5 exceed the budget by ~5x for the DN-CNN.
        let config = IntegrationConfig::paper_45nm();
        for id in [4_u8, 5] {
            let point = evaluate_full(&anchor(id), ModelFamily::DnCnn, 1024, &config).unwrap();
            assert!(!point.is_feasible(), "SoC {id}: {point}");
            assert!(
                point.budget_utilization() > 3.0,
                "SoC {id} exceeds by ~5x, got {:.1}x",
                point.budget_utilization()
            );
        }
    }

    #[test]
    fn utilization_grows_with_channels() {
        let design = anchor(1);
        let config = IntegrationConfig::paper_45nm();
        let mut prev = 0.0;
        for n in [1024_u64, 2048, 3072, 4096] {
            let u = evaluate_full(&design, ModelFamily::Mlp, n, &config)
                .unwrap()
                .budget_utilization();
            assert!(u > prev, "utilization must rise at {n}");
            prev = u;
        }
    }

    #[test]
    fn average_mlp_crossover_is_near_1800() {
        // Fig. 10: among SoCs that accommodate the DNNs, the average
        // maximum channel count is ~1800 for the MLP and ~1400 for the
        // DN-CNN (and the MLP always beats the DN-CNN).
        let config = IntegrationConfig::paper_45nm();
        let mut mlp_max = Vec::new();
        let mut cnn_max = Vec::new();
        for design in standard_split_designs() {
            if let Some(n) = max_channels(&design, ModelFamily::Mlp, &config, 64, 1 << 15).unwrap()
            {
                mlp_max.push(n as f64);
            }
            if let Some(n) =
                max_channels(&design, ModelFamily::DnCnn, &config, 64, 1 << 15).unwrap()
            {
                cnn_max.push(n as f64);
            }
        }
        assert!(!mlp_max.is_empty() && !cnn_max.is_empty());
        let mlp_avg = mlp_max.iter().sum::<f64>() / mlp_max.len() as f64;
        let cnn_avg = cnn_max.iter().sum::<f64>() / cnn_max.len() as f64;
        assert!(
            (1400.0..=2400.0).contains(&mlp_avg),
            "MLP average max {mlp_avg:.0} (paper: ~1800)"
        );
        assert!(
            (1100.0..=1800.0).contains(&cnn_avg),
            "DN-CNN average max {cnn_avg:.0} (paper: ~1400)"
        );
        assert!(mlp_avg > cnn_avg);
    }

    #[test]
    fn channel_dropout_restores_feasibility() {
        // At 4096 channels the full MLP blows every budget, but dropping
        // to fewer active channels fits.
        let design = anchor(1);
        let config = IntegrationConfig::paper_45nm();
        let full = evaluate_full(&design, ModelFamily::Mlp, 4096, &config).unwrap();
        assert!(!full.is_feasible());
        let active = max_active_channels(&design, ModelFamily::Mlp, 4096, &config, 32)
            .unwrap()
            .expect("some dropout level must fit");
        assert!(active < 4096);
        let dropped = evaluate(&design, ModelFamily::Mlp, 4096, active, &config).unwrap();
        assert!(dropped.is_feasible(), "{dropped}");
    }

    #[test]
    fn technology_scaling_raises_the_dropout_ceiling() {
        // Section 6.2 `Tech`: 12 nm allows more active channels.
        let design = anchor(1);
        let at45 = max_active_channels(
            &design,
            ModelFamily::Mlp,
            4096,
            &IntegrationConfig::paper_45nm(),
            32,
        )
        .unwrap()
        .unwrap();
        let at12 = max_active_channels(
            &design,
            ModelFamily::Mlp,
            4096,
            &IntegrationConfig::paper_12nm(),
            32,
        )
        .unwrap()
        .unwrap();
        assert!(at12 > at45, "12 nm {at12} vs 45 nm {at45}");
    }

    #[test]
    fn dense_channels_shrink_the_budget() {
        // Section 6.2 `Dense`: halving sensing area lowers the budget.
        let design = anchor(1);
        let normal = evaluate_full(
            &design,
            ModelFamily::Mlp,
            2048,
            &IntegrationConfig::paper_45nm(),
        )
        .unwrap();
        let dense = evaluate_full(
            &design,
            ModelFamily::Mlp,
            2048,
            &IntegrationConfig::paper_45nm().with_dense_channels(),
        )
        .unwrap();
        assert!(dense.power_budget() < normal.power_budget());
        assert!(dense.budget_utilization() > normal.budget_utilization());
    }

    #[test]
    fn communication_power_is_negligible() {
        // 40 labels × 10 bits × 2 kHz × 50 pJ = 40 µW.
        let design = anchor(1);
        let point = evaluate_full(
            &design,
            ModelFamily::Mlp,
            1024,
            &IntegrationConfig::paper_45nm(),
        )
        .unwrap();
        assert!((point.communication_power().microwatts() - 40.0).abs() < 1e-6);
        assert!(point.communication_power() < point.computation_power() * 0.05);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let design = anchor(1);
        let config = IntegrationConfig::paper_45nm();
        assert!(evaluate_full(&design, ModelFamily::Mlp, 512, &config).is_err());
        assert!(evaluate(&design, ModelFamily::Mlp, 1024, 2048, &config).is_err());
        assert!(evaluate(&design, ModelFamily::Mlp, 1024, 64, &config).is_err());
        assert!(max_channels(&design, ModelFamily::Mlp, &config, 0, 4096).is_err());
        assert!(max_active_channels(&design, ModelFamily::Mlp, 2048, &config, 0).is_err());
    }

    #[test]
    fn compute_area_never_binds() {
        // The paper treats power as the binding constraint and reuses
        // the non-sensing area for computation; confirm the MAC array of
        // every *feasible* operating point occupies a small fraction of
        // that area, so the power-first framing is self-consistent.
        let config = IntegrationConfig::paper_45nm();
        for id in 1..=8_u8 {
            let design = anchor(id);
            for family in ModelFamily::ALL {
                let Ok(point) = evaluate_full(&design, family, 1024, &config) else {
                    continue;
                };
                if !point.is_feasible() {
                    continue;
                }
                let available = design.non_sensing_area();
                let used = point.compute_area();
                assert!(
                    used.square_meters() < 0.2 * available.square_meters(),
                    "SoC {id} {family}: MAC array {:.3} mm^2 vs non-sensing {:.3} mm^2",
                    used.square_millimeters(),
                    available.square_millimeters()
                );
            }
        }
    }

    #[test]
    fn display_breaks_down_power() {
        let design = anchor(1);
        let point = evaluate_full(
            &design,
            ModelFamily::Mlp,
            1024,
            &IntegrationConfig::paper_45nm(),
        )
        .unwrap();
        let text = point.to_string();
        assert!(text.contains("sens"));
        assert!(text.contains("comp"));
        assert!(text.contains("budget"));
    }
}
