//! Property-based tests for the observability primitives: sharded
//! counters and histograms must merge to exactly what single-threaded
//! recording of the same operations produces, power-of-two bucket
//! edges must be exact, and saturation at `u64::MAX` must never wrap.

use std::sync::Arc;

use mindful_core::obs::{
    bucket_index, bucket_upper_edge, Counter, Histogram, HistogramState, Registry, BUCKETS, SHARDS,
};
use proptest::prelude::*;

/// The single-threaded oracle: folds a value list into the state a
/// histogram must merge to, using plain arithmetic.
fn serial_histogram(values: &[u64]) -> HistogramState {
    let mut state = HistogramState::empty();
    for &v in values {
        state.count += 1;
        state.sum = state.sum.saturating_add(v);
        state.min = state.min.min(v);
        state.max = state.max.max(v);
        state.buckets[bucket_index(v)] += 1;
    }
    state
}

proptest! {
    /// Scattering adds across arbitrary shards merges to the exact
    /// serial sum — shard assignment is a performance detail, never a
    /// semantic one.
    #[test]
    fn sharded_counter_merges_to_the_serial_sum(
        ops in prop::collection::vec((0_usize..4 * SHARDS, 0_u64..1 << 32), 0..200),
    ) {
        let counter = Counter::new();
        let mut serial = 0_u64;
        for &(shard, n) in &ops {
            counter.add_to_shard(shard, n);
            serial += n;
        }
        prop_assert_eq!(counter.value(), serial);
    }

    /// Scattering recordings across arbitrary shards merges to the
    /// identical state as recording everything into one shard: count,
    /// sum, min, max, and every bucket.
    #[test]
    fn sharded_histogram_merges_to_the_serial_state(
        ops in prop::collection::vec((0_usize..4 * SHARDS, any::<u64>()), 0..200),
    ) {
        let sharded = Histogram::new();
        let single = Histogram::new();
        let values: Vec<u64> = ops.iter().map(|&(_, v)| v).collect();
        for &(shard, v) in &ops {
            sharded.record_to_shard(shard, v);
            single.record_to_shard(0, v);
        }
        let merged = sharded.state();
        prop_assert_eq!(&merged, &single.state());
        prop_assert_eq!(&merged, &serial_histogram(&values));
        prop_assert_eq!(merged.count, values.len() as u64);
    }

    /// Power-of-two edges are exact: `2^k - 1` is the inclusive upper
    /// edge of bucket `k` and `2^k` opens bucket `k + 1` — off-by-one
    /// here would silently misreport every latency quantile.
    #[test]
    fn power_of_two_bucket_edges_are_exact(k in 0_u32..64) {
        let v = 1_u64 << k;
        prop_assert_eq!(bucket_index(v), k as usize + 1);
        prop_assert_eq!(bucket_index(v - 1), if v == 1 { 0 } else { k as usize });
        if k < 63 {
            prop_assert_eq!(bucket_upper_edge(k as usize + 1), 2 * v - 1);
        }
        prop_assert!(bucket_upper_edge(bucket_index(v)) >= v);
        prop_assert!(bucket_upper_edge(bucket_index(v) - 1) < v);
    }

    /// Every value lands in exactly the bucket whose half-open decade
    /// contains it, and the quantile bound from a single recording is
    /// the recorded value itself (clamped by max, not the decade edge).
    #[test]
    fn bucket_index_respects_its_documented_decades(v in any::<u64>()) {
        let idx = bucket_index(v);
        prop_assert!(idx < BUCKETS);
        prop_assert!(v <= bucket_upper_edge(idx));
        if idx > 0 {
            prop_assert!(v > bucket_upper_edge(idx - 1));
        }
        let h = Histogram::new();
        h.record_to_shard(0, v);
        prop_assert_eq!(h.state().quantile_upper_bound(1.0), Some(v));
    }

    /// The registry path is the same arithmetic: handles fetched by
    /// name accumulate across shards to the serial totals, and the
    /// snapshot reports them unchanged.
    #[test]
    fn registry_snapshot_matches_serial_totals(
        ops in prop::collection::vec((0_usize..SHARDS, 1_u64..1 << 20), 1..100),
    ) {
        let registry = Registry::new();
        let counter = registry.counter("prop.count");
        let histogram = registry.histogram("prop.hist");
        let mut serial = 0_u64;
        for &(shard, v) in &ops {
            counter.add_to_shard(shard, v);
            histogram.record_to_shard(shard, v);
            serial += v;
        }
        let snapshot = registry.snapshot();
        prop_assert_eq!(snapshot.counter("prop.count"), Some(serial));
        let state = snapshot.histogram("prop.hist").unwrap();
        prop_assert_eq!(state.count, ops.len() as u64);
        prop_assert_eq!(state.sum, serial);
    }
}

/// Concurrent recording from real threads (each pinned to its own
/// shard the round-robin way) merges to the serial oracle exactly.
#[test]
fn threaded_recording_equals_the_serial_oracle() {
    let counter = Counter::new();
    let histogram = Histogram::new();
    let per_thread: Vec<Vec<u64>> = (0..8)
        .map(|t| (0..500).map(|k| (t * 1_000_003 + k * 97) as u64).collect())
        .collect();

    let shared = Arc::new((counter.clone(), histogram.clone()));
    let handles: Vec<_> = per_thread
        .iter()
        .cloned()
        .map(|values| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for v in values {
                    shared.0.add(v);
                    shared.1.record(v);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let all: Vec<u64> = per_thread.into_iter().flatten().collect();
    let oracle = serial_histogram(&all);
    assert_eq!(counter.value(), all.iter().sum::<u64>());
    assert_eq!(histogram.state(), oracle);
}

/// Saturation, not wraparound: sums pinned at `u64::MAX` stay there,
/// extreme values land in the last bucket, and the mean degrades to a
/// lower bound instead of going garbage.
#[test]
fn histogram_sum_saturates_at_u64_max() {
    let h = Histogram::new();
    h.record_to_shard(0, u64::MAX);
    h.record_to_shard(1, u64::MAX);
    h.record_to_shard(2, 7);
    let state = h.state();
    assert_eq!(state.count, 3);
    assert_eq!(state.sum, u64::MAX, "sum saturates instead of wrapping");
    assert_eq!(state.min, 7);
    assert_eq!(state.max, u64::MAX);
    assert_eq!(state.buckets[BUCKETS - 1], 2);
    assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    assert_eq!(bucket_upper_edge(BUCKETS - 1), u64::MAX);
    let mean = state.mean().unwrap();
    assert!(mean <= u64::MAX as f64, "saturated mean is a lower bound");

    // Saturation inside a single shard's running sum, too.
    let single = Histogram::new();
    single.record_to_shard(0, u64::MAX - 1);
    single.record_to_shard(0, u64::MAX - 1);
    assert_eq!(single.state().sum, u64::MAX);
}
